#![warn(missing_docs)]

//! A software simulation of the fixed-function rasterization path of a
//! 2004-era GPU, with a cost model calibrated to the NVIDIA GeForce 6800
//! Ultra used in *Govindaraju, Raghuvanshi, Manocha — "Fast and Approximate
//! Stream Mining of Quantiles and Frequencies Using Graphics Processors"*
//! (SIGMOD 2005).
//!
//! # Why simulate?
//!
//! The paper's GPU algorithms use no programmable shading at all: sorting is
//! done with **texture mapping** (comparator *mapping*: mirrored texture
//! coordinates on quads) and **blending** (comparator *evaluation*: `MIN`/
//! `MAX` conditional assignment against the framebuffer). Reproducing the
//! paper therefore requires exactly four architectural resources:
//!
//! 1. a 2-D RGBA float **texture** memory,
//! 2. a **rasterizer** that turns quads into fragments with interpolated
//!    texture coordinates,
//! 3. a **blend unit** applying `MIN`/`MAX`/`REPLACE` per channel, and
//! 4. a **cost model** charging each render pass against the machine's
//!    compute throughput (16 fragment pipes × 4-wide vectors @ 400 MHz),
//!    DRAM bandwidth (35.2 GB/s), and the AGP 8X bus (~800 MB/s effective).
//!
//! This crate provides all four. The functional result of every render pass
//! is **bit-exact** — the sorting networks built on top really sort — while
//! the time reported is *simulated* time on the paper's hardware, so the
//! evaluation figures can be regenerated with their original shapes.
//!
//! # Example: the paper's `Copy` routine (Routine 4.1)
//!
//! ```
//! use gsm_gpu::{BlendOp, Device, GpuCostModel, Quad, Rect, Surface};
//!
//! let mut dev = Device::new(GpuCostModel::geforce_6800_ultra());
//! // A 4×2 texture holding 0..8 in the red channel.
//! let mut surf = Surface::new(4, 2);
//! for i in 0..8u32 {
//!     let (x, y) = (i % 4, i / 4);
//!     surf.set(x, y, [i as f32, 0.0, 0.0, 0.0]);
//! }
//! let tex = dev.upload_texture(surf);
//! dev.resize_framebuffer(4, 2);
//!
//! // Draw a full-screen quad with identity texture coordinates.
//! let quad = Quad::copy(Rect::new(0, 0, 4, 2));
//! dev.draw_quads(tex, &[quad], BlendOp::Replace);
//!
//! let fb = dev.framebuffer();
//! assert_eq!(fb.get(3, 1)[0], 7.0);
//! assert!(dev.stats().total_time().as_secs() > 0.0);
//! ```

mod blend;
mod bus;
mod cost;
mod depth;
mod device;
mod program;
mod raster;
mod stats;
mod surface;

pub use blend::BlendOp;
pub use bus::BusModel;
pub use cost::GpuCostModel;
pub use depth::{DepthBuffer, DepthFunc};
pub use device::{Device, TextureId};
pub use program::{FragmentProgram, ShaderCtx};
pub use raster::{Fragment, Quad, Rect, TexCoord};
pub use stats::GpuStats;
pub use surface::{Channel, Surface, Texel, TextureFormat};
