//! Hierarchical heavy hitters (paper §1.2: "Our approach … is also
//! applicable to hierarchical heavy hitter … queries").
//!
//! Stream elements live at the leaves of a prefix hierarchy (the canonical
//! example: IP addresses generalizing to /24, /16, /8 prefixes). A
//! *hierarchical* heavy hitter is a prefix whose frequency — **after
//! discounting every descendant already reported** — still exceeds the
//! support threshold. Reporting raw prefix counts instead would make every
//! ancestor of a heavy leaf trivially "heavy".
//!
//! The implementation keeps one window-based [`LossyCounting`] summary per
//! hierarchy level. Because prefix truncation is *monotone* (if `a ≤ b`
//! then `parent(a) ≤ parent(b)`), a window sorted once at leaf level — by
//! the GPU in the full system — is already sorted at every ancestor level
//! after mapping, so each level's histogram/merge/compress runs without any
//! further sorting. This is exactly the property that lets the paper's
//! co-processor pipeline serve hierarchical queries with one sort per
//! window.

use crate::lossy::{LossyCounting, LossyOps};

/// A prefix hierarchy over non-negative integer-valued `f32` elements.
///
/// Level 0 is the leaf level (identity); level `k` truncates the value's
/// integer representation by `shifts[k-1]` bits. Shifts must be strictly
/// increasing.
#[derive(Clone, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct BitPrefixHierarchy {
    shifts: Vec<u32>,
}

impl BitPrefixHierarchy {
    /// Creates a hierarchy from per-level truncation shifts (e.g.
    /// `[8, 16, 24]` for IPv4-style /24, /16, /8 generalization of 32-bit
    /// ids).
    ///
    /// # Panics
    ///
    /// Panics if shifts are empty, not strictly increasing, or ≥ 32.
    pub fn new(shifts: Vec<u32>) -> Self {
        assert!(
            !shifts.is_empty(),
            "hierarchy needs at least one ancestor level"
        );
        assert!(
            shifts.windows(2).all(|w| w[0] < w[1]) && *shifts.last().expect("non-empty") < 32,
            "shifts must be strictly increasing and < 32"
        );
        BitPrefixHierarchy { shifts }
    }

    /// Number of levels including the leaves.
    pub fn levels(&self) -> usize {
        self.shifts.len() + 1
    }

    /// Maps a leaf value to its prefix at `level` (0 = identity).
    ///
    /// Values must be non-negative integers representable in `f32`.
    #[inline]
    pub fn ancestor(&self, value: f32, level: usize) -> f32 {
        debug_assert!(
            value >= 0.0 && value.fract() == 0.0,
            "hierarchy values are integer ids"
        );
        if level == 0 {
            return value;
        }
        let shift = self.shifts[level - 1];
        let id = value as u64;
        ((id >> shift) << shift) as f32
    }
}

/// One reported hierarchical heavy hitter.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct HhhEntry {
    /// Hierarchy level (0 = leaf).
    pub level: usize,
    /// The prefix value at that level.
    pub prefix: f32,
    /// Estimated frequency of the prefix after discounting reported
    /// descendants.
    pub discounted_count: u64,
    /// Estimated raw frequency of the prefix (no discounting).
    pub raw_count: u64,
}

/// Streaming ε-approximate hierarchical heavy hitters: a lossy-counting
/// summary per level, fed from leaf-sorted windows.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct HhhSummary {
    hierarchy: BitPrefixHierarchy,
    levels: Vec<LossyCounting>,
    n: u64,
}

impl HhhSummary {
    /// Creates a summary with error bound `eps` per level.
    pub fn new(eps: f64, hierarchy: BitPrefixHierarchy) -> Self {
        let window = (1.0 / eps).ceil() as usize;
        Self::with_window(eps, window, hierarchy)
    }

    /// Creates a summary with an explicit shared window size
    /// (≥ `⌈1/ε⌉`; see [`LossyCounting::with_window`]).
    pub fn with_window(eps: f64, window: usize, hierarchy: BitPrefixHierarchy) -> Self {
        let levels = (0..hierarchy.levels())
            .map(|_| LossyCounting::with_window(eps, window))
            .collect();
        HhhSummary {
            hierarchy,
            levels,
            n: 0,
        }
    }

    /// The natural window size `⌈1/ε⌉` shared by all levels.
    pub fn window(&self) -> usize {
        self.levels[0].window()
    }

    /// Elements processed.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The error bound.
    pub fn eps(&self) -> f64 {
        self.levels[0].eps()
    }

    /// Total summary entries across levels (memory footprint).
    pub fn entry_count(&self) -> usize {
        self.levels.iter().map(LossyCounting::entry_count).sum()
    }

    /// Per-level phase-split operation counters (for cost reporting).
    pub fn level_ops(&self) -> impl Iterator<Item = &LossyOps> + '_ {
        self.levels.iter().map(|l| l.ops())
    }

    /// Folds in one leaf-*sorted* window: each level maps the window to its
    /// prefixes (order-preserving) and merges the resulting histogram.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or oversized; debug-panics if unsorted.
    pub fn push_sorted_window(&mut self, sorted: &[f32]) {
        debug_assert!(
            sorted.windows(2).all(|w| w[0] <= w[1]),
            "window must be sorted"
        );
        self.n += sorted.len() as u64;
        let mut mapped = Vec::with_capacity(sorted.len());
        for (level, sketch) in self.levels.iter_mut().enumerate() {
            if level == 0 {
                sketch.push_sorted_window(sorted);
            } else {
                mapped.clear();
                mapped.extend(sorted.iter().map(|&v| self.hierarchy.ancestor(v, level)));
                // Monotone mapping keeps the order: no re-sort needed.
                sketch.push_sorted_window(&mapped);
            }
        }
    }

    /// Merges a summary built over a *disjoint* substream into this one:
    /// each level's lossy summary merges independently (prefix truncation
    /// commutes with partitioning), so the merged per-level guarantees are
    /// exactly [`LossyCounting::merge_from`]'s additive bounds.
    ///
    /// # Panics
    ///
    /// Panics if the two summaries use different hierarchies or lossy
    /// configurations.
    pub fn merge_from(&mut self, other: &Self, ops: &mut crate::summary::OpCounter) {
        assert!(
            self.hierarchy == other.hierarchy,
            "cannot merge HHH summaries over different hierarchies"
        );
        for (mine, theirs) in self.levels.iter_mut().zip(&other.levels) {
            mine.merge_from(theirs, ops);
        }
        self.n += other.n;
    }

    /// The worst undercount any per-level estimate can currently carry
    /// (every level processes the same windows, so the bound is shared).
    pub fn undercount_bound(&self) -> u64 {
        self.levels[0].undercount_bound()
    }

    /// The ε-approximate hierarchical heavy hitters at support `s`:
    /// bottom-up, a prefix is reported when its estimated frequency minus
    /// the discounted counts of its reported descendants is at least
    /// `(s − ε)·N`. Every true hierarchical heavy hitter (discounted
    /// frequency ≥ `s·N` under exact counting of reported descendants) is
    /// reported.
    ///
    /// # Panics
    ///
    /// Panics unless `eps < s ≤ 1`.
    pub fn query(&self, s: f64) -> Vec<HhhEntry> {
        assert!(
            s > self.eps() && s <= 1.0,
            "support must satisfy eps < s <= 1"
        );
        let threshold = (s - self.eps()) * self.n as f64;
        let mut reported: Vec<HhhEntry> = Vec::new();

        for level in 0..self.levels.len() {
            // Candidates: every surviving summary entry at this level.
            for (prefix, raw) in self.levels[level].entries() {
                // Discount reported descendants (strictly lower levels whose
                // ancestor at `level` is this prefix).
                let discount: u64 = reported
                    .iter()
                    .filter(|e| {
                        e.level < level && self.hierarchy.ancestor(e.prefix, level) == prefix
                    })
                    .map(|e| e.discounted_count)
                    .sum();
                let discounted = raw.saturating_sub(discount);
                if discounted as f64 >= threshold {
                    reported.push(HhhEntry {
                        level,
                        prefix,
                        discounted_count: discounted,
                        raw_count: raw,
                    });
                }
            }
        }
        reported
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn feed(hhh: &mut HhhSummary, data: &[f32]) {
        for chunk in data.chunks(hhh.window()) {
            let mut w = chunk.to_vec();
            w.sort_by(f32::total_cmp);
            hhh.push_sorted_window(&w);
        }
    }

    #[test]
    fn hierarchy_mapping() {
        let h = BitPrefixHierarchy::new(vec![4, 8]);
        assert_eq!(h.levels(), 3);
        assert_eq!(h.ancestor(0x37 as f32, 0), 0x37 as f32);
        assert_eq!(h.ancestor(0x37 as f32, 1), 0x30 as f32);
        assert_eq!(h.ancestor(0x137 as f32, 2), 0x100 as f32);
    }

    #[test]
    fn hierarchy_mapping_is_monotone() {
        let h = BitPrefixHierarchy::new(vec![3, 6, 9]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let a = rng.random_range(0..4096) as f32;
            let b = rng.random_range(0..4096) as f32;
            for level in 0..h.levels() {
                if a <= b {
                    assert!(h.ancestor(a, level) <= h.ancestor(b, level));
                }
            }
        }
    }

    #[test]
    fn heavy_leaf_reported_at_leaf_level_only() {
        // One leaf dominates; its ancestors gain nothing beyond it and must
        // not be re-reported after discounting.
        let h = BitPrefixHierarchy::new(vec![4, 8]);
        let mut hhh = HhhSummary::new(0.001, h);
        let mut data: Vec<f32> = vec![0x123 as f32; 5000];
        let mut rng = StdRng::seed_from_u64(2);
        data.extend((0..15_000).map(|_| rng.random_range(0x1000..0x8000) as f32));
        feed(&mut hhh, &data);

        let result = hhh.query(0.2);
        let leaf: Vec<&HhhEntry> = result.iter().filter(|e| e.level == 0).collect();
        assert_eq!(leaf.len(), 1);
        assert_eq!(leaf[0].prefix, 0x123 as f32);
        // Ancestors of the heavy leaf must be discounted below threshold.
        assert!(
            !result
                .iter()
                .any(|e| e.level > 0 && e.prefix == 0x100 as f32),
            "{result:?}"
        );
    }

    #[test]
    fn diffuse_prefix_reported_at_ancestor_level() {
        // 16 sibling leaves each ~1.5% — none heavy alone, but their shared
        // /4 prefix (~25%) is.
        let h = BitPrefixHierarchy::new(vec![4, 8]);
        let mut hhh = HhhSummary::new(0.001, h);
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<f32> = (0..40_000)
            .map(|_| {
                if rng.random_range(0..4) == 0 {
                    (0x50 + rng.random_range(0..16)) as f32 // diffuse prefix 0x50
                } else {
                    rng.random_range(0x1000..0x20000) as f32
                }
            })
            .collect();
        feed(&mut hhh, &data);

        let result = hhh.query(0.1);
        assert!(
            result
                .iter()
                .any(|e| e.level == 1 && e.prefix == 0x50 as f32),
            "diffuse prefix must surface at level 1: {result:?}"
        );
        assert!(
            !result.iter().any(|e| e.level == 0),
            "no individual leaf is heavy: {result:?}"
        );
    }

    #[test]
    fn discounting_prevents_ancestor_cascade() {
        // A heavy leaf under a prefix with NO other traffic: the prefix's
        // raw count equals the leaf's, so after discounting nothing above
        // the leaf is reported — at any level.
        let h = BitPrefixHierarchy::new(vec![4, 8, 12]);
        let mut hhh = HhhSummary::new(0.001, h);
        let mut rng = StdRng::seed_from_u64(4);
        let mut data: Vec<f32> = vec![0x7777 as f32; 10_000];
        data.extend((0..20_000).map(|_| rng.random_range(0x10000..0x80000) as f32));
        feed(&mut hhh, &data);

        let result = hhh.query(0.2);
        assert_eq!(result.len(), 1, "{result:?}");
        assert_eq!(result[0].level, 0);
        assert_eq!(result[0].prefix, 0x7777 as f32);
    }

    #[test]
    fn merged_shards_report_the_same_hitters() {
        use crate::summary::OpCounter;
        let mut rng = StdRng::seed_from_u64(6);
        let mut data: Vec<f32> = vec![0x123 as f32; 5000];
        data.extend((0..15_000).map(|_| rng.random_range(0x1000..0x8000) as f32));

        let mut whole = HhhSummary::new(0.001, BitPrefixHierarchy::new(vec![4, 8]));
        feed(&mut whole, &data);

        let k = 4;
        let mut shards: Vec<HhhSummary> = (0..k)
            .map(|_| HhhSummary::new(0.001, BitPrefixHierarchy::new(vec![4, 8])))
            .collect();
        // Round-robin partition so every shard sees the same mix.
        let mut parts: Vec<Vec<f32>> = vec![Vec::new(); k];
        for (i, &v) in data.iter().enumerate() {
            parts[i % k].push(v);
        }
        for (s, part) in shards.iter_mut().zip(&parts) {
            feed(s, part);
        }
        let mut merged = shards.remove(0);
        let mut ops = OpCounter::default();
        for s in &shards {
            merged.merge_from(s, &mut ops);
        }
        assert_eq!(merged.count(), data.len() as u64);
        assert!(ops.total() > 0);

        let expect: Vec<(usize, f32)> = whole
            .query(0.2)
            .iter()
            .map(|e| (e.level, e.prefix))
            .collect();
        let got: Vec<(usize, f32)> = merged
            .query(0.2)
            .iter()
            .map(|e| (e.level, e.prefix))
            .collect();
        assert_eq!(expect, got, "merged shards must report the same prefixes");
    }

    #[test]
    #[should_panic(expected = "different hierarchies")]
    fn merge_rejects_mismatched_hierarchies() {
        use crate::summary::OpCounter;
        let mut a = HhhSummary::new(0.01, BitPrefixHierarchy::new(vec![4, 8]));
        let b = HhhSummary::new(0.01, BitPrefixHierarchy::new(vec![8, 16]));
        a.merge_from(&b, &mut OpCounter::default());
    }

    #[test]
    fn counts_are_plausible() {
        let h = BitPrefixHierarchy::new(vec![8]);
        let mut hhh = HhhSummary::new(0.002, h);
        let data: Vec<f32> = (0..10_000).map(|i| (i % 4) as f32).collect();
        feed(&mut hhh, &data);
        let result = hhh.query(0.1);
        // Each of 4 leaves is 25%.
        let leaves: Vec<&HhhEntry> = result.iter().filter(|e| e.level == 0).collect();
        assert_eq!(leaves.len(), 4);
        for l in leaves {
            assert!(l.raw_count >= 2400 && l.raw_count <= 2500, "{l:?}");
        }
    }
}
