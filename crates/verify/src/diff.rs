//! The differential fuzz driver.
//!
//! One [`StreamSpec`] fans out across every [`Engine`] × every estimator
//! family (quantile, frequency, HHH, both sliding variants). Answers are
//! fingerprinted per engine and compared — the engines are contractually
//! byte-identical — and the first engine's answers are audited against the
//! exact oracles. Cross-backend identity alone would pass if every backend
//! were identically wrong; the oracle audit alone would pass if one backend
//! silently diverged inside the bound. Together they pin both failure
//! modes.

use gsm_core::{
    replay, BitPrefixHierarchy, Engine, FrequencyEstimator, HhhEstimator, QuantileEstimator,
    SlidingFrequencyEstimator, SlidingQuantileEstimator,
};
use gsm_sketch::exact::ExactStats;
use gsm_sketch::LossyCounting;

use crate::audit::{
    audit_frequency, audit_hhh, audit_quantile, audit_sliding_frequency, audit_sliding_quantile,
    AuditReport,
};
use crate::gen::StreamSpec;

/// Tuning for one verification run; [`VerifyConfig::default`] matches the
/// CI smoke configuration.
#[derive(Clone, Debug)]
pub struct VerifyConfig {
    /// Quantile-estimator error bound.
    pub quantile_eps: f64,
    /// Frequency / HHH error bound.
    pub frequency_eps: f64,
    /// Sliding-window error bound.
    pub sliding_eps: f64,
    /// Heavy-hitter support threshold (must exceed `frequency_eps`).
    pub support: f64,
    /// Quantile fractions probed on every quantile-class estimator.
    pub phis: Vec<f64>,
    /// The backends to fan out across.
    pub engines: Vec<Engine>,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            quantile_eps: 0.02,
            frequency_eps: 0.005,
            sliding_eps: 0.05,
            support: 0.03,
            phis: vec![0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99],
            engines: Engine::ALL.to_vec(),
        }
    }
}

/// One engine's answers, reduced to a fingerprint.
#[derive(Clone, Debug, serde::Serialize)]
pub struct EngineRun {
    /// The backend's display label.
    pub engine: String,
    /// FNV-1a over every answer byte this engine produced.
    pub fingerprint: u64,
}

/// The verdict for one adversarial stream.
#[derive(Clone, Debug, serde::Serialize)]
pub struct FamilyOutcome {
    /// Generator family name.
    pub family: String,
    /// Generator seed.
    pub seed: u64,
    /// Actual stream length.
    pub n: u64,
    /// Window size the boundary families aligned to.
    pub window: u64,
    /// Per-engine answer fingerprints.
    pub engines: Vec<EngineRun>,
    /// Whether every engine produced byte-identical answers.
    pub cross_backend_agree: bool,
    /// Oracle audits of the (agreed) answers, one per estimator.
    pub reports: Vec<AuditReport>,
}

impl FamilyOutcome {
    /// Whether the engines agreed *and* every bound held.
    pub fn passed(&self) -> bool {
        self.cross_backend_agree && self.reports.iter().all(AuditReport::passed)
    }

    /// Human-readable description of every failure in this outcome.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        if !self.cross_backend_agree {
            out.push(format!(
                "{}: engines disagree: {:?}",
                self.family,
                self.engines
                    .iter()
                    .map(|e| (e.engine.as_str(), e.fingerprint))
                    .collect::<Vec<_>>()
            ));
        }
        for r in &self.reports {
            for c in r.violations() {
                out.push(format!(
                    "{}/{}: {} observed {} > bound {}",
                    self.family, r.estimator, c.name, c.observed, c.bound
                ));
            }
        }
        out
    }
}

/// FNV-1a accumulator for answer fingerprints (shared with the sharded
/// differ in [`crate::shard`]).
pub(crate) struct Fnv(pub(crate) u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    pub(crate) fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    pub(crate) fn f32(&mut self, v: f32) {
        self.u64(v.to_bits() as u64);
    }
}

/// Everything one engine answered for one stream.
struct Answers {
    quantiles: Vec<(f64, f32)>,
    q_entries: usize,
    estimates: Vec<(f32, u64)>,
    hh: Vec<(f32, u64)>,
    f_entries: usize,
    hhh: Vec<gsm_core::HhhEntry>,
    hhh_entries: usize,
    sq: Vec<(f64, f32)>,
    sq_covered: u64,
    sq_entries: usize,
    sf_estimates: Vec<(f32, u64)>,
    sf_hh: Vec<(f32, u64)>,
    sf_covered: u64,
    sf_entries: usize,
    pipeline_probe: u64,
}

impl Answers {
    fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for &(phi, v) in &self.quantiles {
            h.u64(phi.to_bits());
            h.f32(v);
        }
        for &(v, c) in self.estimates.iter().chain(&self.hh) {
            h.f32(v);
            h.u64(c);
        }
        for e in &self.hhh {
            h.u64(e.level as u64);
            h.f32(e.prefix);
            h.u64(e.discounted_count);
            h.u64(e.raw_count);
        }
        for &(phi, v) in &self.sq {
            h.u64(phi.to_bits());
            h.f32(v);
        }
        h.u64(self.sq_covered);
        for &(v, c) in self.sf_estimates.iter().chain(&self.sf_hh) {
            h.f32(v);
            h.u64(c);
        }
        h.u64(self.sf_covered);
        h.u64(self.pipeline_probe);
        h.0
    }
}

/// The values worth probing for frequency bounds: the hottest ids (where
/// undercounts concentrate), plus one id guaranteed absent (overestimates
/// on absent values are the classic lookup bug).
pub(crate) fn probe_values(oracle: &ExactStats, max_probes: usize) -> Vec<f32> {
    let mut hot = oracle.heavy_hitters(1);
    hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.total_cmp(&b.0)));
    let mut probes: Vec<f32> = hot.iter().take(max_probes).map(|&(v, _)| v).collect();
    let absent = hot.iter().map(|&(v, _)| v).fold(0.0f32, f32::max).floor() + 7.0;
    probes.push(absent);
    probes
}

#[allow(clippy::too_many_arguments)] // internal fan-out helper: the shared per-family inputs are precomputed once by verify_family
fn run_engine(
    engine: Engine,
    cfg: &VerifyConfig,
    spec: &StreamSpec,
    data: &[f32],
    ids: &[f32],
    probes: &[f32],
    hierarchy: &BitPrefixHierarchy,
    widths: (usize, usize),
) -> Answers {
    let n = data.len();

    let mut q = QuantileEstimator::builder(cfg.quantile_eps)
        .engine(engine)
        .n_hint(n as u64)
        .window(spec.window)
        .build();
    q.push_all(data.iter().copied());
    let quantiles: Vec<(f64, f32)> = cfg.phis.iter().map(|&phi| (phi, q.query(phi))).collect();

    let mut f = FrequencyEstimator::builder(cfg.frequency_eps)
        .engine(engine)
        .build();
    f.push_all(ids.iter().copied());
    let estimates: Vec<(f32, u64)> = probes.iter().map(|&v| (v, f.estimate(v))).collect();
    let hh = f.heavy_hitters(cfg.support);

    let mut h = HhhEstimator::new(cfg.frequency_eps, hierarchy.clone(), engine);
    h.push_all(ids.iter().copied());
    let hhh = h.query(cfg.support);

    let (sq_width, sf_width) = widths;
    let mut sq = SlidingQuantileEstimator::new(cfg.sliding_eps, sq_width, engine);
    sq.push_all(data.iter().copied());
    let sq_answers: Vec<(f64, f32)> = cfg.phis.iter().map(|&phi| (phi, sq.query(phi))).collect();

    let mut sf = SlidingFrequencyEstimator::new(cfg.sliding_eps, sf_width, engine);
    sf.push_all(ids.iter().copied());
    let sf_estimates: Vec<(f32, u64)> = probes.iter().map(|&v| (v, sf.estimate(v))).collect();
    let sf_hh = sf.heavy_hitters(cfg.support + cfg.sliding_eps);

    // One raw-pipeline probe through the deterministic replay entry point:
    // the same sorted windows the estimators consumed, folded into a fresh
    // lossy sketch, fingerprints the window→sort path itself.
    let lossy = replay(
        engine,
        spec.window,
        ids,
        LossyCounting::with_window(
            cfg.frequency_eps,
            spec.window.max((1.0 / cfg.frequency_eps).ceil() as usize),
        ),
    );
    let mut probe_h = Fnv::new();
    for &v in probes {
        probe_h.u64(lossy.estimate(v));
    }

    Answers {
        quantiles,
        q_entries: q.entry_count(),
        estimates,
        hh,
        f_entries: f.entry_count(),
        hhh,
        hhh_entries: h.entry_count(),
        sq: sq_answers,
        sq_covered: sq.covered(),
        sq_entries: sq.entry_count(),
        sf_estimates,
        sf_hh,
        sf_covered: sf.covered(),
        sf_entries: sf.entry_count(),
        pipeline_probe: probe_h.0,
    }
}

/// Fans one adversarial stream across every configured engine and
/// estimator, cross-checks the answers, and audits every paper bound.
pub fn verify_family(spec: &StreamSpec, cfg: &VerifyConfig) -> FamilyOutcome {
    assert!(!cfg.engines.is_empty(), "need at least one engine");
    let data = spec.generate();
    let ids = spec.integer_ids();
    let id_oracle = ExactStats::new(&ids);
    let probes = probe_values(&id_oracle, 16);
    let hierarchy = BitPrefixHierarchy::new(vec![4, 8]);

    // Sliding windows cover the last quarter of the stream (clamped to the
    // sketches' minimum widths).
    let sq_width = (data.len() / 4).max((2.0 / cfg.sliding_eps).ceil() as usize);
    let sf_width = (data.len() / 4).max((4.0 / cfg.sliding_eps).ceil() as usize);

    let runs: Vec<(Engine, Answers)> = cfg
        .engines
        .iter()
        .map(|&e| {
            (
                e,
                run_engine(
                    e,
                    cfg,
                    spec,
                    &data,
                    &ids,
                    &probes,
                    &hierarchy,
                    (sq_width, sf_width),
                ),
            )
        })
        .collect();

    let engines: Vec<EngineRun> = runs
        .iter()
        .map(|(e, a)| EngineRun {
            engine: e.label().to_string(),
            fingerprint: a.fingerprint(),
        })
        .collect();
    let cross_backend_agree = engines
        .windows(2)
        .all(|w| w[0].fingerprint == w[1].fingerprint);

    // Audit the first engine's answers (identical across engines whenever
    // the cross-check holds; when it doesn't, the run already failed).
    let a = &runs[0].1;
    let reports = vec![
        audit_quantile(
            &data,
            cfg.quantile_eps,
            spec.window,
            &a.quantiles,
            a.q_entries,
        ),
        audit_frequency(
            &ids,
            cfg.frequency_eps,
            cfg.support,
            &a.estimates,
            &a.hh,
            a.f_entries,
        ),
        audit_hhh(
            &ids,
            cfg.frequency_eps,
            cfg.support,
            &hierarchy,
            &a.hhh,
            a.hhh_entries,
        ),
        audit_sliding_quantile(
            &data,
            cfg.sliding_eps,
            sq_width,
            a.sq_covered,
            &a.sq,
            a.sq_entries,
        ),
        audit_sliding_frequency(
            &ids,
            cfg.sliding_eps,
            sf_width,
            a.sf_covered,
            cfg.support + cfg.sliding_eps,
            &a.sf_estimates,
            &a.sf_hh,
            a.sf_entries,
        ),
    ];

    FamilyOutcome {
        family: spec.family.name().to_string(),
        seed: spec.seed,
        n: data.len() as u64,
        window: spec.window as u64,
        engines,
        cross_backend_agree,
        reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Family;

    #[test]
    fn host_only_uniform_family_passes() {
        let spec = StreamSpec {
            family: Family::Uniform,
            seed: 7,
            n: 4096,
            window: 1024,
        };
        let cfg = VerifyConfig {
            engines: vec![Engine::Host],
            ..VerifyConfig::default()
        };
        let outcome = verify_family(&spec, &cfg);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures());
        assert_eq!(outcome.reports.len(), 5);
    }

    #[test]
    fn heavy_duplicate_family_passes_on_two_engines() {
        let spec = StreamSpec {
            family: Family::HeavyDuplicate,
            seed: 11,
            n: 4096,
            window: 1024,
        };
        let cfg = VerifyConfig {
            engines: vec![Engine::Host, Engine::ParallelHost],
            ..VerifyConfig::default()
        };
        let outcome = verify_family(&spec, &cfg);
        assert!(outcome.cross_backend_agree);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures());
    }

    #[test]
    fn failures_are_described() {
        let spec = StreamSpec {
            family: Family::ZipfSkew,
            seed: 3,
            n: 2048,
            window: 512,
        };
        let cfg = VerifyConfig {
            engines: vec![Engine::Host],
            ..VerifyConfig::default()
        };
        let mut outcome = verify_family(&spec, &cfg);
        assert!(outcome.failures().is_empty());
        outcome.cross_backend_agree = false;
        assert!(!outcome.passed());
        assert_eq!(outcome.failures().len(), 1);
    }
}
