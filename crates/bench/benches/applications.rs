//! Criterion micro-benchmarks of the application layers (host cost of the
//! estimators, selection, and DSMS pipelines end to end).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gsm_core::{BitPrefixHierarchy, Engine, FrequencyEstimator, QuantileEstimator};
use gsm_cpu::{CpuCostModel, Machine};
use gsm_dsms::StreamEngine;
use gsm_gpu::Device;
use gsm_sort::select::{cpu_quickselect, gpu_kth_largest, load_values_as_depth};
use gsm_stream::{UniformGen, ZipfGen};

fn bench_quantile_estimator(c: &mut Criterion) {
    let n = 100_000usize;
    let data: Vec<f32> = UniformGen::unit(1).take(n).collect();
    let mut group = c.benchmark_group("quantile_estimator_e2e");
    group.throughput(Throughput::Elements(n as u64));
    for engine in [Engine::Host, Engine::GpuSim] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{engine:?}")),
            &data,
            |b, data| {
                b.iter(|| {
                    let mut est = QuantileEstimator::builder(0.01)
                        .engine(engine)
                        .n_hint(data.len() as u64)
                        .build();
                    est.push_all(data.iter().copied());
                    est.query(0.5)
                });
            },
        );
    }
    group.finish();
}

fn bench_frequency_estimator(c: &mut Criterion) {
    let n = 100_000usize;
    let data: Vec<f32> = ZipfGen::new(2, 10_000, 1.1).take(n).collect();
    let mut group = c.benchmark_group("frequency_estimator_e2e");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("host_engine", |b| {
        b.iter(|| {
            let mut est = FrequencyEstimator::builder(0.001)
                .engine(Engine::Host)
                .build();
            est.push_all(data.iter().copied());
            est.heavy_hitters(0.01)
        });
    });
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let n = 65_536usize;
    let data: Vec<f32> = UniformGen::new(3, 0.0, 1.0e6).take(n).collect();
    let mut group = c.benchmark_group("kth_largest");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("gpu_occlusion", |b| {
        b.iter(|| {
            let mut dev = Device::ideal();
            load_values_as_depth(&mut dev, &data);
            gpu_kth_largest(&mut dev, data.len(), 100)
        });
    });
    group.bench_function("cpu_quickselect", |b| {
        b.iter(|| {
            let mut m = Machine::new(CpuCostModel::ideal());
            let mut copy = data.clone();
            cpu_quickselect(&mut copy, 100, &mut m, 0)
        });
    });
    group.finish();
}

fn bench_dsms_shared_pipeline(c: &mut Criterion) {
    let n = 100_000usize;
    let data: Vec<f32> = ZipfGen::new(4, 4096, 1.1).take(n).collect();
    let mut group = c.benchmark_group("dsms_three_queries");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("host_engine", |b| {
        b.iter(|| {
            let mut eng = StreamEngine::new(Engine::Host).with_n_hint(n as u64);
            let q = eng.register_quantile(0.01);
            let _ = eng.register_frequency(0.001);
            let _ = eng.register_hhh(0.001, BitPrefixHierarchy::new(vec![6]));
            eng.push_all(data.iter().copied());
            eng.quantile(q, 0.5)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_quantile_estimator,
    bench_frequency_estimator,
    bench_selection,
    bench_dsms_shared_pipeline
);
criterion_main!(benches);
