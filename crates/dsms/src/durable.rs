//! Durability configuration and recovery reporting for the stream engine.
//!
//! [`DurableOptions`] attaches a `gsm-durable` WAL + checkpoint store to a
//! [`crate::StreamEngine`] (see [`crate::StreamEngine::with_durability`]);
//! [`crate::StreamEngine::recover_from`] rebuilds an engine after a crash
//! and describes what it found in a [`RecoveryReport`].
//!
//! The unit of logging is the engine's shared window: every `window`
//! pushed elements become one WAL record (sequence numbers start at 1),
//! appended *after* the elements entered the pipeline — the log is a
//! redo log of arrival order, not an undo log. Every
//! `CheckpointPolicy::EveryWindows(n)` records the engine snapshots its
//! full envelope (schema 3, which carries the WAL horizon) and truncates
//! log segments below it. Recovery restores the newest parseable
//! checkpoint and replays the WAL tail through the ordinary push path,
//! reproducing the crashed run's flush schedule so answers are
//! byte-identical to an uncrashed run over the same recovered prefix.

use std::path::PathBuf;

use gsm_durable::{CheckpointPolicy, CheckpointStore, FsyncPolicy, Wal, WalOptions};

/// Configuration for a durable engine: where the log lives and how
/// aggressively it is fsynced, checkpointed, and truncated.
#[derive(Clone, Debug)]
pub struct DurableOptions {
    /// Directory holding WAL segments and checkpoint snapshots.
    pub dir: PathBuf,
    /// When appended records are forced to stable storage.
    pub fsync: FsyncPolicy,
    /// How often the engine snapshots its envelope and (optionally)
    /// truncates the log below the snapshot's horizon.
    pub checkpoint: CheckpointPolicy,
    /// WAL records per segment file.
    pub records_per_segment: u64,
    /// Whether a checkpoint truncates WAL segments below its horizon.
    /// Disabling this models the crash-between-checkpoint-and-truncate
    /// window permanently: stale records accumulate and recovery must
    /// skip them.
    pub truncate_on_checkpoint: bool,
}

impl DurableOptions {
    /// Defaults: fsync every seal, checkpoint every 8 windows, 64 records
    /// per segment, truncate on checkpoint.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurableOptions {
            dir: dir.into(),
            fsync: FsyncPolicy::EverySeal,
            checkpoint: CheckpointPolicy::EveryWindows(8),
            records_per_segment: 64,
            truncate_on_checkpoint: true,
        }
    }

    /// Sets the fsync policy.
    pub fn fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Sets the checkpoint policy.
    pub fn checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = policy;
        self
    }

    /// Sets the WAL segment size in records.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn records_per_segment(mut self, n: u64) -> Self {
        assert!(n >= 1, "segments hold at least one record");
        self.records_per_segment = n;
        self
    }

    /// Enables or disables WAL truncation at checkpoint time.
    pub fn truncate_on_checkpoint(mut self, yes: bool) -> Self {
        self.truncate_on_checkpoint = yes;
        self
    }

    pub(crate) fn wal_options(&self) -> WalOptions {
        WalOptions {
            fsync: self.fsync,
            records_per_segment: self.records_per_segment,
        }
    }
}

/// The engine's live durability state: the open WAL, the checkpoint
/// store, and the buffer accumulating the in-flight window.
pub(crate) struct DurableState {
    pub(crate) wal: Wal,
    pub(crate) store: CheckpointStore,
    pub(crate) opts: DurableOptions,
    /// Elements of the current (not yet sealed, not yet logged) window.
    pub(crate) pending: Vec<f32>,
    /// Sequence number the next appended record will carry.
    pub(crate) next_seq: u64,
    /// Records appended since the last checkpoint.
    pub(crate) records_since_checkpoint: u64,
    /// A base checkpoint (horizon 0) must be written at seal time so
    /// recovery always has an envelope carrying the query set.
    pub(crate) needs_base_checkpoint: bool,
}

impl DurableState {
    /// Opens a fresh WAL + store for a new durable engine.
    pub(crate) fn create(opts: DurableOptions) -> std::io::Result<Self> {
        let store = CheckpointStore::open(&opts.dir)?;
        let wal = Wal::create(&opts.dir, opts.wal_options())?;
        Ok(DurableState {
            wal,
            store,
            opts,
            pending: Vec::new(),
            next_seq: 1,
            records_since_checkpoint: 0,
            needs_base_checkpoint: true,
        })
    }
}

/// What [`crate::StreamEngine::recover_from`] found and did.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// WAL horizon of the checkpoint the engine was restored from (0 for
    /// the seal-time base checkpoint).
    pub checkpoint_wal_seq: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed_records: u64,
    /// Stream elements those records carried.
    pub replayed_elements: u64,
    /// Valid records skipped because they sat at or below the checkpoint
    /// horizon (stale segments kept by `truncate_on_checkpoint = false`,
    /// or whole-segment truncation granularity).
    pub skipped_records: u64,
    /// The recovered engine's element count.
    pub recovered_count: u64,
    /// The highest WAL sequence actually applied (the checkpoint horizon
    /// when nothing was replayed).
    pub last_applied_seq: u64,
    /// The log ended in a torn final record (crash artifact); the valid
    /// prefix was recovered and the tail discarded.
    pub torn_tail: bool,
    /// Detected log corruption (CRC mismatch, mid-log truncation,
    /// sequence gap), if any. Recovery stopped at the last valid record;
    /// the damage was never applied.
    pub corruption: Option<String>,
    /// Segment files the recovery scan examined.
    pub segments_scanned: usize,
}

impl RecoveryReport {
    /// Whether the scan saw any damage at all (torn tail or corruption).
    pub fn damaged(&self) -> bool {
        self.torn_tail || self.corruption.is_some()
    }
}
