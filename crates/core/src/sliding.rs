//! Sliding-window estimators (paper §5.3): the same GPU co-processor
//! pipeline feeding per-block summaries over the most recent `width`
//! elements.

use gsm_model::SimTime;
use gsm_sketch::{SlidingFrequency, SlidingQuantile};

use crate::engine::Engine;
use crate::pipeline::WindowedPipeline;
use crate::report::TimeBreakdown;

/// Values buffered per segmented GPU batch. Sliding-window blocks are only
/// `Θ(εW)` elements — far too small to amortize per-pass overhead one batch
/// of four at a time — so the sliding estimators use the segmented pipeline
/// ([`crate::BatchPipeline::segmented`]) with this batch target.
pub const SLIDING_BATCH_VALUES: usize = 128 << 10;

/// ε-approximate quantiles over a sliding window of the last `width`
/// elements, with engine-offloaded block sorting.
pub struct SlidingQuantileEstimator {
    pipeline: WindowedPipeline<SlidingQuantile>,
}

impl SlidingQuantileEstimator {
    /// Creates an estimator with rank error ≤ `eps · width`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1` and `width ≥ 2/eps`.
    pub fn new(eps: f64, width: usize, engine: Engine) -> Self {
        let sketch = SlidingQuantile::new(eps, width);
        let block = sketch.block_size();
        SlidingQuantileEstimator {
            pipeline: WindowedPipeline::segmented(engine, block, SLIDING_BATCH_VALUES, sketch),
        }
    }

    /// The error bound.
    pub fn eps(&self) -> f64 {
        self.pipeline.sink().eps()
    }

    /// The window width.
    pub fn width(&self) -> usize {
        self.pipeline.sink().width()
    }

    /// The engine sorting the blocks.
    pub fn engine(&self) -> Engine {
        self.pipeline.engine()
    }

    /// Summary entries currently held.
    pub fn entry_count(&self) -> usize {
        self.pipeline.sink().entry_count()
    }

    /// Elements the live blocks actually cover — the exact suffix of the
    /// stream a query answers over. Counts only absorbed data; flush first
    /// for an exact figure after raw pushes.
    pub fn covered(&self) -> u64 {
        self.pipeline.sink().covered()
    }

    /// Pushes one stream element.
    pub fn push(&mut self, value: f32) {
        self.pipeline.push(value);
    }

    /// Pushes every element of an iterator.
    pub fn push_all<I: IntoIterator<Item = f32>>(&mut self, values: I) {
        for v in values {
            self.push(v);
        }
    }

    /// Forces buffered data into the sketch.
    pub fn flush(&mut self) {
        self.pipeline.flush();
    }

    /// A φ-quantile over (approximately) the last `width` elements, within
    /// `ε·width` ranks. Flushes first.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been pushed.
    pub fn query(&mut self, phi: f64) -> f32 {
        self.flush();
        self.pipeline.sink_mut().query(phi)
    }

    /// Where the simulated time went.
    pub fn breakdown(&self) -> TimeBreakdown {
        self.pipeline.breakdown()
    }

    /// Total simulated time.
    pub fn total_time(&self) -> SimTime {
        self.breakdown().total()
    }
}

/// ε-approximate frequencies over a sliding window of the last `width`
/// elements, with engine-offloaded block sorting.
pub struct SlidingFrequencyEstimator {
    pipeline: WindowedPipeline<SlidingFrequency>,
}

impl SlidingFrequencyEstimator {
    /// Creates an estimator with frequency error ≤ `eps · width`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1` and `width ≥ 4/eps`.
    pub fn new(eps: f64, width: usize, engine: Engine) -> Self {
        let sketch = SlidingFrequency::new(eps, width);
        let block = sketch.block_size();
        SlidingFrequencyEstimator {
            pipeline: WindowedPipeline::segmented(engine, block, SLIDING_BATCH_VALUES, sketch),
        }
    }

    /// The error bound.
    pub fn eps(&self) -> f64 {
        self.pipeline.sink().eps()
    }

    /// The window width.
    pub fn width(&self) -> usize {
        self.pipeline.sink().width()
    }

    /// The engine sorting the blocks.
    pub fn engine(&self) -> Engine {
        self.pipeline.engine()
    }

    /// Histogram entries currently held.
    pub fn entry_count(&self) -> usize {
        self.pipeline.sink().entry_count()
    }

    /// Elements the live blocks actually cover — the exact suffix of the
    /// stream a query answers over. Counts only absorbed data; flush first
    /// for an exact figure after raw pushes.
    pub fn covered(&self) -> u64 {
        self.pipeline.sink().covered()
    }

    /// Pushes one stream element.
    pub fn push(&mut self, value: f32) {
        self.pipeline.push(value);
    }

    /// Pushes every element of an iterator.
    pub fn push_all<I: IntoIterator<Item = f32>>(&mut self, values: I) {
        for v in values {
            self.push(v);
        }
    }

    /// Forces buffered data into the sketch.
    pub fn flush(&mut self) {
        self.pipeline.flush();
    }

    /// Estimated frequency of `value` in (approximately) the last `width`
    /// elements, within `ε·width`. Flushes first.
    pub fn estimate(&mut self, value: f32) -> u64 {
        self.flush();
        self.pipeline.sink().estimate(value)
    }

    /// Heavy hitters at support `s` over the window (no false negatives).
    /// Flushes first.
    pub fn heavy_hitters(&mut self, s: f64) -> Vec<(f32, u64)> {
        self.flush();
        self.pipeline.sink().heavy_hitters(s)
    }

    /// Where the simulated time went.
    pub fn breakdown(&self) -> TimeBreakdown {
        self.pipeline.breakdown()
    }

    /// Total simulated time.
    pub fn total_time(&self) -> SimTime {
        self.breakdown().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_sketch::exact::ExactStats;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sliding_quantile_tracks_recent_data_on_all_engines() {
        for engine in [Engine::Host, Engine::GpuSim, Engine::CpuSim] {
            let mut est = SlidingQuantileEstimator::new(0.05, 2000, engine);
            let mut rng = StdRng::seed_from_u64(1);
            est.push_all((0..4000).map(|_| rng.random_range(0.0..1.0f32)));
            est.push_all((0..4000).map(|_| rng.random_range(50.0..51.0f32)));
            let med = est.query(0.5);
            assert!(
                med >= 50.0,
                "{engine:?}: median {med} must reflect the recent window"
            );
        }
    }

    #[test]
    fn sliding_quantile_error_within_eps() {
        let eps = 0.02;
        let width = 5000;
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<f32> = (0..20_000).map(|_| rng.random_range(0.0..1.0)).collect();
        let mut est = SlidingQuantileEstimator::new(eps, width, Engine::GpuSim);
        est.push_all(data.iter().copied());
        est.flush();
        let oracle = ExactStats::new(&data[data.len() - width..]);
        for phi in [0.25, 0.5, 0.75] {
            let err = oracle.quantile_rank_error(phi, est.query(phi));
            assert!(err <= eps + 0.002, "phi={phi} err={err}");
        }
    }

    #[test]
    fn sliding_frequency_turnover_on_gpu() {
        let mut est = SlidingFrequencyEstimator::new(0.05, 2000, Engine::GpuSim);
        est.push_all(core::iter::repeat_n(7.0f32, 3000));
        assert!(est.estimate(7.0) >= 1500);
        est.push_all((0..4000).map(|i| (100 + i % 300) as f32));
        assert_eq!(est.estimate(7.0), 0, "expired value must vanish");
    }

    #[test]
    fn sliding_engines_agree() {
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<f32> = (0..10_000)
            .map(|_| rng.random_range(0..50) as f32)
            .collect();
        let answers: Vec<u64> = [Engine::GpuSim, Engine::CpuSim, Engine::Host]
            .into_iter()
            .map(|e| {
                let mut est = SlidingFrequencyEstimator::new(0.02, 4000, e);
                est.push_all(data.iter().copied());
                est.estimate(7.0)
            })
            .collect();
        assert_eq!(answers[0], answers[1]);
        assert_eq!(answers[1], answers[2]);
    }

    #[test]
    fn sliding_times_accumulate() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut est = SlidingQuantileEstimator::new(0.05, 1000, Engine::GpuSim);
        est.push_all((0..5000).map(|_| rng.random_range(0.0..1.0f32)));
        est.flush();
        let b = est.breakdown();
        assert!(b.sort.as_secs() > 0.0);
        assert!(b.transfer.as_secs() > 0.0);
    }
}
