//! The co-processor batching pipeline (paper §4.1).
//!
//! Buffers complete windows and sorts them on the configured engine. On the
//! GPU engine, four windows ride the four RGBA channels of one texture:
//! one upload, one PBSN run, one readback per batch of four. On the CPU
//! engines every window sorts immediately (there is nothing to amortize).

use gsm_cpu::{CpuCostModel, CpuStats, Machine};
use gsm_gpu::{Device, GpuCostModel, GpuStats, Surface, TextureFormat, TextureId};
use gsm_model::SimTime;
use gsm_sort::cpu::quicksort;
use gsm_sort::layout::{texture_dims, PAD};
use gsm_sort::pbsn::{pbsn_sort_device, pbsn_sort_segments};

use crate::engine::Engine;

/// Windows per GPU batch — one per RGBA channel.
pub const GPU_BATCH: usize = 4;

/// Simulated base address of the CPU engine's window buffer.
const WINDOW_BASE: u64 = 0x100_0000;

/// Sorts windows on the selected engine, buffering four at a time for the
/// GPU, and keeps the simulated-time ledger for the sort phase.
pub struct BatchPipeline {
    engine: Engine,
    pending: Vec<Vec<f32>>,
    gpu: Option<GpuWindowSorter>,
    cpu: Option<Machine>,
    windows_sorted: u64,
    /// Minimum buffered values before a GPU batch launches (0 = plain
    /// 4-window batching).
    min_batch_values: usize,
}

impl BatchPipeline {
    /// Creates a pipeline with the calibrated device models.
    pub fn new(engine: Engine) -> Self {
        let gpu = matches!(engine, Engine::GpuSim).then(GpuWindowSorter::new);
        // The paper's CPU estimator baseline sorts windows with stdlib
        // `qsort()` (§5.2: "using the qsort() and GPU-based sorting
        // routines"), i.e. with a comparator function pointer.
        let cpu = matches!(engine, Engine::CpuSim)
            .then(|| Machine::new(CpuCostModel::pentium4_3400_qsort()));
        BatchPipeline { engine, pending: Vec::new(), gpu, cpu, windows_sorted: 0, min_batch_values: 0 }
    }

    /// Creates a *segmented* pipeline: on the GPU engine, windows accumulate
    /// until at least `min_batch_values` are buffered, then all of them sort
    /// in one segmented PBSN run (many aligned segments per channel, the
    /// schedule capped at the segment size). This extension amortizes the
    /// per-pass overhead that makes tiny sorts GPU-hostile (§4.5) and is
    /// what makes sliding windows — whose blocks are only `Θ(εW)` elements —
    /// viable on the co-processor.
    ///
    /// CPU engines behave exactly as in [`BatchPipeline::new`].
    pub fn segmented(engine: Engine, min_batch_values: usize) -> Self {
        let mut p = Self::new(engine);
        p.min_batch_values = min_batch_values;
        p
    }

    /// Selects the GPU texture storage format (no-op on CPU engines).
    /// `Rgba16F` halves bus traffic; values quantize to half precision on
    /// upload, which is lossless for streams already on the f16 grid (the
    /// paper's 16-bit input).
    pub fn with_texture_format(mut self, format: TextureFormat) -> Self {
        if let Some(gpu) = &mut self.gpu {
            gpu.format = format;
        }
        self
    }

    /// The engine in use.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Windows fully sorted so far.
    pub fn windows_sorted(&self) -> u64 {
        self.windows_sorted
    }

    /// Elements sitting in buffered (submitted but unsorted) windows.
    pub fn pending_elements(&self) -> u64 {
        self.pending.iter().map(|w| w.len() as u64).sum()
    }

    /// Submits one complete window. Returns sorted windows as they become
    /// available (empty until a GPU batch fills; immediate on CPU engines).
    pub fn push_window(&mut self, window: Vec<f32>) -> Vec<Vec<f32>> {
        assert!(!window.is_empty(), "windows must be non-empty");
        self.pending.push(window);
        let ready = if self.engine != Engine::GpuSim {
            true
        } else if self.min_batch_values > 0 {
            self.pending_elements() as usize >= self.min_batch_values
        } else {
            self.pending.len() >= GPU_BATCH
        };
        if ready {
            self.flush()
        } else {
            Vec::new()
        }
    }

    /// Sorts and returns everything still buffered (the final partial batch
    /// at end-of-stream).
    pub fn flush(&mut self) -> Vec<Vec<f32>> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let windows = core::mem::take(&mut self.pending);
        self.windows_sorted += windows.len() as u64;
        match self.engine {
            Engine::GpuSim => {
                let gpu = self.gpu.as_mut().expect("gpu engine has a device");
                if self.min_batch_values > 0 {
                    gpu.sort_batch_segmented(&windows)
                } else {
                    gpu.sort_batch(&windows)
                }
            }
            Engine::CpuSim => {
                let machine = self.cpu.as_mut().expect("cpu engine has a machine");
                windows
                    .into_iter()
                    .map(|mut w| {
                        quicksort(&mut w, machine, WINDOW_BASE);
                        w
                    })
                    .collect()
            }
            Engine::Host => windows
                .into_iter()
                .map(|mut w| {
                    w.sort_by(f32::total_cmp);
                    w
                })
                .collect(),
        }
    }

    /// Simulated time spent sorting (GPU render+overhead, or CPU cycles).
    pub fn sort_time(&self) -> SimTime {
        match self.engine {
            Engine::GpuSim => self.gpu.as_ref().expect("gpu engine").dev.stats().gpu_only_time(),
            Engine::CpuSim => self.cpu.as_ref().expect("cpu engine").time(),
            Engine::Host => SimTime::ZERO,
        }
    }

    /// Simulated CPU↔GPU transfer time (zero on CPU engines).
    pub fn transfer_time(&self) -> SimTime {
        self.gpu.as_ref().map(|g| g.dev.stats().transfer_time).unwrap_or(SimTime::ZERO)
    }

    /// GPU execution counters, if the GPU engine is active.
    pub fn gpu_stats(&self) -> Option<&GpuStats> {
        self.gpu.as_ref().map(|g| g.dev.stats())
    }

    /// CPU machine counters, if the CPU engine is active.
    pub fn cpu_stats(&self) -> Option<&CpuStats> {
        self.cpu.as_ref().map(|m| m.stats())
    }
}

/// Owns the simulated device and reuses one texture slot across batches.
struct GpuWindowSorter {
    dev: Device,
    tex: Option<(TextureId, usize)>,
    format: TextureFormat,
}

impl GpuWindowSorter {
    fn new() -> Self {
        GpuWindowSorter {
            dev: Device::new(GpuCostModel::geforce_6800_ultra()),
            tex: None,
            format: TextureFormat::Rgba32F,
        }
    }

    /// Sorts up to four windows, one per channel. Windows may have unequal
    /// lengths (the stream tail); every channel pads to the longest
    /// window's power-of-two length with `+∞`, which sorts to the tail and
    /// is stripped on extraction.
    fn sort_batch(&mut self, windows: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert!(!windows.is_empty() && windows.len() <= GPU_BATCH);
        let longest = windows.iter().map(Vec::len).max().expect("non-empty batch");
        let padded = longest.next_power_of_two().max(2);

        let mut channels: [Vec<f32>; 4] = core::array::from_fn(|_| vec![PAD; padded]);
        for (k, w) in windows.iter().enumerate() {
            debug_assert!(w.iter().all(|v| v.is_finite()), "stream values must be finite");
            channels[k][..w.len()].copy_from_slice(w);
        }
        let (width, _) = texture_dims(padded);
        let surface =
            Surface::from_channels(width, [&channels[0], &channels[1], &channels[2], &channels[3]]);

        let tex = match self.tex {
            Some((id, len)) if len == padded => {
                self.dev.update_texture(id, surface);
                id
            }
            _ => {
                let id = self.dev.upload_texture_fmt(surface, self.format);
                self.tex = Some((id, padded));
                id
            }
        };
        pbsn_sort_device(&mut self.dev, tex);
        let sorted = self.dev.readback_texture(tex);

        windows
            .iter()
            .enumerate()
            .map(|(k, w)| {
                let ch = sorted.channel(gsm_gpu::Channel::ALL[k]);
                ch[..w.len()].to_vec()
            })
            .collect()
    }

    /// Sorts any number of windows in one segmented PBSN run: window `i`
    /// occupies segment `i / 4` of channel `i % 4`; every segment is padded
    /// to the common power-of-two length and sorted independently.
    fn sort_batch_segmented(&mut self, windows: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert!(!windows.is_empty());
        if windows.len() <= GPU_BATCH {
            return self.sort_batch(windows);
        }
        let longest = windows.iter().map(Vec::len).max().expect("non-empty batch");
        let segment = longest.next_power_of_two().max(2);
        let segments_per_channel = windows.len().div_ceil(GPU_BATCH);
        // The texture's texel count must be a power of two for the PBSN
        // layout, and a multiple of the segment size.
        let channel_len = (segments_per_channel * segment).next_power_of_two();

        let mut channels: [Vec<f32>; 4] = core::array::from_fn(|_| vec![PAD; channel_len]);
        for (i, w) in windows.iter().enumerate() {
            debug_assert!(w.iter().all(|v| v.is_finite()), "stream values must be finite");
            let start = (i / GPU_BATCH) * segment;
            channels[i % GPU_BATCH][start..start + w.len()].copy_from_slice(w);
        }
        let (width, _) = texture_dims(channel_len);
        let surface =
            Surface::from_channels(width, [&channels[0], &channels[1], &channels[2], &channels[3]]);

        let tex = match self.tex {
            Some((id, len)) if len == channel_len => {
                self.dev.update_texture(id, surface);
                id
            }
            _ => {
                let id = self.dev.upload_texture_fmt(surface, self.format);
                self.tex = Some((id, channel_len));
                id
            }
        };
        pbsn_sort_segments(&mut self.dev, tex, segment);
        let sorted = self.dev.readback_texture(tex);

        windows
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let ch = sorted.channel(gsm_gpu::Channel::ALL[i % GPU_BATCH]);
                let start = (i / GPU_BATCH) * segment;
                ch[start..start + w.len()].to_vec()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_window(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(0.0..100.0)).collect()
    }

    fn sorted_copy(w: &[f32]) -> Vec<f32> {
        let mut s = w.to_vec();
        s.sort_by(f32::total_cmp);
        s
    }

    #[test]
    fn gpu_batches_four_windows() {
        let mut p = BatchPipeline::new(Engine::GpuSim);
        let windows: Vec<Vec<f32>> = (0..4).map(|k| random_window(100, k)).collect();
        assert!(p.push_window(windows[0].clone()).is_empty());
        assert!(p.push_window(windows[1].clone()).is_empty());
        assert!(p.push_window(windows[2].clone()).is_empty());
        let out = p.push_window(windows[3].clone());
        assert_eq!(out.len(), 4, "fourth window completes the batch");
        for (k, s) in out.iter().enumerate() {
            assert_eq!(*s, sorted_copy(&windows[k]), "window {k}");
        }
        assert_eq!(p.windows_sorted(), 4);
        // One upload + one readback for the whole batch.
        let gs = p.gpu_stats().unwrap();
        assert_eq!(gs.uploads, 1);
        assert_eq!(gs.readbacks, 1);
    }

    #[test]
    fn flush_handles_partial_batches() {
        let mut p = BatchPipeline::new(Engine::GpuSim);
        let w0 = random_window(64, 9);
        let w1 = random_window(50, 10); // ragged tail window
        assert!(p.push_window(w0.clone()).is_empty());
        assert!(p.push_window(w1.clone()).is_empty());
        let out = p.flush();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], sorted_copy(&w0));
        assert_eq!(out[1], sorted_copy(&w1));
        assert!(p.flush().is_empty(), "second flush is a no-op");
    }

    #[test]
    fn cpu_engine_sorts_immediately() {
        let mut p = BatchPipeline::new(Engine::CpuSim);
        let w = random_window(200, 11);
        let out = p.push_window(w.clone());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], sorted_copy(&w));
        assert!(p.sort_time().as_secs() > 0.0);
        assert!(p.transfer_time().is_zero());
        assert!(p.cpu_stats().is_some());
    }

    #[test]
    fn host_engine_is_free() {
        let mut p = BatchPipeline::new(Engine::Host);
        let w = random_window(100, 12);
        let out = p.push_window(w.clone());
        assert_eq!(out[0], sorted_copy(&w));
        assert!(p.sort_time().is_zero());
    }

    #[test]
    fn all_engines_agree() {
        let windows: Vec<Vec<f32>> = (0..5).map(|k| random_window(333, 100 + k)).collect();
        let mut results: Vec<Vec<Vec<f32>>> = Vec::new();
        for engine in [Engine::GpuSim, Engine::CpuSim, Engine::Host] {
            let mut p = BatchPipeline::new(engine);
            let mut sorted: Vec<Vec<f32>> = Vec::new();
            for w in &windows {
                sorted.extend(p.push_window(w.clone()));
            }
            sorted.extend(p.flush());
            assert_eq!(sorted.len(), windows.len());
            results.push(sorted);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn gpu_amortizes_transfers_across_batches() {
        let mut p = BatchPipeline::new(Engine::GpuSim);
        for k in 0..8 {
            let _ = p.push_window(random_window(128, 200 + k));
        }
        let gs = p.gpu_stats().unwrap();
        // 8 windows = 2 batches = 2 uploads + 2 readbacks.
        assert_eq!(gs.uploads, 2);
        assert_eq!(gs.readbacks, 2);
        assert!(p.sort_time() > p.transfer_time());
    }
}
