//! Hardware stream prefetching.
//!
//! The Pentium IV family shipped a hardware prefetcher that detects
//! ascending/descending cache-line streams and pulls lines toward L2 ahead
//! of use. The base calibration (`pentium4_3400`) models it off — the
//! paper's round numbers (~100-cycle memory accesses) describe demand
//! misses — but the [`crate::CpuCostModel::pentium4_3400_prefetch`] preset
//! enables it for sensitivity studies: streaming sorts (merge, radix)
//! benefit enormously, pointer-chasing and partition re-walks far less,
//! which shifts the CPU baseline exactly the way a better memory subsystem
//! would.

/// A table of detected line streams (ascending or descending).
pub struct StreamPrefetcher {
    /// Per-slot: last line observed and direction (+1 / −1).
    slots: Vec<(u64, i64)>,
    next_victim: usize,
    hits: u64,
    misses: u64,
}

impl StreamPrefetcher {
    /// Creates a prefetcher with `streams` tracking slots.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is zero (use the cost-model field to disable).
    pub fn new(streams: usize) -> Self {
        assert!(streams > 0, "need at least one stream slot");
        StreamPrefetcher {
            slots: vec![(u64::MAX, 0); streams],
            next_victim: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Observes an access to cache line `line`; returns `true` if the line
    /// was predicted by an existing stream (i.e. a demand miss on it would
    /// have been covered by the prefetcher).
    pub fn observe(&mut self, line: u64) -> bool {
        // Match: the line continues one of the streams.
        for slot in &mut self.slots {
            let (last, dir) = *slot;
            if last == line {
                // Re-touch within the same line: stream position unchanged.
                return dir != 0;
            }
            if dir != 0 && line == last.wrapping_add(dir as u64) {
                *slot = (line, dir);
                self.hits += 1;
                return true;
            }
        }
        // Train: adjacent to a slot's line establishes a direction.
        for slot in &mut self.slots {
            let (last, dir) = *slot;
            if dir == 0 && last != u64::MAX {
                if line == last.wrapping_add(1) {
                    *slot = (line, 1);
                    return false; // first directed access is still a miss
                }
                if line == last.wrapping_sub(1) {
                    *slot = (line, -1);
                    return false;
                }
            }
        }
        // Allocate: evict round-robin.
        self.slots[self.next_victim] = (line, 0);
        self.next_victim = (self.next_victim + 1) % self.slots.len();
        self.misses += 1;
        false
    }

    /// Lines covered by an active stream so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Accesses that started or restarted a stream.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_is_covered_after_training() {
        let mut p = StreamPrefetcher::new(4);
        assert!(!p.observe(100)); // allocate
        assert!(!p.observe(101)); // train direction
        for line in 102..200 {
            assert!(p.observe(line), "line {line} must be predicted");
        }
    }

    #[test]
    fn descending_streams_work() {
        let mut p = StreamPrefetcher::new(4);
        let _ = p.observe(500);
        let _ = p.observe(499);
        for line in (400..499).rev() {
            assert!(p.observe(line));
        }
    }

    #[test]
    fn interleaved_streams_within_capacity() {
        let mut p = StreamPrefetcher::new(4);
        // Two interleaved ascending streams.
        let _ = p.observe(1000);
        let _ = p.observe(2000);
        let _ = p.observe(1001);
        let _ = p.observe(2001);
        for i in 2..50u64 {
            assert!(p.observe(1000 + i));
            assert!(p.observe(2000 + i));
        }
    }

    #[test]
    fn random_accesses_are_not_predicted() {
        let mut p = StreamPrefetcher::new(8);
        let mut x = 0x12345678u64;
        let mut predicted = 0;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if p.observe(x % 1_000_000) {
                predicted += 1;
            }
        }
        assert!(predicted < 200, "{predicted} random lines predicted");
    }
}
