//! **Shard benchmark** — ingestion throughput across shard counts on the
//! mergeable-summary pipeline.
//!
//! Shard-parallel ingestion hash-partitions the stream across K per-shard
//! window→sort→summary pipelines that share one `gsm-sort` worker pool,
//! then answers queries from the merged running summaries. This harness
//! sweeps K on `Engine::ParallelHost`, measures wall-clock elements/second
//! through the full sharded pipeline (including the query-time merge), and
//! cross-checks that every shard count conserves the stream count and
//! reports the same heavy hitters as K = 1.
//!
//! ```text
//! cargo run --release -p gsm-bench --bin bench_shard [-- --elements 1048576
//!     --window 65536 --repeats 3 --out results/BENCH_shard.json]
//! ```
//!
//! Throughput across K is reported, **not asserted monotone**: with one
//! hardware thread the sweep measures the refactor's overhead (routing +
//! merge) rather than a speedup, and that honest floor is exactly what the
//! perf trajectory should record.

use std::time::Instant;

use gsm_bench::Args;
use gsm_core::{Engine, ShardedPipeline};
use gsm_sketch::LossyCounting;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One shard count's measured run.
#[derive(serde::Serialize)]
struct ShardResult {
    shards: usize,
    elements: u64,
    window: usize,
    /// Best-of-`repeats` wall-clock seconds for ingest + flush + merge.
    wall_secs: f64,
    /// Elements per wall-clock second.
    throughput_eps: f64,
    /// Merge operations spent combining shard summaries at query time.
    merge_ops: u64,
    /// Worker threads in the pool shared by every shard (ParallelHost).
    pool_threads: usize,
    /// Merged summary's occupied entries.
    entries: usize,
    /// Merged summary's surfaced undercount bound.
    undercount_bound: u64,
    /// Heavy hitters above the check support, as `id → estimate` pairs
    /// sorted by id — must agree on ids across shard counts.
    heavy_hitters: Vec<(u32, u64)>,
}

#[derive(serde::Serialize)]
struct Report {
    bench: String,
    engine: String,
    elements: u64,
    window: usize,
    repeats: usize,
    eps: f64,
    support: f64,
    /// Hardware threads the host actually offers — context for the sweep.
    host_threads: usize,
    runs: Vec<ShardResult>,
}

/// A skewed integer-id stream, so heavy hitters exist to cross-check.
fn stream(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Half the stream concentrates on 16 hot ids; the rest spreads
            // over a 4096-id tail.
            if rng.random_range(0..2u32) == 0 {
                rng.random_range(0..16u32) as f32
            } else {
                rng.random_range(16..4096u32) as f32
            }
        })
        .collect()
}

fn run(
    data: &[f32],
    window: usize,
    shards: usize,
    eps: f64,
    support: f64,
    repeats: usize,
) -> ShardResult {
    let mut best: Option<ShardResult> = None;
    for _ in 0..repeats.max(1) {
        let mut p = ShardedPipeline::new(Engine::ParallelHost, window, shards, |_| {
            LossyCounting::with_window(eps, window)
        });
        let pool_threads = p.pool().map_or(0, |pool| pool.threads());
        let start = Instant::now();
        for &v in data {
            p.push(v);
        }
        let merged = p.merged_sink();
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(
            merged.count(),
            data.len() as u64,
            "shard merge must conserve the stream count"
        );
        let threshold = (support * data.len() as f64).ceil() as u64;
        let mut hot: Vec<(u32, u64)> = merged
            .heavy_hitters(support)
            .into_iter()
            .filter(|&(_, est)| est >= threshold)
            .map(|(v, est)| (v as u32, est))
            .collect();
        hot.sort_unstable();
        let result = ShardResult {
            shards,
            elements: data.len() as u64,
            window,
            wall_secs: wall,
            throughput_eps: data.len() as f64 / wall,
            merge_ops: p.merge_ops().total(),
            pool_threads,
            entries: merged.entry_count(),
            undercount_bound: merged.undercount_bound(),
            heavy_hitters: hot,
        };
        if best.as_ref().is_none_or(|b| result.wall_secs < b.wall_secs) {
            best = Some(result);
        }
    }
    best.expect("at least one repeat")
}

fn main() {
    let args = Args::parse();
    let elements: usize = args.get_num("elements", 1 << 20);
    let window: usize = args.get_num("window", 1 << 16);
    let repeats: usize = args.get_num("repeats", 3);
    let eps: f64 = args.get_num("eps", 0.001);
    let support: f64 = args.get_num("support", 0.02);
    let out = args
        .get("out")
        .unwrap_or("results/BENCH_shard.json")
        .to_string();

    let data = stream(elements, 42);
    let threads = std::thread::available_parallelism().map_or(1, usize::from);

    println!("# shard benchmark: {elements} elements, window {window}, {threads} host thread(s)\n");

    let runs: Vec<ShardResult> = [1usize, 2, 4, 8]
        .iter()
        .map(|&k| run(&data, window, k, eps, support, repeats))
        .collect();

    // Every shard count must surface the same heavy-hitter ids as K = 1;
    // estimates may differ within each run's surfaced undercount bound.
    let baseline: Vec<u32> = runs[0].heavy_hitters.iter().map(|&(v, _)| v).collect();
    for r in &runs[1..] {
        let ids: Vec<u32> = r.heavy_hitters.iter().map(|&(v, _)| v).collect();
        assert_eq!(
            ids, baseline,
            "shard count {} changed the heavy-hitter set",
            r.shards
        );
    }

    for r in &runs {
        println!(
            "k={:>2}: {:>10.0} elem/s wall ({:.3}s), {} pool thread(s), {} merge ops, bound {}",
            r.shards,
            r.throughput_eps,
            r.wall_secs,
            r.pool_threads,
            r.merge_ops,
            r.undercount_bound
        );
    }

    let report = Report {
        bench: "shard".to_string(),
        engine: "ParallelHost".to_string(),
        elements: elements as u64,
        window,
        repeats,
        eps,
        support,
        host_threads: threads,
        runs,
    };
    let payload = serde_json::to_string(&report).expect("report serializes");
    gsm_bench::write_result(
        &out,
        &gsm_bench::envelope_json("gsm-bench/bench_shard", &payload),
    );
    println!("\nwrote {out}");
}
