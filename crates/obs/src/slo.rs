//! Latency objectives (SLOs) evaluated against the recorder's own
//! histograms.
//!
//! An [`SloSpec`] declares the latency a metric is supposed to keep (p99,
//! optionally p50); [`crate::Recorder::check_slos`] reads the matching
//! [`crate::Log2Histogram`], estimates the quantiles with
//! [`crate::Log2Histogram::approx_quantile`] (which errs high, so a pass
//! is trustworthy), and bumps a `slo_breach{slo=...}` counter per breached
//! objective — exported as `gsm_slo_breach_total` for alerting. Evaluation
//! is pull-based and idempotent on the histograms: checking never perturbs
//! the latency data it judges.

use crate::Recorder;

/// A declared latency objective for one histogram (optionally one labeled
/// slice of it).
#[derive(Clone, Copy, Debug)]
pub struct SloSpec {
    /// Objective name — the `slo` label value on the breach counter (e.g.
    /// `"serve_quantile"`).
    pub name: &'static str,
    /// Histogram metric to evaluate (e.g. `"serve_latency"`).
    pub metric: &'static str,
    /// Optional `(key, value)` selecting one labeled series (e.g.
    /// `("kind", "quantile")`); `None` evaluates the unlabeled series.
    pub label: Option<(&'static str, &'static str)>,
    /// Optional median objective, in nanoseconds.
    pub p50_ns: Option<u64>,
    /// The p99 objective, in nanoseconds.
    pub p99_ns: u64,
}

/// The verdict for one [`SloSpec`] at evaluation time.
#[derive(Clone, Debug)]
pub struct SloOutcome {
    /// The spec's objective name.
    pub name: &'static str,
    /// Observations behind the estimate (0 = histogram never written; an
    /// empty series never breaches).
    pub count: u64,
    /// Estimated p50, in nanoseconds.
    pub observed_p50_ns: u64,
    /// Estimated p99, in nanoseconds.
    pub observed_p99_ns: u64,
    /// Whether the p50 objective (if declared) was exceeded.
    pub p50_breached: bool,
    /// Whether the p99 objective was exceeded.
    pub p99_breached: bool,
}

impl SloOutcome {
    /// Whether any declared objective was exceeded.
    pub fn breached(&self) -> bool {
        self.p50_breached || self.p99_breached
    }
}

impl Recorder {
    /// Evaluates every spec against the current histograms, bumping
    /// `slo_breach{slo=<name>}` once per breached objective (so scrapes
    /// see `gsm_slo_breach_total` grow while the breach persists).
    ///
    /// On a disabled recorder every outcome reports zero observations and
    /// no breach.
    pub fn check_slos(&self, specs: &[SloSpec]) -> Vec<SloOutcome> {
        specs
            .iter()
            .map(|spec| {
                let hist = match spec.label {
                    Some(label) => self.histogram_labeled(spec.metric, label),
                    None => self.histogram(spec.metric),
                };
                let outcome = match hist {
                    None => SloOutcome {
                        name: spec.name,
                        count: 0,
                        observed_p50_ns: 0,
                        observed_p99_ns: 0,
                        p50_breached: false,
                        p99_breached: false,
                    },
                    Some(h) => {
                        let p50 = h.approx_quantile(0.50);
                        let p99 = h.approx_quantile(0.99);
                        SloOutcome {
                            name: spec.name,
                            count: h.count,
                            observed_p50_ns: p50,
                            observed_p99_ns: p99,
                            p50_breached: spec.p50_ns.is_some_and(|bound| p50 > bound),
                            p99_breached: p99 > spec.p99_ns,
                        }
                    }
                };
                if outcome.breached() {
                    self.count_labeled("slo_breach", ("slo", spec.name), 1);
                }
                outcome
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaches_are_detected_and_counted() {
        let rec = Recorder::enabled();
        for _ in 0..100 {
            rec.observe_ns_labeled("serve_latency", ("kind", "quantile"), 1_000);
        }
        rec.observe_ns_labeled("serve_latency", ("kind", "quantile"), 50_000_000);
        let specs = [
            SloSpec {
                name: "serve_quantile_tight",
                metric: "serve_latency",
                label: Some(("kind", "quantile")),
                p50_ns: Some(10_000),
                p99_ns: 1_000_000, // 1 ms — the 50 ms outlier sits past p99
            },
            SloSpec {
                name: "serve_quantile_loose",
                metric: "serve_latency",
                label: Some(("kind", "quantile")),
                p50_ns: None,
                p99_ns: u64::MAX,
            },
            SloSpec {
                name: "never_written",
                metric: "no_such_metric",
                label: None,
                p50_ns: Some(1),
                p99_ns: 1,
            },
        ];
        let outcomes = rec.check_slos(&specs);
        assert_eq!(outcomes.len(), 3);
        // 101 observations: rank ⌈0.99·101⌉ = 100 still lands in the
        // 1 µs bucket, so the tight p99 holds while p50 is honest.
        assert!(!outcomes[0].p50_breached);
        assert!(!outcomes[0].p99_breached);
        assert!(outcomes[0].count == 101);
        assert!(!outcomes[1].breached());
        assert_eq!(outcomes[2].count, 0);
        assert!(!outcomes[2].breached(), "missing series never breaches");

        // Push the distribution until the tight p99 must breach.
        for _ in 0..100 {
            rec.observe_ns_labeled("serve_latency", ("kind", "quantile"), 50_000_000);
        }
        let outcomes = rec.check_slos(&specs);
        assert!(outcomes[0].p99_breached);
        assert!(outcomes[0].observed_p99_ns > 1_000_000);
        assert_eq!(
            rec.counter_labeled("slo_breach", ("slo", "serve_quantile_tight")),
            1
        );
        assert!(rec
            .prometheus_text()
            .contains("gsm_slo_breach_total{slo=\"serve_quantile_tight\"} 1"));
    }

    #[test]
    fn disabled_recorder_reports_empty_outcomes() {
        let rec = Recorder::disabled();
        let outcomes = rec.check_slos(&[SloSpec {
            name: "x",
            metric: "m",
            label: None,
            p50_ns: None,
            p99_ns: 1,
        }]);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].count, 0);
        assert!(!outcomes[0].breached());
    }
}
