#![warn(missing_docs)]

//! # gsm-durable
//!
//! Crash-safe durability primitives for the stream engine: a segmented,
//! CRC-32-checksummed write-ahead log of sealed-window records, an atomic
//! checkpoint store, and a deterministic fault-injection plan that the
//! verification gate uses to prove recovery under torn writes and
//! corrupted segments.
//!
//! The paper's setting is a DSMS that outlives any single pass over the
//! stream; a process crash between checkpoints must lose at most the
//! un-fsynced tail, never silently corrupt an answer. The contract this
//! crate supports (enforced end to end by `gsm-verify::durable`):
//!
//! * **Bounded loss** — recovery restores the newest checkpoint and
//!   replays the WAL tail; the recovered engine answers byte-identically
//!   to an uncrashed run over the recovered element count.
//! * **No silent replay of damage** — every record carries a CRC over its
//!   header and payload; a torn final record, a truncated segment, or a
//!   flipped payload bit stops the scan at the last valid record and is
//!   surfaced in the [`WalScan`], never applied.
//!
//! Modules:
//!
//! * [`wal`] — record format, segmented writer with configurable
//!   [`FsyncPolicy`], recovery scan, and horizon truncation.
//! * [`store`] — the checkpoint store: atomic (tmp + rename + fsync)
//!   writes, newest-first loads, pruning.
//! * [`fault`] — the [`FaultPlan`]: a seeded splitmix64 schedule of
//!   post-crash disk mutations (torn final record, truncated segment,
//!   payload bit flip) plus the crash-between-checkpoint-and-truncate
//!   scenario, which is configured at runtime rather than injected.

pub mod fault;
pub mod store;
pub mod wal;

pub use fault::{Fault, FaultPlan, InjectionReport};
pub use store::CheckpointStore;
pub use wal::{
    clear, crc32, scan, CheckpointPolicy, FsyncPolicy, RecordLoc, Wal, WalOptions, WalScan,
};

/// The splitmix64 step — the same deterministic core the adversarial
/// stream generators pin their byte sequences with, re-implemented here so
/// the fault plan depends on nothing above this crate.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..100 {
            assert!(r.below(13) < 13);
        }
    }
}
