//! Criterion micro-benchmarks of the summary structures (host cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gsm_sketch::{ExpHistogram, GkSummary, LossyCounting, MisraGries, SlidingQuantile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn uniform(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(0.0..1.0)).collect()
}

fn skewed(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.random_range(0..4) == 0 {
                rng.random_range(0..16) as f32
            } else {
                rng.random_range(0..100_000) as f32
            }
        })
        .collect()
}

fn bench_gk_insert(c: &mut Criterion) {
    let data = uniform(50_000, 1);
    let mut group = c.benchmark_group("gk_insert");
    group.throughput(Throughput::Elements(data.len() as u64));
    for eps in [0.01f64, 0.001] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &data, |b, data| {
            b.iter(|| {
                let mut gk = GkSummary::new(eps);
                for &v in data {
                    gk.insert(v);
                }
                gk.tuple_count()
            });
        });
    }
    group.finish();
}

fn bench_lossy_window(c: &mut Criterion) {
    let data = skewed(100_000, 2);
    let mut group = c.benchmark_group("lossy_counting_stream");
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("eps_1e-3", |b| {
        b.iter(|| {
            let mut lc = LossyCounting::new(0.001);
            for chunk in data.chunks(lc.window()) {
                let mut w = chunk.to_vec();
                w.sort_by(f32::total_cmp);
                lc.push_sorted_window(&w);
            }
            lc.entry_count()
        });
    });
    group.finish();
}

fn bench_exp_histogram(c: &mut Criterion) {
    let data = uniform(100_000, 3);
    let mut group = c.benchmark_group("exp_histogram_stream");
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("eps_0.01_window_1024", |b| {
        b.iter(|| {
            let mut eh = ExpHistogram::new(0.01, 1024, data.len() as u64);
            for chunk in data.chunks(1024) {
                let mut w = chunk.to_vec();
                w.sort_by(f32::total_cmp);
                eh.push_sorted_window(&w);
            }
            eh.entry_count()
        });
    });
    group.finish();
}

fn bench_misra_gries(c: &mut Criterion) {
    let data = skewed(100_000, 4);
    let mut group = c.benchmark_group("misra_gries_insert");
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("k_999", |b| {
        b.iter(|| {
            let mut mg = MisraGries::new(999);
            for &v in &data {
                mg.insert(v);
            }
            mg.counter_count()
        });
    });
    group.finish();
}

fn bench_sliding_quantile(c: &mut Criterion) {
    let data = uniform(100_000, 5);
    let mut group = c.benchmark_group("sliding_quantile_stream");
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("eps_0.01_width_50k", |b| {
        b.iter(|| {
            let mut sq = SlidingQuantile::new(0.01, 50_000);
            for chunk in data.chunks(sq.block_size()) {
                let mut w = chunk.to_vec();
                w.sort_by(f32::total_cmp);
                sq.push_sorted_block(&w);
            }
            sq.query(0.5)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gk_insert,
    bench_lossy_window,
    bench_exp_histogram,
    bench_misra_gries,
    bench_sliding_quantile
);
criterion_main!(benches);
