#![warn(missing_docs)]

//! Sorting on the simulated substrates — the heart of the paper.
//!
//! Section 4 of the paper contributes a GPU sorting algorithm built from two
//! fixed-function capabilities: *texture mapping* supplies the comparator
//! mapping of a sorting network and *blending* (`MIN`/`MAX` conditional
//! assignment) evaluates the comparators. The network is Dowd et al.'s
//! **periodic balanced sorting network** (PBSN); four independent sequences
//! packed into the RGBA channels of one texture are sorted in parallel and
//! merged on the CPU.
//!
//! This crate implements:
//!
//! * [`network`] — abstract comparator-network schedules (PBSN and bitonic)
//!   with a CPU reference executor and 0-1-principle verification,
//! * [`layout`] — value↔texture packing: dimensions, padding, RGBA channel
//!   split/merge,
//! * [`pbsn`] — the paper's sorter (Routines 4.1–4.4) running on a
//!   [`gsm_gpu::Device`], including the two-case `SortStep` quad layout of
//!   Figure 2,
//! * [`bitonic`] — the prior-work baseline: bitonic merge sort as a
//!   53-instruction fragment program (Purcell et al., the paper's \[40\]),
//! * [`cpu`] — instrumented CPU quicksort driving a [`gsm_cpu::Machine`]
//!   (the paper's MSVC `qsort` and Intel-compiler baselines),
//! * [`merge`] — the instrumented 4-way CPU merge that recombines the four
//!   sorted channels,
//! * [`radix`] — branchless host lane sorting in `total_cmp` order via the
//!   IEEE `totalOrder`↔`u32` key bijection,
//! * [`pool`] — a fixed `std::thread` worker pool sorting channel lanes
//!   concurrently while the submitting thread keeps ingesting (the host
//!   analogue of the paper's CPU/GPU overlap),
//! * [`sorter`] — a uniform [`sorter::Sorter`] interface over all engines
//!   returning sorted data plus a simulated-time report.

pub mod bitonic;
pub mod channels;
pub mod cpu;
pub mod layout;
pub mod merge;
pub mod network;
pub mod pbsn;
pub mod pool;
pub mod radix;
pub mod select;
pub mod sorter;

pub use channels::gpu_sort_rgba;
pub use sorter::{SortEngine, SortReport, Sorter};
