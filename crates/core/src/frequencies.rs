//! ε-approximate frequency estimation over the entire stream history
//! (paper §5.1): window-based Manku–Motwani lossy counting with
//! engine-offloaded window sorting.

use gsm_gpu::TextureFormat;
use gsm_model::SimTime;
use gsm_sketch::LossyCounting;

use crate::engine::Engine;
use crate::pipeline::WindowedPipeline;
use crate::report::TimeBreakdown;

/// Builder for [`FrequencyEstimator`].
#[derive(Clone, Debug)]
pub struct FrequencyEstimatorBuilder {
    eps: f64,
    engine: Engine,
    format: TextureFormat,
}

impl FrequencyEstimatorBuilder {
    /// Selects the sorting engine (default: [`Engine::GpuSim`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// GPU texture storage format (default 32-bit). `Rgba16F` halves bus
    /// traffic and is lossless for f16-grid streams like the paper's.
    pub fn texture_format(mut self, format: TextureFormat) -> Self {
        self.format = format;
        self
    }

    /// Builds the estimator. The window size is fixed by the algorithm at
    /// `⌈1/ε⌉`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1`.
    pub fn build(self) -> FrequencyEstimator {
        let sketch = LossyCounting::new(self.eps);
        let window = sketch.window();
        FrequencyEstimator {
            pipeline: WindowedPipeline::new(self.engine, window, sketch)
                .with_texture_format(self.format),
        }
    }
}

/// Streaming ε-deficient frequency estimator (heavy hitters) with
/// engine-offloaded window sorting.
pub struct FrequencyEstimator {
    pipeline: WindowedPipeline<LossyCounting>,
}

impl FrequencyEstimator {
    /// Starts building an estimator with error bound `eps`.
    ///
    /// ```
    /// use gsm_core::{Engine, FrequencyEstimator};
    ///
    /// let mut est = FrequencyEstimator::builder(0.01).engine(Engine::Host).build();
    /// est.push_all((0..10_000).map(|i| (i % 20) as f32)); // each value: 5%
    /// let hh = est.heavy_hitters(0.04);
    /// assert_eq!(hh.len(), 20);
    /// ```
    pub fn builder(eps: f64) -> FrequencyEstimatorBuilder {
        FrequencyEstimatorBuilder {
            eps,
            engine: Engine::GpuSim,
            format: TextureFormat::Rgba32F,
        }
    }

    /// The error bound.
    pub fn eps(&self) -> f64 {
        self.pipeline.sink().eps()
    }

    /// The window size `⌈1/ε⌉`.
    pub fn window(&self) -> usize {
        self.pipeline.window()
    }

    /// The engine sorting the windows.
    pub fn engine(&self) -> Engine {
        self.pipeline.engine()
    }

    /// Elements pushed so far (including any still buffered).
    pub fn count(&self) -> u64 {
        self.pipeline.sink().count() + self.pipeline.unabsorbed()
    }

    /// Summary entries currently held (memory footprint).
    pub fn entry_count(&self) -> usize {
        self.pipeline.sink().entry_count()
    }

    /// Pushes one stream element.
    pub fn push(&mut self, value: f32) {
        self.pipeline.push(value);
    }

    /// Pushes every element of an iterator.
    pub fn push_all<I: IntoIterator<Item = f32>>(&mut self, values: I) {
        for v in values {
            self.push(v);
        }
    }

    /// Forces all buffered data through the pipeline and into the sketch.
    pub fn flush(&mut self) {
        self.pipeline.flush();
    }

    /// The estimated frequency of `value` — an underestimate of the true
    /// frequency by at most `ε·N`. Flushes first.
    pub fn estimate(&mut self, value: f32) -> u64 {
        self.flush();
        self.pipeline.sink().estimate(value)
    }

    /// The ε-approximate heavy-hitters query at support `s`: every element
    /// with true frequency ≥ `s·N` is returned (no false negatives) and
    /// nothing below `(s − ε)·N`. Flushes first.
    ///
    /// # Panics
    ///
    /// Panics unless `eps < s ≤ 1`.
    pub fn heavy_hitters(&mut self, s: f64) -> Vec<(f32, u64)> {
        self.flush();
        self.pipeline.sink().heavy_hitters(s)
    }

    /// Where the simulated time went (Figures 5 and 6). The histogram scan
    /// is part of the sort phase, matching the paper's three-way split.
    pub fn breakdown(&self) -> TimeBreakdown {
        self.pipeline.breakdown()
    }

    /// Total simulated time.
    pub fn total_time(&self) -> SimTime {
        self.breakdown().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_sketch::exact::ExactStats;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn skewed(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                if rng.random_range(0..10) < 3 {
                    rng.random_range(0..8) as f32
                } else {
                    rng.random_range(100..100_000) as f32
                }
            })
            .collect()
    }

    fn check_engine(engine: Engine) {
        let data = skewed(30_000, 5);
        let eps = 0.001;
        let mut est = FrequencyEstimator::builder(eps).engine(engine).build();
        est.push_all(data.iter().copied());
        let oracle = ExactStats::new(&data);
        let bound = (eps * data.len() as f64).ceil() as u64;
        for hot in 0..8 {
            let v = hot as f32;
            let e = est.estimate(v);
            let t = oracle.frequency(v);
            assert!(
                e <= t && t - e <= bound,
                "{engine:?} value {v}: est {e} truth {t}"
            );
        }
    }

    #[test]
    fn host_engine_within_eps() {
        check_engine(Engine::Host);
    }

    #[test]
    fn gpu_engine_within_eps() {
        check_engine(Engine::GpuSim);
    }

    #[test]
    fn cpu_engine_within_eps() {
        check_engine(Engine::CpuSim);
    }

    #[test]
    fn engines_agree_exactly() {
        let data = skewed(20_000, 6);
        let results: Vec<Vec<(f32, u64)>> = [Engine::GpuSim, Engine::CpuSim, Engine::Host]
            .into_iter()
            .map(|e| {
                let mut est = FrequencyEstimator::builder(0.002).engine(e).build();
                est.push_all(data.iter().copied());
                est.heavy_hitters(0.01)
            })
            .collect();
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn f16_textures_halve_transfer_and_keep_answers() {
        // The stream sits on the f16 grid (our generators quantize), so
        // Rgba16F storage is lossless and the answers must be identical.
        let data: Vec<f32> = gsm_stream::UniformGen::unit(77).take(20_000).collect();
        let run = |fmt: TextureFormat| {
            let mut est = FrequencyEstimator::builder(0.001)
                .engine(Engine::GpuSim)
                .texture_format(fmt)
                .build();
            est.push_all(data.iter().copied());
            let hh = est.heavy_hitters(0.0015);
            (hh, est.breakdown().transfer)
        };
        let (hh32, t32) = run(TextureFormat::Rgba32F);
        let (hh16, t16) = run(TextureFormat::Rgba16F);
        assert_eq!(hh32, hh16, "answers must be identical on f16-grid data");
        // Payload halves; the fixed per-transfer DMA latency doesn't, so
        // the observed ratio sits between 0.5 and 1 depending on batch size.
        let ratio = t16.as_secs() / t32.as_secs();
        assert!((0.45..0.80).contains(&ratio), "transfer ratio {ratio}");
        assert!(t16 < t32);
    }

    #[test]
    fn no_false_negatives() {
        let data = skewed(50_000, 7);
        let eps = 0.0005;
        let s = 0.02;
        let mut est = FrequencyEstimator::builder(eps)
            .engine(Engine::Host)
            .build();
        est.push_all(data.iter().copied());
        let oracle = ExactStats::new(&data);
        let truth = oracle.heavy_hitters((s * data.len() as f64).ceil() as u64);
        let answer: Vec<f32> = est.heavy_hitters(s).iter().map(|&(v, _)| v).collect();
        for (v, _) in truth {
            assert!(answer.contains(&v), "missing heavy hitter {v}");
        }
    }

    #[test]
    fn sort_dominates_breakdown() {
        // The paper's §5.1: 80–90 % of running time is the sort phase.
        let data = skewed(100_000, 8);
        let mut est = FrequencyEstimator::builder(0.0005)
            .engine(Engine::CpuSim)
            .build();
        est.push_all(data.iter().copied());
        est.flush();
        let b = est.breakdown();
        assert!(b.sort_fraction() > 0.7, "sort must dominate: {b}");
    }

    #[test]
    fn count_includes_buffered() {
        let mut est = FrequencyEstimator::builder(0.01)
            .engine(Engine::GpuSim)
            .build();
        // Repeat values so they survive lossy counting's compress step
        // (singletons are deleted by design).
        est.push_all((0..250).map(|i| (i % 50) as f32));
        assert_eq!(est.count(), 250);
        assert!(est.estimate(0.0) >= 4, "got {}", est.estimate(0.0));
        assert_eq!(est.count(), 250);
    }
}
