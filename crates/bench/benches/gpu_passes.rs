//! Criterion micro-benchmarks of the GPU simulator's render-pass execution
//! (host cost of the fast separable path vs the generic path, blits, and
//! f16 conversion throughput).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gsm_gpu::{BlendOp, Device, Quad, Rect, Surface};
use gsm_stream::F16;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_surface(w: u32, h: u32, seed: u64) -> Surface {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = Surface::new(w, h);
    for t in s.texels_mut() {
        *t = core::array::from_fn(|_| rng.random_range(0.0..1.0e6));
    }
    s
}

fn bench_blend_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("blend_pass_min");
    for dim in [256u32, 1024] {
        let texels = (dim * dim) as u64;
        group.throughput(Throughput::Elements(texels));
        let surface = random_surface(dim, dim, 1);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &surface, |b, surface| {
            let mut dev = Device::ideal();
            let tex = dev.upload_texture(surface.clone());
            dev.resize_framebuffer(dim, dim);
            // Mirror-mapped full-screen quad: the PBSN inner loop.
            let quad = Quad::mapped(Rect::new(0, 0, dim, dim), dim as f32, 0.0, 0.0, dim as f32);
            b.iter(|| dev.draw_quads(tex, core::slice::from_ref(&quad), BlendOp::Min));
        });
    }
    group.finish();
}

fn bench_copy_pass_and_blit(c: &mut Criterion) {
    let dim = 512u32;
    let surface = random_surface(dim, dim, 2);
    let mut group = c.benchmark_group("copy_and_blit");
    group.throughput(Throughput::Elements((dim * dim) as u64));
    group.bench_function("copy_pass", |b| {
        let mut dev = Device::ideal();
        let tex = dev.upload_texture(surface.clone());
        dev.resize_framebuffer(dim, dim);
        let quad = Quad::copy(Rect::new(0, 0, dim, dim));
        b.iter(|| dev.draw_quads(tex, core::slice::from_ref(&quad), BlendOp::Replace));
    });
    group.bench_function("blit_fb_to_tex", |b| {
        let mut dev = Device::ideal();
        let tex = dev.upload_texture(surface.clone());
        dev.resize_framebuffer(dim, dim);
        b.iter(|| dev.copy_framebuffer_to_texture(tex));
    });
    group.finish();
}

fn bench_f16_conversion(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let values: Vec<f32> = (0..65_536)
        .map(|_| rng.random_range(-1.0e4..1.0e4))
        .collect();
    let mut group = c.benchmark_group("f16_round_trip");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("encode_decode", |b| {
        b.iter(|| {
            values
                .iter()
                .map(|&v| F16::from_f32(v).to_f32())
                .sum::<f32>()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_blend_pass,
    bench_copy_pass_and_blit,
    bench_f16_conversion
);
criterion_main!(benches);
