//! The paper's full GPU batch pipeline: four windows in the RGBA channels,
//! one PBSN run, CPU 4-way merge (§4.1 + §4.4).
//!
//! *"In order to utilize the parallelism offered by the four vector
//! processing units in each fragment processor, we buffer four windows of
//! data values and represent each of the windows in a color component of
//! the 2D texture. Each window of data value is sorted in parallel and we
//! merge the four sorted lists back on the CPU."*

use gsm_cpu::{CpuCostModel, Machine};
use gsm_gpu::{Device, GpuCostModel, GpuStats, TextureFormat, TextureId};
use gsm_model::SimTime;

use crate::layout::{channels_from_surface, split_channels, surface_from_channels};
use crate::merge::merge4;
use crate::pbsn::pbsn_sort_device;

/// Simulated base addresses for the merge: four input runs and the output,
/// each in its own 16 MiB arena so they contend in cache like distinct
/// buffers.
const RUN_BASE: [u64; 4] = [0x100_0000, 0x200_0000, 0x300_0000, 0x400_0000];
const OUT_BASE: u64 = 0x500_0000;

/// Sorts a batch on the GPU (4-channel PBSN) and merges on the CPU.
///
/// One-shot variant of [`GpuBatchSorter::sort`]; allocates a fresh texture
/// on `dev`.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-finite values (the padding
/// protocol reserves `+∞`).
pub fn gpu_sort_rgba(dev: &mut Device, machine: &mut Machine, values: &[f32]) -> Vec<f32> {
    assert!(!values.is_empty(), "cannot sort an empty batch");
    debug_assert!(
        values.iter().all(|v| v.is_finite()),
        "values must be finite"
    );
    let (channels, _padded) = split_channels(values);
    let counts = channel_counts(values.len());
    let surface = surface_from_channels(&channels);
    let tex = dev.upload_texture(surface);
    pbsn_sort_device(dev, tex);
    let sorted = dev.readback_texture(tex);
    let runs = channels_from_surface(&sorted);
    merge4(
        [
            &runs[0][..counts[0]],
            &runs[1][..counts[1]],
            &runs[2][..counts[2]],
            &runs[3][..counts[3]],
        ],
        machine,
        RUN_BASE,
        OUT_BASE,
    )
}

/// Number of real (non-padding) values in each channel for a batch of `n`.
pub fn channel_counts(n: usize) -> [usize; 4] {
    let per = n.div_ceil(4);
    core::array::from_fn(|k| n.saturating_sub(k * per).min(per))
}

/// A reusable GPU batch sorter for streaming workloads: keeps one device,
/// one merge machine, and re-uploads into the same texture slot when batch
/// sizes repeat (the steady state of the windowed estimators).
pub struct GpuBatchSorter {
    dev: Device,
    machine: Machine,
    tex: Option<(TextureId, usize)>,
    format: TextureFormat,
}

impl GpuBatchSorter {
    /// Builds a sorter from explicit device models.
    pub fn new(gpu: GpuCostModel, cpu: CpuCostModel) -> Self {
        GpuBatchSorter {
            dev: Device::new(gpu),
            machine: Machine::new(cpu),
            tex: None,
            format: TextureFormat::Rgba32F,
        }
    }

    /// Selects the texture storage format. `Rgba16F` halves transfer
    /// traffic and quantizes values to half precision — lossless for the
    /// paper's 16-bit streams.
    pub fn with_format(mut self, format: TextureFormat) -> Self {
        self.format = format;
        self
    }

    /// The calibrated testbed: GeForce 6800 Ultra + Pentium IV merge.
    pub fn testbed() -> Self {
        Self::new(
            GpuCostModel::geforce_6800_ultra(),
            CpuCostModel::pentium4_3400(),
        )
    }

    /// A zero-cost sorter for functional tests.
    pub fn ideal() -> Self {
        let mut s = Self::new(GpuCostModel::ideal(), CpuCostModel::ideal());
        s.dev = Device::ideal();
        s
    }

    /// Sorts one batch; see [`gpu_sort_rgba`].
    pub fn sort(&mut self, values: &[f32]) -> Vec<f32> {
        assert!(!values.is_empty(), "cannot sort an empty batch");
        debug_assert!(
            values.iter().all(|v| v.is_finite()),
            "values must be finite"
        );
        let (channels, padded) = split_channels(values);
        let counts = channel_counts(values.len());
        let surface = surface_from_channels(&channels);
        let tex = match self.tex {
            Some((id, len)) if len == padded => {
                self.dev.update_texture(id, surface);
                id
            }
            _ => {
                let id = self.dev.upload_texture_fmt(surface, self.format);
                self.tex = Some((id, padded));
                id
            }
        };
        pbsn_sort_device(&mut self.dev, tex);
        let sorted = self.dev.readback_texture(tex);
        let runs = channels_from_surface(&sorted);
        merge4(
            [
                &runs[0][..counts[0]],
                &runs[1][..counts[1]],
                &runs[2][..counts[2]],
                &runs[3][..counts[3]],
            ],
            &mut self.machine,
            RUN_BASE,
            OUT_BASE,
        )
    }

    /// Accumulated GPU-side ledger (render + overhead + transfers).
    pub fn gpu_stats(&self) -> &GpuStats {
        self.dev.stats()
    }

    /// Accumulated CPU merge time.
    pub fn merge_time(&self) -> SimTime {
        self.machine.time()
    }

    /// Total simulated time: GPU pipeline + bus + CPU merge.
    pub fn total_time(&self) -> SimTime {
        self.dev.stats().total_time() + self.machine.time()
    }

    /// Resets both ledgers (keeps the texture allocation).
    pub fn reset_ledgers(&mut self) {
        self.dev.reset_stats();
        self.machine.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(0.0..1000.0)).collect()
    }

    #[test]
    fn channel_counts_cover_all_values() {
        for n in [1usize, 3, 4, 5, 17, 64, 100] {
            let c = channel_counts(n);
            assert_eq!(c.iter().sum::<usize>(), n, "n={n}");
            let per = n.div_ceil(4);
            assert!(c.iter().all(|&k| k <= per));
        }
    }

    #[test]
    fn one_shot_sorts_various_sizes() {
        for n in [1usize, 2, 4, 7, 63, 64, 100, 1000] {
            let values = random_vec(n, n as u64);
            let mut dev = Device::ideal();
            let mut machine = Machine::new(CpuCostModel::ideal());
            let sorted = gpu_sort_rgba(&mut dev, &mut machine, &values);
            let mut expect = values.clone();
            expect.sort_by(f32::total_cmp);
            assert_eq!(sorted, expect, "n={n}");
        }
    }

    #[test]
    fn batch_sorter_reuses_texture_slot() {
        let mut sorter = GpuBatchSorter::testbed();
        for round in 0..5 {
            let values = random_vec(256, round);
            let sorted = sorter.sort(&values);
            let mut expect = values.clone();
            expect.sort_by(f32::total_cmp);
            assert_eq!(sorted, expect);
        }
        // Five uploads (one per batch) but only one texture allocation:
        // reuses the slot, so uploads == batches.
        assert_eq!(sorter.gpu_stats().uploads, 5);
        assert_eq!(sorter.gpu_stats().readbacks, 5);
    }

    #[test]
    fn ledger_accumulates_and_resets() {
        let mut sorter = GpuBatchSorter::testbed();
        let _ = sorter.sort(&random_vec(128, 1));
        assert!(sorter.total_time().as_secs() > 0.0);
        assert!(sorter.merge_time().as_secs() > 0.0);
        sorter.reset_ledgers();
        assert!(sorter.total_time().is_zero());
    }

    #[test]
    fn transfer_volume_matches_batch_both_ways() {
        let mut sorter = GpuBatchSorter::testbed();
        let n = 1024usize;
        let _ = sorter.sort(&random_vec(n, 2));
        // n values → n/4 texels × 16 B = 4n bytes each way.
        assert_eq!(sorter.gpu_stats().bus_bytes.get(), 2 * 4 * n as u64);
    }
}
