//! The aggregated metric primitives behind a [`crate::Recorder`]: counters
//! live directly in the registry map; this module provides the two stateful
//! instruments (gauges with a high-water mark and log2-bucketed latency
//! histograms) plus the bounded span ring.

use std::collections::VecDeque;

/// A point-in-time instrument tracking its current value and the highest
/// value it ever reached (the high-water mark).
///
/// Queue depths are the canonical use: submitters add, workers subtract,
/// and the high-water mark records the deepest backlog ever observed even
/// if the exporter only runs at the end.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Gauge {
    /// The current value.
    pub current: i64,
    /// The maximum value `current` ever reached (0 if never positive).
    pub highwater: i64,
}

impl Gauge {
    /// Adds `delta` (which may be negative) and updates the high-water
    /// mark.
    pub fn add(&mut self, delta: i64) {
        self.current += delta;
        self.highwater = self.highwater.max(self.current);
    }

    /// Overwrites the current value and updates the high-water mark.
    pub fn set(&mut self, value: i64) {
        self.current = value;
        self.highwater = self.highwater.max(value);
    }
}

/// Number of log2 buckets: one per possible bit length of a `u64` duration
/// in nanoseconds, plus bucket 0 for zero.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-bucket latency histogram: bucket `i` counts observations whose
/// nanosecond value has bit length `i` (i.e. lies in `[2^(i-1), 2^i)`),
/// with bucket 0 reserved for exact zeros.
///
/// Log2 buckets trade resolution for a fixed, allocation-free footprint —
/// the same trade profiling-oriented collectors make — and cover the full
/// `u64` range from 1 ns to ~584 years without configuration.
#[derive(Clone, Debug)]
pub struct Log2Histogram {
    /// Observation counts per bit-length bucket.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, in nanoseconds.
    pub sum_ns: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }
}

impl Log2Histogram {
    /// Records one observation of `ns` nanoseconds.
    pub fn observe(&mut self, ns: u64) {
        let bucket = (u64::BITS - ns.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// The highest non-empty bucket index, or `None` when empty.
    pub fn max_bucket(&self) -> Option<usize> {
        (0..HIST_BUCKETS).rev().find(|&i| self.buckets[i] > 0)
    }

    /// Mean observed value in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// One finished span, as logged in the ring buffer.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// The span's phase name (e.g. `pipeline_sort`).
    pub name: &'static str,
    /// Optional `(key, value)` label (e.g. `("engine", "GpuSim")`).
    pub label: Option<(&'static str, String)>,
    /// Small integer id of the recording thread (stable per thread).
    pub tid: u64,
    /// Start time relative to the recorder's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// A bounded FIFO log of the most recent [`SpanEvent`]s.
///
/// The ring keeps memory constant on unbounded streams: when full, the
/// oldest event is dropped and counted, so exporters can report how much
/// history was lost.
#[derive(Clone, Debug)]
pub struct SpanRing {
    buf: VecDeque<SpanEvent>,
    cap: usize,
    dropped: u64,
}

impl SpanRing {
    /// Creates a ring holding at most `cap` events (min 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        SpanRing {
            buf: VecDeque::with_capacity(cap),
            cap,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, event: SpanEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    /// Events currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SpanEvent> {
        self.buf.iter()
    }

    /// Events retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_tracks_highwater() {
        let mut g = Gauge::default();
        g.add(3);
        g.add(2);
        g.add(-4);
        assert_eq!(g.current, 1);
        assert_eq!(g.highwater, 5);
        g.set(0);
        assert_eq!(g.highwater, 5, "set never lowers the mark");
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Log2Histogram::default();
        h.observe(0); // bucket 0
        h.observe(1); // bucket 1
        h.observe(2); // bucket 2
        h.observe(3); // bucket 2
        h.observe(1024); // bucket 11
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[11], 1);
        assert_eq!(h.count, 5);
        assert_eq!(h.sum_ns, 1030);
        assert_eq!(h.max_bucket(), Some(11));
        assert_eq!(h.mean_ns(), 206);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = SpanRing::new(2);
        for i in 0..5u64 {
            r.push(SpanEvent {
                name: "t",
                label: None,
                tid: 0,
                start_ns: i,
                dur_ns: 1,
            });
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        let starts: Vec<u64> = r.iter().map(|e| e.start_ns).collect();
        assert_eq!(starts, vec![3, 4]);
        assert!(!r.is_empty());
    }
}
