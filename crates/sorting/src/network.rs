//! Abstract comparator networks.
//!
//! A sorting network is a data-independent schedule of compare-exchange
//! operations (paper §4.3). This module builds the schedules used by the GPU
//! sorters — the **periodic balanced sorting network** (Dowd et al., the
//! paper's \[16\]) and the **bitonic network** (Batcher, the paper's \[8\]) — and
//! provides a CPU reference executor plus 0-1-principle verification, so the
//! GPU render-pass implementations can be checked step-for-step against a
//! known-correct model.

/// One compare-exchange: after execution, `data[lo] = min`, `data[hi] = max`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Comparator {
    /// Index receiving the minimum.
    pub lo: usize,
    /// Index receiving the maximum.
    pub hi: usize,
}

/// A step: comparators that execute simultaneously (disjoint indices).
pub type Step = Vec<Comparator>;

/// A full network: steps in execution order.
pub type Schedule = Vec<Step>;

/// Builds the PBSN schedule for `n` elements (`n` must be a power of two).
///
/// The network runs `log n` identical stages; each stage runs `log n` steps
/// with block size `B = n, n/2, …, 2`. Within each block a value at local
/// position `i` is paired with position `B−1−i`; the minimum lands in the
/// lower half (paper §4.4).
///
/// Total comparators: `(n/2)·log²n`.
///
/// # Panics
///
/// Panics if `n` is not a power of two or is zero.
pub fn pbsn_schedule(n: usize) -> Schedule {
    assert!(
        n.is_power_of_two(),
        "PBSN requires a power-of-two input size, got {n}"
    );
    let stages = n.trailing_zeros();
    let mut schedule = Vec::new();
    for _stage in 0..stages {
        let mut block = n;
        while block >= 2 {
            schedule.push(pbsn_step(n, block));
            block /= 2;
        }
    }
    schedule
}

/// The comparators of one PBSN step at the given block size.
pub fn pbsn_step(n: usize, block: usize) -> Step {
    debug_assert!(block >= 2 && block <= n && n.is_multiple_of(block));
    let mut step = Vec::with_capacity(n / 2);
    for start in (0..n).step_by(block) {
        for i in 0..block / 2 {
            step.push(Comparator {
                lo: start + i,
                hi: start + block - 1 - i,
            });
        }
    }
    step
}

/// Builds the bitonic sorting network for `n` elements (`n` must be a power
/// of two).
///
/// Classic Batcher construction: merge sizes `k = 2, 4, …, n`; within each,
/// strides `j = k/2, …, 1`; element `i` pairs with `i ^ j`, ascending when
/// `i & k == 0`. Total comparators: `(n/4)·log n·(log n + 1)`.
///
/// # Panics
///
/// Panics if `n` is not a power of two or is zero.
pub fn bitonic_schedule(n: usize) -> Schedule {
    assert!(
        n.is_power_of_two(),
        "bitonic requires a power-of-two input size, got {n}"
    );
    let mut schedule = Vec::new();
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j >= 1 {
            let mut step = Vec::with_capacity(n / 2);
            for i in 0..n {
                let l = i ^ j;
                if l > i {
                    let ascending = i & k == 0;
                    let (lo, hi) = if ascending { (i, l) } else { (l, i) };
                    step.push(Comparator { lo, hi });
                }
            }
            schedule.push(step);
            j /= 2;
        }
        k *= 2;
    }
    schedule
}

/// Builds Batcher's odd-even merge sorting network for `n` elements
/// (`n` must be a power of two).
///
/// Uses the fewest comparators of the three classic networks —
/// `n/4·log n·(log n+1)` like bitonic in step count but with many steps
/// only half-populated — yet its comparator *pattern* (translation by a
/// stride, phase-dependent) does not decompose into the handful of mirrored
/// quads PBSN enjoys, which is precisely why the paper builds on PBSN
/// (§4.4) despite PBSN's higher comparator count.
///
/// # Panics
///
/// Panics if `n` is not a power of two or is zero.
pub fn odd_even_merge_schedule(n: usize) -> Schedule {
    assert!(
        n.is_power_of_two(),
        "odd-even merge requires a power-of-two size, got {n}"
    );
    let mut schedule = Vec::new();
    // Knuth's iterative formulation (TAOCP 5.2.2, Algorithm M).
    let mut p = 1;
    while p < n {
        let mut k = p;
        while k >= 1 {
            let mut step = Vec::new();
            for j in (k % p..n.saturating_sub(k)).step_by(2 * k) {
                for i in 0..k.min(n - j - k) {
                    if (i + j) / (2 * p) == (i + j + k) / (2 * p) {
                        step.push(Comparator {
                            lo: i + j,
                            hi: i + j + k,
                        });
                    }
                }
            }
            if !step.is_empty() {
                schedule.push(step);
            }
            k /= 2;
        }
        p *= 2;
    }
    schedule
}

/// Executes a schedule on a slice — the CPU reference model for the GPU
/// implementations.
///
/// # Panics
///
/// Panics (in debug builds) if a comparator index is out of bounds.
pub fn apply_schedule(data: &mut [f32], schedule: &Schedule) {
    for step in schedule {
        apply_step(data, step);
    }
}

/// Executes a single step.
pub fn apply_step(data: &mut [f32], step: &Step) {
    for c in step {
        let (a, b) = (data[c.lo], data[c.hi]);
        data[c.lo] = a.min(b);
        data[c.hi] = a.max(b);
    }
}

/// Checks a schedule sorts *every* input of length `n` via the 0-1
/// principle: a comparator network sorts all inputs iff it sorts all `2ⁿ`
/// 0-1 vectors. Exhaustive, so only feasible for small `n` (≤ ~20).
///
/// Returns the first failing bit pattern, or `None` if the network is a
/// sorting network.
pub fn zero_one_violation(n: usize, schedule: &Schedule) -> Option<u64> {
    assert!(
        n <= 24,
        "exhaustive 0-1 check is exponential; n = {n} is too large"
    );
    let mut buf = vec![0.0f32; n];
    for pattern in 0u64..(1u64 << n) {
        for (i, v) in buf.iter_mut().enumerate() {
            *v = ((pattern >> i) & 1) as f32;
        }
        apply_schedule(&mut buf, schedule);
        if buf.windows(2).any(|w| w[0] > w[1]) {
            return Some(pattern);
        }
    }
    None
}

/// Comparator count of a schedule.
pub fn comparator_count(schedule: &Schedule) -> usize {
    schedule.iter().map(Vec::len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pbsn_shape() {
        let n = 16;
        let s = pbsn_schedule(n);
        // log n stages × log n steps.
        assert_eq!(s.len(), 16);
        // Every step has n/2 comparators.
        assert!(s.iter().all(|step| step.len() == n / 2));
        assert_eq!(comparator_count(&s), (n / 2) * 16);
    }

    #[test]
    fn bitonic_shape() {
        let n = 16;
        let s = bitonic_schedule(n);
        // log n (log n + 1) / 2 steps.
        assert_eq!(s.len(), 4 * 5 / 2);
        assert!(s.iter().all(|step| step.len() == n / 2));
    }

    #[test]
    fn steps_touch_disjoint_indices() {
        for schedule in [pbsn_schedule(32), bitonic_schedule(32)] {
            for step in &schedule {
                let mut seen = [false; 32];
                for c in step {
                    assert_ne!(c.lo, c.hi);
                    for idx in [c.lo, c.hi] {
                        assert!(!seen[idx], "index {idx} touched twice in one step");
                        seen[idx] = true;
                    }
                }
            }
        }
    }

    #[test]
    fn pbsn_passes_zero_one_principle() {
        for n in [2usize, 4, 8, 16] {
            let s = pbsn_schedule(n);
            assert_eq!(zero_one_violation(n, &s), None, "PBSN n={n}");
        }
    }

    #[test]
    fn bitonic_passes_zero_one_principle() {
        for n in [2usize, 4, 8, 16] {
            let s = bitonic_schedule(n);
            assert_eq!(zero_one_violation(n, &s), None, "bitonic n={n}");
        }
    }

    #[test]
    fn truncated_pbsn_fails_zero_one_principle() {
        // PBSN needs all log n stages: dropping the final stage (its last
        // log n steps) must leave some input unsorted.
        let mut s = pbsn_schedule(8);
        s.truncate(s.len() - 3);
        assert!(zero_one_violation(8, &s).is_some());
    }

    #[test]
    fn odd_even_merge_passes_zero_one_principle() {
        for n in [2usize, 4, 8, 16] {
            let s = odd_even_merge_schedule(n);
            assert_eq!(zero_one_violation(n, &s), None, "odd-even n={n}");
        }
    }

    #[test]
    fn odd_even_merge_sorts_random_data() {
        let mut data: Vec<f32> = (0..256)
            .map(|i| ((i * 2654435761usize) % 977) as f32)
            .collect();
        let mut expect = data.clone();
        expect.sort_by(f32::total_cmp);
        apply_schedule(&mut data, &odd_even_merge_schedule(256));
        assert_eq!(data, expect);
    }

    #[test]
    fn comparator_count_ordering_matches_theory() {
        // Odd-even merge < bitonic < PBSN in comparator count — the trade
        // the paper makes (PBSN's pattern maps to rasterization best).
        for n in [64usize, 256, 1024] {
            let oem = comparator_count(&odd_even_merge_schedule(n));
            let bit = comparator_count(&bitonic_schedule(n));
            let pbsn = comparator_count(&pbsn_schedule(n));
            assert!(oem < bit, "n={n}: odd-even {oem} < bitonic {bit}");
            assert!(bit < pbsn, "n={n}: bitonic {bit} < PBSN {pbsn}");
        }
    }

    #[test]
    fn apply_schedule_sorts_random_data() {
        let mut x = 123456789u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 1000) as f32
        };
        for n in [2usize, 8, 64, 256] {
            let mut data: Vec<f32> = (0..n).map(|_| next()).collect();
            let mut expect = data.clone();
            expect.sort_by(f32::total_cmp);
            apply_schedule(&mut data, &pbsn_schedule(n));
            assert_eq!(data, expect, "PBSN n={n}");
        }
    }

    #[test]
    fn bitonic_sorts_random_data() {
        let mut data: Vec<f32> = (0..128)
            .map(|i| ((i * 2654435761usize) % 977) as f32)
            .collect();
        let mut expect = data.clone();
        expect.sort_by(f32::total_cmp);
        apply_schedule(&mut data, &bitonic_schedule(128));
        assert_eq!(data, expect);
    }

    #[test]
    fn duplicates_and_negatives_survive() {
        let mut data = [3.0f32, -1.0, 3.0, 0.0, -1.0, 7.0, 3.0, -2.0];
        let mut expect = data;
        expect.sort_by(f32::total_cmp);
        apply_schedule(&mut data, &pbsn_schedule(8));
        assert_eq!(data, expect);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_pow2_rejected() {
        let _ = pbsn_schedule(12);
    }
}
