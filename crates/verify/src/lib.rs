//! # gsm-verify
//!
//! ε-guarantee auditor and adversarial differential fuzzer for the gsm
//! estimators.
//!
//! The paper's whole value proposition is *bounded* approximation — lossy
//! counting never overestimates and undercounts by at most εN with zero
//! false negatives above the support threshold; the GK/exponential-histogram
//! quantile summaries answer within ε rank error; summaries stay inside the
//! `O((1/ε)·log(εN))` space envelope. This crate mechanically certifies all
//! of that:
//!
//! - [`gen`] — deterministic, seeded adversarial stream generators
//!   (sorted/reversed/organ-pipe, heavy duplicates, Zipf skew,
//!   epoch-aligned bursts, totalOrder edge values, window ±1 off-by-one),
//!   shared by tests and benches.
//! - [`audit`] — bound auditors that compare finished answers against the
//!   [`gsm_sketch::exact`] oracles and return a structured [`AuditReport`]
//!   (per-check worst-case error, bound headroom, space usage), not a bare
//!   pass/fail.
//! - [`diff`] — the differential driver: one stream fans out across every
//!   [`gsm_core::Engine`] × every estimator, answers are fingerprinted and
//!   cross-checked, and the agreed answers are audited against the oracles.
//! - [`durable`] — the crash-recovery driver: every family is ingested
//!   durably (WAL + incremental checkpoints), killed at configured crash
//!   points, damaged by a seeded [`gsm_durable::FaultPlan`], and
//!   recovered; recovered answers must fingerprint byte-identically to an
//!   uncrashed run over the recovered prefix, and every injected
//!   corruption must be detected, never silently replayed.
//! - [`batch`] — the scalar-vs-batch ingest driver: the same stream is
//!   ingested element-at-a-time and in boundary-adversarial batch lengths
//!   across engines × shard counts, and answers plus checkpoint envelopes
//!   must match byte for byte (`StreamEngine::push_batch`'s identity
//!   contract).
//! - [`serve`] — the served-vs-direct driver: every query kind is asked
//!   through the `gsm-serve` frontend and byte-compared against the same
//!   query run directly on the engine and its published snapshot, plus
//!   the structural reply accounting (no request lost without a reply).
//! - [`shard`] — the shard-parallel driver: the same streams fan across
//!   shard counts, pinning k = 1 to the unsharded baseline byte-for-byte
//!   and auditing shard-merged answers against the per-query ε bounds
//!   (undercount within the surfaced `⌈εN⌉ + k − 1`, space within `k ×`
//!   one summary's envelope).
//!
//! Frequency-class estimators are audited on the canonical integer-id
//! projection of each stream ([`StreamSpec::integer_ids`]): the sketches
//! merge `-0.0 == 0.0` while lookups and oracles distinguish the two bit
//! patterns, so raw totalOrder edge streams are only legal input for the
//! quantile-class audits.

#![warn(missing_docs)]

pub mod audit;
pub mod batch;
pub mod diff;
pub mod durable;
pub mod gen;
pub mod serve;
pub mod shard;

pub use audit::{
    audit_frequency, audit_hhh, audit_quantile, audit_sharded_frequency, audit_sharded_hhh,
    audit_sharded_quantile, audit_sliding_frequency, audit_sliding_quantile,
    frequency_space_envelope, quantile_space_envelope, AuditCheck, AuditReport,
};
pub use batch::{canonical_batch_sizes, verify_family_batched, BatchRun, BatchedFamilyOutcome};
pub use diff::{verify_family, EngineRun, FamilyOutcome, VerifyConfig};
pub use durable::{
    verify_family_recovered, DurableFamilyOutcome, DurableVerifyConfig, RecoveredRun,
};
pub use gen::{Family, SplitMix, StreamSpec};
pub use serve::{verify_family_served, ServeFamilyOutcome, ServeRun};
pub use shard::{verify_family_sharded, ShardRun, ShardedFamilyOutcome};

/// Records every failure in `outcome` into the recorder's flight ring as
/// [`gsm_obs::EngineEvent::AuditViolation`] events and returns how many
/// were recorded.
///
/// Each failure line from [`FamilyOutcome::failures`] is split at its
/// first `": "` into the failing check's identity (`family/estimator`)
/// and the bound-versus-observed detail, so a postmortem dump names
/// exactly which guarantee broke. A passing outcome records nothing.
pub fn record_violations(rec: &gsm_obs::Recorder, outcome: &FamilyOutcome) -> usize {
    record_failure_lines(rec, &outcome.failures())
}

/// Records pre-rendered failure lines (the `failures()` format shared by
/// every driver outcome in this crate: `check: detail`) into the
/// recorder's flight ring as [`gsm_obs::EngineEvent::AuditViolation`]
/// events and returns how many were recorded.
pub fn record_failure_lines(rec: &gsm_obs::Recorder, failures: &[String]) -> usize {
    for line in failures {
        let (check, detail) = line
            .split_once(": ")
            .unwrap_or((line.as_str(), "unparsed failure"));
        rec.record_event(gsm_obs::EngineEvent::AuditViolation {
            check: check.to_string(),
            detail: detail.to_string(),
        });
    }
    failures.len()
}

#[cfg(test)]
mod flight_tests {
    use super::*;

    #[test]
    fn violations_land_in_the_flight_ring() {
        // Borrow the fabricated failing outcome shape from diff's tests:
        // a passing run records nothing, a broken fingerprint records one
        // engines-disagree violation.
        let cfg = VerifyConfig {
            engines: vec![gsm_core::Engine::Host],
            ..VerifyConfig::default()
        };
        let spec = StreamSpec {
            family: Family::ZipfSkew,
            seed: 7,
            n: 4096,
            window: 1024,
        };
        let mut outcome = verify_family(&spec, &cfg);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures());

        let rec = gsm_obs::Recorder::enabled();
        assert_eq!(record_violations(&rec, &outcome), 0);
        assert!(rec.flight_events().is_empty());

        outcome.cross_backend_agree = false;
        assert_eq!(record_violations(&rec, &outcome), 1);
        let events = rec.flight_events();
        assert_eq!(events.len(), 1);
        match &events[0].event {
            gsm_obs::EngineEvent::AuditViolation { check, detail } => {
                assert_eq!(check, "zipf_skew");
                assert!(detail.starts_with("engines disagree"), "{detail}");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
}
