//! **Figure 5** — frequency estimation throughput, GPU vs CPU, across ε
//! (window size `W = ⌈1/ε⌉`).
//!
//! Paper: "our GPU-based algorithm performs better than the optimized CPU
//! implementation for large sized windows … the data transfer time remains
//! constant and is significantly lower than the time taken to sort the
//! elements in the entire window." The paper streams 100 M elements; the
//! default here is 4 M (the per-element cost is window-dependent, not
//! length-dependent, so the series shape is identical) — pass `--full` for
//! the paper's scale or `--n <count>` for anything else.
//!
//! ```text
//! cargo run --release -p gsm-bench --bin fig5_frequency [-- --n 4194304 --full --csv]
//! ```

use gsm_bench::{human_n, Args, Table};
use gsm_core::{Engine, FrequencyEstimator};
use gsm_stream::UniformGen;

fn main() {
    let args = Args::parse();
    let csv = args.flag("csv");
    let n: usize = if args.flag("full") {
        100 << 20
    } else {
        args.get_num("n", 4 << 20)
    };

    // ε = 2^-10 .. 2^-16 ⇒ windows of 1K .. 64K elements.
    let eps_list: Vec<f64> = (10..=16).map(|k| (2.0f64).powi(-k)).collect();

    println!(
        "# Figure 5: frequency estimation on a {} uniform random stream",
        human_n(n)
    );
    println!("# (simulated ms; GPU column includes transfer time, reported separately too)\n");
    let mut table = Table::new([
        "eps",
        "window",
        "GPU total ms",
        "GPU transfer ms",
        "CPU total ms",
        "GPU/CPU",
    ]);

    for &eps in &eps_list {
        let mut row: Vec<String> = vec![format!("2^-{}", (1.0 / eps).log2() as u32)];
        let mut times = Vec::new();
        let mut transfer = String::new();
        for engine in [Engine::GpuSim, Engine::CpuSim] {
            let mut est = FrequencyEstimator::builder(eps).engine(engine).build();
            // The stream is quantized to the f16 grid (the paper's 16-bit
            // values), giving realistic duplicate density for histograms.
            est.push_all(UniformGen::unit(42).take(n));
            est.flush();
            let b = est.breakdown();
            times.push(b.total());
            if engine == Engine::GpuSim {
                row.push(est.window().to_string());
                transfer = format!("{:.3}", b.transfer.as_millis());
            }
        }
        row.push(format!("{:.3}", times[0].as_millis()));
        row.push(transfer);
        row.push(format!("{:.3}", times[1].as_millis()));
        row.push(format!("{:.2}", times[0].as_secs() / times[1].as_secs()));
        table.row(row);
    }
    table.print(csv);
    println!("\n# GPU/CPU < 1 means the GPU wins; the advantage grows with the window size (smaller eps).");
}
