//! Exact offline oracles.
//!
//! Tests and the experiment harnesses compare every approximate answer
//! against ground truth computed here: exact quantiles by full sort, exact
//! frequencies by counting. Values are keyed by their IEEE bit pattern
//! (the streams are NaN-free and quantized to the f16 grid, so bitwise
//! equality is value equality).

use std::collections::HashMap;

/// Ground truth for a fixed dataset.
pub struct ExactStats {
    sorted: Vec<f32>,
    counts: HashMap<u32, u64>,
}

impl ExactStats {
    /// Builds the oracle (sorts a copy of the data).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or contains NaN.
    pub fn new(data: &[f32]) -> Self {
        assert!(!data.is_empty(), "oracle needs at least one value");
        assert!(
            data.iter().all(|v| !v.is_nan()),
            "oracle data must be NaN-free"
        );
        let mut sorted = data.to_vec();
        sorted.sort_by(f32::total_cmp);
        let mut counts = HashMap::new();
        for v in data {
            *counts.entry(v.to_bits()).or_insert(0) += 1;
        }
        ExactStats { sorted, counts }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction rejects empty data); present for API
    /// completeness.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The exact φ-quantile: the element of (1-based) rank `⌈φ·N⌉`
    /// (clamped to `[1, N]`).
    pub fn quantile(&self, phi: f64) -> f32 {
        let n = self.sorted.len();
        let rank = ((phi * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[rank - 1]
    }

    /// The exact rank range of `value`: 1-based ranks `[lo, hi]` that the
    /// value's occurrences occupy, or the insertion rank `(r, r−1)`-style
    /// empty range if absent.
    pub fn rank_range(&self, value: f32) -> (u64, u64) {
        let lo = self.sorted.partition_point(|v| *v < value) as u64;
        let hi = self.sorted.partition_point(|v| *v <= value) as u64;
        (lo + 1, hi)
    }

    /// The exact frequency of `value`.
    pub fn frequency(&self, value: f32) -> u64 {
        self.counts.get(&value.to_bits()).copied().unwrap_or(0)
    }

    /// All values with frequency ≥ `threshold`, ascending by value.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(f32, u64)> {
        let mut out: Vec<(f32, u64)> = self
            .counts
            .iter()
            .filter(|(_, &c)| c >= threshold)
            .map(|(&bits, &c)| (f32::from_bits(bits), c))
            .collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    /// The observed rank error of claiming `value` is the φ-quantile, as a
    /// fraction of N: `|rank(value) − φ·N| / N` using the closest rank of
    /// an occurrence of `value` (or its insertion point if absent).
    pub fn quantile_rank_error(&self, phi: f64, value: f32) -> f64 {
        let n = self.sorted.len() as f64;
        let target = (phi * n).ceil().clamp(1.0, n);
        let (lo, hi) = self.rank_range(value);
        let (lo, hi) = if hi < lo { (lo, lo) } else { (lo, hi) };
        let dist = if target < lo as f64 {
            lo as f64 - target
        } else if target > hi as f64 {
            target - hi as f64
        } else {
            0.0
        };
        dist / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_a_ramp() {
        let data: Vec<f32> = (1..=100).map(|i| i as f32).collect();
        let s = ExactStats::new(&data);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(0.5), 50.0);
        assert_eq!(s.quantile(1.0), 100.0);
        assert_eq!(s.quantile(0.25), 25.0);
    }

    #[test]
    fn rank_ranges_with_duplicates() {
        let s = ExactStats::new(&[1.0, 2.0, 2.0, 2.0, 5.0]);
        assert_eq!(s.rank_range(2.0), (2, 4));
        assert_eq!(s.rank_range(1.0), (1, 1));
        assert_eq!(s.rank_range(5.0), (5, 5));
        // Absent value: empty range at its insertion point.
        let (lo, hi) = s.rank_range(3.0);
        assert!(hi < lo);
    }

    #[test]
    fn frequencies_and_heavy_hitters() {
        let data = [1.0f32, 2.0, 2.0, 3.0, 3.0, 3.0];
        let s = ExactStats::new(&data);
        assert_eq!(s.frequency(3.0), 3);
        assert_eq!(s.frequency(9.0), 0);
        assert_eq!(s.heavy_hitters(2), vec![(2.0, 2), (3.0, 3)]);
        assert_eq!(s.heavy_hitters(4), vec![]);
    }

    #[test]
    fn rank_error_zero_inside_duplicate_run() {
        let s = ExactStats::new(&[1.0, 2.0, 2.0, 2.0, 5.0]);
        // φ = 0.5 targets rank 3; 2.0 occupies ranks 2..=4.
        assert_eq!(s.quantile_rank_error(0.5, 2.0), 0.0);
        // 5.0 is at rank 5, distance 2 from target 3 → 0.4.
        assert!((s.quantile_rank_error(0.5, 5.0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn rank_error_for_absent_value() {
        let s = ExactStats::new(&[1.0, 2.0, 4.0, 5.0]);
        // 3.0 would insert at rank 3; φ=0.5 targets rank 2 → error 1/4.
        assert!((s.quantile_rank_error(0.5, 3.0) - 0.25).abs() < 1e-12);
    }
}
