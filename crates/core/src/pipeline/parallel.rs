//! The host-parallel sort backend: real threads, real overlap.
//!
//! Every other backend models the paper's parallelism in simulated time;
//! this one *executes* it. Each window splits into the four PBSN channel
//! lanes (exactly the packing the GPU uses, [`split_channels`]), the lanes
//! sort concurrently on a fixed [`WorkerPool`] with the branchless
//! `total_cmp`-order key sort, and the submitting thread recombines them
//! with the branchless key-domain merge ([`merge4_into`]) — the role the
//! paper gives the CPU. Batches queue in the background, so window *k*
//! sorts while window *k+1* fills the ingest buffer — the paper's §5.2.3
//! overlap, measured on the host's wall clock instead of the simulator's.
//!
//! Answers are byte-identical to [`super::HostBackend`]: the key sort
//! reproduces `slice::sort_by(f32::total_cmp)` bit-for-bit per lane, values
//! equal under `total_cmp` have equal bit patterns, and the `+∞` lane
//! padding sorts to the tail and is truncated away.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use gsm_model::SimTime;
use gsm_obs::Recorder;
use gsm_sort::layout::split_channels;
use gsm_sort::merge::{merge4_into, MergeScratch};
use gsm_sort::pool::{Ticket, WorkerPool};

use super::backend::{SortBackend, Submission};
use crate::engine::Engine;
use crate::report::WallClock;

/// One batch handed to the pool: a ticket per window plus the window's
/// original buffer, kept so the merge can write the sorted result back
/// into already-faulted memory instead of allocating a fresh window.
struct InflightBatch {
    windows: Vec<(Vec<f32>, Ticket)>,
}

/// Sorts windows on a fixed host worker pool, four PBSN channel lanes per
/// window, with background (double-buffered) batch execution.
///
/// Like [`super::HostBackend`] it charges zero *simulated* time — it is a
/// real execution engine, not a model — but it keeps a [`WallClock`]
/// ledger of background sorting vs. time spent blocked, so the overlap
/// saving is observable.
pub struct ParallelHostBackend {
    pool: Arc<WorkerPool>,
    /// Whether the pool is shared with other backends (see
    /// [`ParallelHostBackend::over_shared`]): a shared pool is never
    /// rebuilt by [`SortBackend::set_recorder`].
    shared: bool,
    inflight: VecDeque<InflightBatch>,
    wall: WallClock,
    scratch: MergeScratch,
    obs: Recorder,
}

impl ParallelHostBackend {
    /// Creates the backend over a pool of `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        Self::over(WorkerPool::new(threads))
    }

    /// Creates the backend with one worker per hardware thread (capped at
    /// four, the lane fan-out of one batch).
    pub fn with_default_threads() -> Self {
        Self::over(WorkerPool::with_default_threads())
    }

    /// Creates the backend over an explicit pool, adopting its recorder
    /// (disabled unless the pool was built with
    /// [`WorkerPool::with_recorder`]).
    pub fn over(pool: WorkerPool) -> Self {
        let obs = pool.recorder().clone();
        ParallelHostBackend {
            pool: Arc::new(pool),
            shared: false,
            inflight: VecDeque::new(),
            wall: WallClock::default(),
            scratch: MergeScratch::default(),
            obs,
        }
    }

    /// Creates the backend over a pool *shared* with other backends (the
    /// shard-parallel pipeline hands every shard the same handle, so the
    /// worker count stays the configured width instead of width × shards).
    /// Adopts the pool's recorder like [`ParallelHostBackend::over`]; since
    /// a shared pool cannot be rebuilt by one of its users,
    /// [`SortBackend::set_recorder`] on this backend only re-labels the
    /// backend's own metrics — pool-side metrics keep flowing to the
    /// recorder the pool was built with.
    pub fn over_shared(pool: Arc<WorkerPool>) -> Self {
        let obs = pool.recorder().clone();
        ParallelHostBackend {
            pool,
            shared: true,
            inflight: VecDeque::new(),
            wall: WallClock::default(),
            scratch: MergeScratch::default(),
            obs,
        }
    }

    /// Worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The pool this backend submits to (shared handles compare equal via
    /// [`Arc::ptr_eq`]).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Fans a batch's windows out to the pool, one ticket per window.
    fn launch(&self, windows: Vec<Vec<f32>>) -> InflightBatch {
        let windows = windows
            .into_iter()
            .map(|w| {
                let (lanes, _padded) = split_channels(&w);
                let ticket = self.pool.sort_lanes(lanes.into());
                (w, ticket)
            })
            .collect();
        InflightBatch { windows }
    }

    /// Waits for a batch's lanes and merges each window on this thread,
    /// charging the wall-clock ledger.
    ///
    /// # Panics
    ///
    /// Panics if a worker task panicked (the pool surfaces it as an error;
    /// a sort that cannot complete is unrecoverable for the pipeline).
    fn resolve(&mut self, batch: InflightBatch) -> Vec<Vec<f32>> {
        batch
            .windows
            .into_iter()
            .map(|(mut buf, ticket)| {
                let waiting = Instant::now();
                let done = ticket.wait().expect("lane sort completes");
                self.wall.blocked += waiting.elapsed();
                self.wall.sorting += done.busy;
                let len = buf.len();
                // Limiting the merge to the window length drops the +∞ lane
                // padding, which sorts past every real element.
                merge4_into(
                    [
                        &done.lanes[0],
                        &done.lanes[1],
                        &done.lanes[2],
                        &done.lanes[3],
                    ],
                    &mut self.scratch,
                    &mut buf,
                    len,
                );
                // One merged element = one write into the window buffer.
                self.obs.count("merge_writes", len as u64);
                buf
            })
            .collect()
    }
}

impl Default for ParallelHostBackend {
    fn default() -> Self {
        Self::with_default_threads()
    }
}

impl SortBackend for ParallelHostBackend {
    fn engine(&self) -> Engine {
        Engine::ParallelHost
    }

    fn sort_batch(&mut self, windows: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
        // Tickets are independent channels, so sorting this batch to
        // completion never steals results from older queued batches.
        let batch = self.launch(windows);
        self.resolve(batch)
    }

    fn submit_batch(&mut self, windows: Vec<Vec<f32>>) -> Submission {
        let batch = self.launch(windows);
        self.inflight.push_back(batch);
        Submission::Queued
    }

    fn collect_batch(&mut self) -> Option<Vec<Vec<f32>>> {
        let batch = self.inflight.pop_front()?;
        Some(self.resolve(batch))
    }

    fn inflight_batches(&self) -> usize {
        self.inflight.len()
    }

    fn wall_clock(&self) -> WallClock {
        self.wall
    }

    fn sort_time(&self) -> SimTime {
        SimTime::ZERO
    }

    /// Rebuilds the worker pool with `rec` so the workers publish pool
    /// metrics; safe only between batches, which is when the pipeline calls
    /// it (builder time, before any window is submitted). A *shared* pool
    /// ([`ParallelHostBackend::over_shared`]) is left untouched — other
    /// backends submit to it — so only this backend's own metrics move to
    /// `rec`.
    ///
    /// # Panics
    ///
    /// Panics if batches are in flight — swapping the pool would strand
    /// their queued jobs.
    fn set_recorder(&mut self, rec: Recorder) {
        assert!(
            self.inflight.is_empty(),
            "cannot swap the recorder with batches in flight"
        );
        if !self.shared {
            self.pool = Arc::new(WorkerPool::with_recorder(self.pool.threads(), rec.clone()));
        }
        self.obs = rec;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(n: usize, seed: u64) -> Vec<f32> {
        // Deterministic pseudo-random values; Weyl sequence on a prime.
        (0..n)
            .map(|i| ((seed + i as u64) * 2654435761 % 100_003) as f32)
            .collect()
    }

    fn host_sorted(w: &[f32]) -> Vec<f32> {
        let mut s = w.to_vec();
        s.sort_by(f32::total_cmp);
        s
    }

    #[test]
    fn sorts_byte_identically_to_host() {
        let mut b = ParallelHostBackend::new(2);
        for n in [1usize, 2, 3, 5, 64, 100, 1000, 4097] {
            let w = window(n, n as u64);
            let out = b.sort_batch(vec![w.clone()]);
            let got: Vec<u32> = out[0].iter().map(|v| v.to_bits()).collect();
            let expect: Vec<u32> = host_sorted(&w).iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn background_batches_collect_oldest_first() {
        let mut b = ParallelHostBackend::new(2);
        let w0 = window(200, 1);
        let w1 = window(150, 2);
        assert!(matches!(
            b.submit_batch(vec![w0.clone()]),
            Submission::Queued
        ));
        assert!(matches!(
            b.submit_batch(vec![w1.clone()]),
            Submission::Queued
        ));
        assert_eq!(b.inflight_batches(), 2);
        assert_eq!(b.collect_batch().unwrap(), vec![host_sorted(&w0)]);
        assert_eq!(b.collect_batch().unwrap(), vec![host_sorted(&w1)]);
        assert!(b.collect_batch().is_none());
    }

    #[test]
    fn sync_sort_does_not_steal_queued_results() {
        let mut b = ParallelHostBackend::new(1);
        let queued = window(300, 3);
        let direct = window(250, 4);
        let _ = b.submit_batch(vec![queued.clone()]);
        assert_eq!(
            b.sort_batch(vec![direct.clone()]),
            vec![host_sorted(&direct)]
        );
        assert_eq!(b.inflight_batches(), 1, "queued batch untouched");
        assert_eq!(b.collect_batch().unwrap(), vec![host_sorted(&queued)]);
    }

    #[test]
    fn shared_pool_survives_set_recorder_and_serves_all_backends() {
        let pool = WorkerPool::new(2).into_shared();
        let mut a = ParallelHostBackend::over_shared(Arc::clone(&pool));
        let mut b = ParallelHostBackend::over_shared(Arc::clone(&pool));
        a.set_recorder(Recorder::enabled());
        assert!(
            Arc::ptr_eq(a.pool(), &pool) && Arc::ptr_eq(b.pool(), &pool),
            "shared pool must not be rebuilt"
        );
        assert_eq!(pool.threads(), 2, "worker count bounded by pool width");
        let w = window(500, 9);
        assert_eq!(a.sort_batch(vec![w.clone()]), vec![host_sorted(&w)]);
        assert_eq!(b.sort_batch(vec![w.clone()]), vec![host_sorted(&w)]);
        assert_eq!(Arc::strong_count(&pool), 3);
    }

    #[test]
    fn wall_clock_accumulates() {
        let mut b = ParallelHostBackend::new(2);
        let _ = b.sort_batch(vec![window(20_000, 5), window(20_000, 6)]);
        let wall = b.wall_clock();
        assert!(wall.sorting > core::time::Duration::ZERO);
        assert!(
            b.sort_time().is_zero(),
            "no simulated time — this engine is real"
        );
    }
}
