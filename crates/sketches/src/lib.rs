#![warn(missing_docs)]

//! ε-approximate stream summaries — the statistical layer of the paper.
//!
//! The paper's estimators are *window-based* (§3.2): the stream is consumed
//! in windows, each window is **sorted** (on the GPU), and the sorted run is
//! folded into a compact summary through **merge** and **compress**
//! operations. This crate owns everything above the sort:
//!
//! * [`summary`] — the tuple types ((value, rmin, rmax) for quantiles,
//!   (value, count, Δ) for frequencies),
//! * [`histogram`] — sorted-run → histogram and rank-sampled summaries,
//! * [`gk`] — the classic per-element Greenwald–Khanna quantile summary
//!   (GK01), the single-element-insertion baseline of §3.2,
//! * [`gk_window`] — the GK04 sensor-network summary the paper builds on:
//!   per-window ε′-summaries with `merge` and `prune`,
//! * [`exp_histogram`] — the exponential histogram of summaries that lifts
//!   GK04 from a fixed set to an unbounded stream (§5.2),
//! * [`lossy`] — Manku–Motwani lossy counting, window-based (§5.1),
//! * [`misra_gries`] — the Misra–Gries / Frequent(k) counter baseline
//!   (re-discovered by Demaine et al. and Karp et al., §2.1),
//! * [`sliding`] — fixed-width sliding-window quantiles and frequencies
//!   built from per-block summaries (§5.3),
//! * [`exact`] — exact offline oracles used by tests and the experiment
//!   harnesses to measure observed error.
//!
//! Nothing on the hot estimator paths sorts: every consumer of a sorted
//! window takes the run as input, so the choice of sorting engine (GPU
//! rasterization vs CPU quicksort) stays in `gsm-core`, exactly like the
//! paper's co-processor split. (The one exception is
//! [`time_sliding::TimeSlidingQuantile`], which cuts blocks by timestamp
//! internally and sorts them on the host; the engine-offloaded
//! variable-window path lives in the fig8 harness.) Summary operations count their comparisons and element moves so
//! the harnesses can price the merge/compress phases (Figure 6).

pub mod correlated;
pub mod exact;
pub mod exp_histogram;
pub mod gk;
pub mod gk_window;
pub mod hhh;
pub mod histogram;
pub mod lossy;
pub mod misra_gries;
pub mod sink;
pub mod sliding;
pub mod summary;
pub mod time_sliding;

pub use correlated::CorrelatedSum;
pub use exp_histogram::ExpHistogram;
pub use gk::GkSummary;
pub use gk_window::WindowSummary;
pub use hhh::{BitPrefixHierarchy, HhhEntry, HhhSummary};
pub use lossy::LossyCounting;
pub use misra_gries::MisraGries;
pub use sink::{MergeableSummary, SinkOps, SummarySink};
pub use sliding::{SlidingFrequency, SlidingQuantile};
pub use summary::{FreqEntry, OpCounter, QuantileEntry};
pub use time_sliding::{TimeSlidingFrequency, TimeSlidingQuantile};
