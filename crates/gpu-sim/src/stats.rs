//! Execution and timing ledger for a simulated device.

use core::fmt;

use gsm_model::{Bytes, SimTime};

/// Counters and simulated-time ledger accumulated by a [`Device`].
///
/// [`Device`]: crate::Device
#[derive(Clone, Debug, Default)]
pub struct GpuStats {
    /// Render passes executed.
    pub passes: u64,
    /// Quads rasterized.
    pub quads: u64,
    /// Fragments (texels touched) generated.
    pub fragments: u64,
    /// Fragments processed by a blending equation that reads the
    /// framebuffer (`Min`/`Max`/`Add`).
    pub blend_ops: u64,
    /// Fragments processed by a user fragment program (shader baseline).
    pub program_fragments: u64,
    /// Fragments processed by depth-only occlusion passes.
    pub depth_fragments: u64,
    /// Occlusion queries issued.
    pub occlusion_queries: u64,
    /// Raw texture-fetch volume (before the texture cache).
    pub tex_fetch_bytes: Bytes,
    /// Raw framebuffer-read volume (before the ROP cache).
    pub fb_read_bytes: Bytes,
    /// Framebuffer-write volume.
    pub fb_write_bytes: Bytes,
    /// Modeled DRAM traffic after caches.
    pub dram_bytes: Bytes,
    /// Host→device texture uploads.
    pub uploads: u64,
    /// Device→host readbacks.
    pub readbacks: u64,
    /// Total bytes moved over the bus.
    pub bus_bytes: Bytes,
    /// Simulated time in the rendering pipeline (max of compute/memory per
    /// pass, summed over passes).
    pub render_time: SimTime,
    /// Simulated compute-pipeline time (informational; render_time already
    /// accounts for it).
    pub compute_time: SimTime,
    /// Simulated DRAM time (informational).
    pub memory_time: SimTime,
    /// Driver/state-change/vertex overhead time.
    pub overhead_time: SimTime,
    /// Bus transfer time.
    pub transfer_time: SimTime,
}

impl GpuStats {
    /// Total simulated wall time attributed to the device so far.
    #[inline]
    pub fn total_time(&self) -> SimTime {
        self.render_time + self.overhead_time + self.transfer_time
    }

    /// Simulated GPU time excluding bus transfers — the paper's Figure 4
    /// splits total time into exactly these two components.
    #[inline]
    pub fn gpu_only_time(&self) -> SimTime {
        self.render_time + self.overhead_time
    }

    /// The difference `self − earlier`, for scoping costs to a region.
    ///
    /// All counters are monotonically non-decreasing, so a snapshot taken
    /// before an operation can be subtracted from one taken after.
    pub fn since(&self, earlier: &GpuStats) -> GpuStats {
        GpuStats {
            passes: self.passes - earlier.passes,
            quads: self.quads - earlier.quads,
            fragments: self.fragments - earlier.fragments,
            blend_ops: self.blend_ops - earlier.blend_ops,
            program_fragments: self.program_fragments - earlier.program_fragments,
            depth_fragments: self.depth_fragments - earlier.depth_fragments,
            occlusion_queries: self.occlusion_queries - earlier.occlusion_queries,
            tex_fetch_bytes: Bytes::new(self.tex_fetch_bytes.get() - earlier.tex_fetch_bytes.get()),
            fb_read_bytes: Bytes::new(self.fb_read_bytes.get() - earlier.fb_read_bytes.get()),
            fb_write_bytes: Bytes::new(self.fb_write_bytes.get() - earlier.fb_write_bytes.get()),
            dram_bytes: Bytes::new(self.dram_bytes.get() - earlier.dram_bytes.get()),
            uploads: self.uploads - earlier.uploads,
            readbacks: self.readbacks - earlier.readbacks,
            bus_bytes: Bytes::new(self.bus_bytes.get() - earlier.bus_bytes.get()),
            render_time: self.render_time - earlier.render_time,
            compute_time: self.compute_time - earlier.compute_time,
            memory_time: self.memory_time - earlier.memory_time,
            overhead_time: self.overhead_time - earlier.overhead_time,
            transfer_time: self.transfer_time - earlier.transfer_time,
        }
    }

    /// Publishes these counters into an observability recorder under the
    /// `gpu_*` namespace. Callers scoping a region pass a [`GpuStats::since`]
    /// delta so the recorder's totals stay monotone.
    pub fn record_into(&self, rec: &gsm_obs::Recorder) {
        if !rec.is_enabled() {
            return;
        }
        rec.count("gpu_passes", self.passes);
        rec.count("gpu_quads", self.quads);
        rec.count("gpu_fragments", self.fragments);
        rec.count("gpu_blend_ops", self.blend_ops);
        rec.count("gpu_uploads", self.uploads);
        rec.count("gpu_readbacks", self.readbacks);
        rec.count("gpu_bus_bytes", self.bus_bytes.get());
        rec.count("gpu_dram_bytes", self.dram_bytes.get());
    }
}

impl fmt::Display for GpuStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "passes={} quads={} fragments={} blends={} shader-frags={}",
            self.passes, self.quads, self.fragments, self.blend_ops, self.program_fragments
        )?;
        writeln!(
            f,
            "dram={} (tex={} fb-r={} fb-w={}) bus={} ({} up, {} down)",
            self.dram_bytes,
            self.tex_fetch_bytes,
            self.fb_read_bytes,
            self.fb_write_bytes,
            self.bus_bytes,
            self.uploads,
            self.readbacks
        )?;
        write!(
            f,
            "time: render={} overhead={} transfer={} total={}",
            self.render_time,
            self.overhead_time,
            self.transfer_time,
            self.total_time()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_compose() {
        let s = GpuStats {
            render_time: SimTime::from_millis(5.0),
            overhead_time: SimTime::from_millis(1.0),
            transfer_time: SimTime::from_millis(2.0),
            ..GpuStats::default()
        };
        assert!((s.total_time().as_millis() - 8.0).abs() < 1e-12);
        assert!((s.gpu_only_time().as_millis() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn since_subtracts_all_fields() {
        let a = GpuStats {
            passes: 10,
            fragments: 100,
            bus_bytes: Bytes::new(1000),
            render_time: SimTime::from_millis(3.0),
            ..GpuStats::default()
        };
        let b = GpuStats {
            passes: 25,
            fragments: 400,
            bus_bytes: Bytes::new(1600),
            render_time: SimTime::from_millis(7.0),
            ..GpuStats::default()
        };
        let d = b.since(&a);
        assert_eq!(d.passes, 15);
        assert_eq!(d.fragments, 300);
        assert_eq!(d.bus_bytes.get(), 600);
        assert!((d.render_time.as_millis() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_reasonable() {
        let s = GpuStats::default();
        let out = format!("{s}");
        assert!(out.contains("passes=0"));
        assert!(out.contains("total="));
    }
}
