//! The sink side of the window→sort→summary pipeline.
//!
//! Every summary in the paper's system consumes the same input — a sorted
//! window — and differs only in what it folds that window into and which
//! maintenance phase each operation belongs to. [`SummarySink`] captures
//! that contract: the pipeline layer (gsm-core) sorts windows on whatever
//! engine is configured and hands each sorted run to a sink, without
//! knowing which summary is behind it. One sort therefore serves every
//! estimator, including fan-out sinks that broadcast a run to many
//! summaries (the DSMS engine).
//!
//! [`SinkOps`] is the phase-split operation ledger a sink reports back so
//! the pipeline can price summary maintenance into the paper's Figure 6
//! breakdown (sort / merge / compress, with the histogram scan attributed
//! to the sort phase and gather work to the merge phase).

use crate::lossy::LossyOps;
use crate::summary::OpCounter;
use crate::{ExpHistogram, HhhSummary, LossyCounting, SlidingFrequency, SlidingQuantile};

/// Cumulative operation counters a sink reports, split by the maintenance
/// phase each counter is priced into.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct SinkOps {
    /// Histogram construction (scanning the sorted window) — priced into
    /// the *sort* phase, matching the paper's three-way split.
    pub histogram: OpCounter,
    /// Merging window summaries into the running summary.
    pub merge: OpCounter,
    /// CPU-side payload gathering (the correlated-sum extension) — priced
    /// into the *merge* phase, separately from [`SinkOps::merge`].
    pub gather: OpCounter,
    /// Compress / prune / deletion passes.
    pub compress: OpCounter,
}

impl SinkOps {
    /// Accumulates another sink's counters (fan-out aggregation).
    pub fn absorb(&mut self, other: SinkOps) {
        self.histogram.absorb(other.histogram);
        self.merge.absorb(other.merge);
        self.gather.absorb(other.gather);
        self.compress.absorb(other.compress);
    }
}

impl From<&LossyOps> for SinkOps {
    fn from(ops: &LossyOps) -> SinkOps {
        SinkOps {
            histogram: ops.histogram,
            merge: ops.merge,
            gather: OpCounter::default(),
            compress: ops.compress,
        }
    }
}

/// A consumer of sorted windows.
///
/// Implementors fold each engine-sorted run into their summary state and
/// report cumulative maintenance counters via [`SummarySink::ops`]. The
/// counters are snapshots — the pipeline reads them at reporting time, so
/// they must cover everything since construction, not since the last call.
pub trait SummarySink {
    /// Folds one sorted window (ascending order) into the summary.
    fn push_sorted_window(&mut self, sorted: &[f32]);

    /// Cumulative maintenance counters, split by phase.
    fn ops(&self) -> SinkOps;
}

/// A sink whose running summary can absorb another summary of the same
/// configuration, built over a *disjoint* substream.
///
/// This is what makes shard-parallel ingestion possible: K pipelines each
/// fold their partition of the stream into their own sink, and queries
/// merge the shard summaries on demand. Every implementor documents its
/// merged-error accounting on the inherent `merge_from`:
///
/// * GK-bracket summaries ([`ExpHistogram`]) — merging adds no error
///   (`ε_merge = max εᵢ`), surfaced by `tracked_eps()`.
/// * Counting summaries ([`LossyCounting`], [`HhhSummary`]) — undercount
///   bounds are additive, surfaced by `undercount_bound()`.
/// * Sliding summaries — merge is block concatenation (byte-identical to
///   sequential pushes), so the single-stream bounds carry over.
pub trait MergeableSummary: SummarySink {
    /// Folds `other`'s summary state into this one, charging merge work to
    /// `ops` (so query-time merges are attributable separately from
    /// ingest-time maintenance).
    ///
    /// # Panics
    ///
    /// Panics if the two summaries were built with incompatible
    /// configurations (ε, window/width, hierarchy, …).
    fn merge_from(&mut self, other: &Self, ops: &mut OpCounter);
}

impl MergeableSummary for ExpHistogram {
    fn merge_from(&mut self, other: &Self, ops: &mut OpCounter) {
        ExpHistogram::merge_from(self, other, ops);
    }
}

impl MergeableSummary for LossyCounting {
    fn merge_from(&mut self, other: &Self, ops: &mut OpCounter) {
        LossyCounting::merge_from(self, other, ops);
    }
}

impl MergeableSummary for HhhSummary {
    fn merge_from(&mut self, other: &Self, ops: &mut OpCounter) {
        HhhSummary::merge_from(self, other, ops);
    }
}

impl MergeableSummary for SlidingQuantile {
    fn merge_from(&mut self, other: &Self, ops: &mut OpCounter) {
        SlidingQuantile::merge_from(self, other, ops);
    }
}

impl MergeableSummary for SlidingFrequency {
    fn merge_from(&mut self, other: &Self, ops: &mut OpCounter) {
        SlidingFrequency::merge_from(self, other, ops);
    }
}

impl SummarySink for ExpHistogram {
    fn push_sorted_window(&mut self, sorted: &[f32]) {
        ExpHistogram::push_sorted_window(self, sorted);
    }

    fn ops(&self) -> SinkOps {
        SinkOps {
            merge: self.merge_ops(),
            compress: self.prune_ops(),
            ..SinkOps::default()
        }
    }
}

impl SummarySink for LossyCounting {
    fn push_sorted_window(&mut self, sorted: &[f32]) {
        LossyCounting::push_sorted_window(self, sorted);
    }

    fn ops(&self) -> SinkOps {
        SinkOps::from(LossyCounting::ops(self))
    }
}

impl SummarySink for HhhSummary {
    fn push_sorted_window(&mut self, sorted: &[f32]) {
        HhhSummary::push_sorted_window(self, sorted);
    }

    fn ops(&self) -> SinkOps {
        let mut total = SinkOps::default();
        for level in self.level_ops() {
            total.absorb(SinkOps::from(level));
        }
        total
    }
}

impl SummarySink for SlidingQuantile {
    /// Sliding summaries consume fixed-size *blocks*; the pipeline's window
    /// size is set to the block size, so each sorted window is one block.
    fn push_sorted_window(&mut self, sorted: &[f32]) {
        self.push_sorted_block(sorted);
    }

    fn ops(&self) -> SinkOps {
        SinkOps {
            merge: SlidingQuantile::ops(self),
            ..SinkOps::default()
        }
    }
}

impl SummarySink for SlidingFrequency {
    fn push_sorted_window(&mut self, sorted: &[f32]) {
        self.push_sorted_block(sorted);
    }

    /// Sliding frequency keeps no maintenance counters — its per-block
    /// histogram scan is already part of the block turnover the sort phase
    /// pays for.
    fn ops(&self) -> SinkOps {
        SinkOps::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_window(n: usize) -> Vec<f32> {
        let mut w: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
        w.sort_by(f32::total_cmp);
        w
    }

    #[test]
    fn trait_dispatch_matches_inherent_push() {
        let w = sorted_window(200);
        let mut via_trait = LossyCounting::with_window(0.01, 200);
        let mut via_inherent = LossyCounting::with_window(0.01, 200);
        SummarySink::push_sorted_window(&mut via_trait, &w);
        LossyCounting::push_sorted_window(&mut via_inherent, &w);
        assert_eq!(via_trait.estimate(0.0), via_inherent.estimate(0.0));
        assert_eq!(via_trait.count(), via_inherent.count());
    }

    #[test]
    fn exp_histogram_ops_map_to_merge_and_compress() {
        let w = sorted_window(1024);
        let mut eh = ExpHistogram::new(0.01, 1024, 100_000);
        for _ in 0..8 {
            SummarySink::push_sorted_window(&mut eh, &w);
        }
        let ops = SummarySink::ops(&eh);
        assert_eq!(ops.histogram, OpCounter::default());
        assert_eq!(ops.gather, OpCounter::default());
        assert_eq!(ops.merge, eh.merge_ops());
        assert_eq!(ops.compress, eh.prune_ops());
        assert!(ops.merge.total() > 0);
    }

    #[test]
    fn hhh_ops_fold_all_levels() {
        let w = sorted_window(1000);
        let mut h = HhhSummary::new(0.001, crate::BitPrefixHierarchy::new(vec![4]));
        SummarySink::push_sorted_window(&mut h, &w);
        let ops = SummarySink::ops(&h);
        let mut hist = OpCounter::default();
        for level in h.level_ops() {
            hist.absorb(level.histogram);
        }
        assert_eq!(ops.histogram, hist);
        assert!(ops.histogram.total() > 0, "every level scans its window");
    }

    #[test]
    fn sliding_sinks_accept_blocks_as_windows() {
        let mut sq = SlidingQuantile::new(0.05, 2000);
        let mut sf = SlidingFrequency::new(0.05, 2000);
        let block_q = sorted_window(sq.block_size());
        let block_f = sorted_window(sf.block_size());
        SummarySink::push_sorted_window(&mut sq, &block_q);
        SummarySink::push_sorted_window(&mut sf, &block_f);
        assert_eq!(sq.covered(), block_q.len() as u64);
        assert_eq!(sf.covered(), block_f.len() as u64);
        assert_eq!(SummarySink::ops(&sf), SinkOps::default());
    }

    #[test]
    fn sink_ops_absorb_accumulates() {
        let a = SinkOps {
            histogram: OpCounter {
                comparisons: 1,
                moves: 2,
            },
            merge: OpCounter {
                comparisons: 3,
                moves: 4,
            },
            gather: OpCounter {
                comparisons: 5,
                moves: 6,
            },
            compress: OpCounter {
                comparisons: 7,
                moves: 8,
            },
        };
        let mut total = a;
        total.absorb(a);
        assert_eq!(total.histogram.total(), 6);
        assert_eq!(total.merge.total(), 14);
        assert_eq!(total.gather.total(), 22);
        assert_eq!(total.compress.total(), 30);
    }
}
