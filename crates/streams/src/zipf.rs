//! Zipf-distributed value generation for frequency / heavy-hitter workloads.
//!
//! Frequency estimation (paper §5.1) is only interesting when some elements
//! repeat often; real traces (network flows, query logs) are classically
//! Zipfian. The generator draws ranks from a Zipf(α) law over a finite
//! domain using an inverted CDF with binary search — exact, O(log m) per
//! draw, and deterministic per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::f16::F16;

/// Zipf(α) ranks over `{0, …, domain−1}`, mapped to distinct `f32` values.
///
/// Rank `k` (0-based) has probability proportional to `1 / (k+1)^α`. The
/// emitted value for rank `k` is `k` quantized to the binary16 grid, so the
/// most frequent element is `0.0`, the next `1.0`, and so on — convenient
/// for asserting on heavy-hitter identities in tests.
pub struct ZipfGen {
    rng: StdRng,
    cdf: Vec<f64>,
}

impl ZipfGen {
    /// Creates a generator over `domain` distinct values with exponent
    /// `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is zero or larger than 2²⁰ (the CDF is
    /// precomputed), or if `alpha` is negative.
    pub fn new(seed: u64, domain: usize, alpha: f64) -> Self {
        assert!(
            domain > 0 && domain <= 1 << 20,
            "domain must be in 1..=2^20"
        );
        assert!(alpha >= 0.0, "alpha must be non-negative");
        let mut cdf = Vec::with_capacity(domain);
        let mut acc = 0.0f64;
        for k in 0..domain {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfGen {
            rng: StdRng::seed_from_u64(seed),
            cdf,
        }
    }

    /// Draws a rank (0-based; rank 0 is most frequent).
    pub fn next_rank(&mut self) -> usize {
        let u: f64 = self.rng.random_range(0.0..1.0);
        // First index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u)
    }

    /// The probability mass of rank `k`.
    pub fn mass(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Number of distinct values in the domain.
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }
}

impl Iterator for ZipfGen {
    type Item = f32;
    fn next(&mut self) -> Option<f32> {
        let k = self.next_rank();
        Some(F16::from_f32(k as f32).to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_within_domain() {
        let mut g = ZipfGen::new(5, 100, 1.1);
        for _ in 0..10_000 {
            assert!(g.next_rank() < 100);
        }
    }

    #[test]
    fn empirical_frequencies_track_the_law() {
        let mut g = ZipfGen::new(9, 50, 1.0);
        let n = 200_000;
        let mut counts = [0u32; 50];
        for _ in 0..n {
            counts[g.next_rank()] += 1;
        }
        // Rank 0 must be the most frequent and close to its mass.
        let p0 = g.mass(0);
        let observed0 = counts[0] as f64 / n as f64;
        assert!(
            (observed0 - p0).abs() < 0.01,
            "observed {observed0}, expected {p0}"
        );
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[49]);
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let g = ZipfGen::new(2, 10, 0.0);
        for k in 0..10 {
            assert!((g.mass(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn masses_sum_to_one() {
        let g = ZipfGen::new(0, 1000, 1.5);
        let total: f64 = (0..1000).map(|k| g.mass(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn values_are_f16_exact_ranks() {
        let vals: Vec<f32> = ZipfGen::new(1, 64, 1.2).take(1000).collect::<Vec<_>>();
        assert!(vals
            .iter()
            .all(|&v| v.fract() == 0.0 && (0.0..64.0).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn oversized_domain_rejected() {
        let _ = ZipfGen::new(0, (1 << 20) + 1, 1.0);
    }
}
