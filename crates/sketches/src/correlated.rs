//! Correlated sum aggregates (paper §1.2: "Our approach … is also
//! applicable to … correlated sum aggregate queries").
//!
//! A correlated aggregate couples two attributes: over a stream of pairs
//! `(x, y)` it answers `SUM{ y : x ≤ Q_φ(x) }` — e.g. "total bytes of the
//! shortest 95 % of flows". The machinery is the quantile machinery with
//! one extra field: every sampled entry carries, besides its rank bounds,
//! *bounds on the cumulative `y`-mass* at its position in `x`-order.
//!
//! Windows arrive sorted by `x` (the GPU sort in the full pipeline, with
//! `y` riding along); sampling records exact prefix sums, merging combines
//! mass bounds with the same predecessor/successor rules as ranks, and an
//! internal exponential histogram extends the summary to unbounded streams.
//!
//! `y` values must be non-negative — the mass-bound rules rely on
//! monotonicity of prefix sums.

use crate::summary::OpCounter;

/// A sampled entry: an `x` value with rank bounds and cumulative-`y` bounds.
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct CorrEntry {
    /// The x (ordering) value.
    pub x: f32,
    /// Smallest possible rank of this occurrence in x-order.
    pub rmin: u64,
    /// Largest possible rank.
    pub rmax: u64,
    /// Lower bound on Σy over elements up to this occurrence.
    pub sum_lo: f64,
    /// Upper bound on Σy over elements up to this occurrence.
    pub sum_hi: f64,
}

/// An ε-approximate correlated-sum summary of a fixed multiset of pairs.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct CorrSummary {
    entries: Vec<CorrEntry>,
    count: u64,
    total: f64,
}

impl CorrSummary {
    /// Builds a summary of a window of pairs *sorted by x*, sampling every
    /// `⌈eps·S⌉`-th position with exact ranks and prefix sums.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty, `eps ∉ (0, 1]`, any `y` is negative,
    /// or (debug) the window is not x-sorted.
    pub fn from_sorted(pairs: &[(f32, f32)], eps: f64) -> Self {
        assert!(!pairs.is_empty(), "cannot summarize an empty window");
        assert!(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1]");
        assert!(
            pairs.iter().all(|&(_, y)| y >= 0.0),
            "y values must be non-negative"
        );
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 <= w[1].0),
            "window must be x-sorted"
        );

        let s = pairs.len();
        let stride = ((eps * s as f64).ceil() as usize).max(1);
        let mut prefix = 0.0f64;
        let mut prefix_at = Vec::with_capacity(s);
        for &(_, y) in pairs {
            prefix += y as f64;
            prefix_at.push(prefix);
        }
        let total = prefix;

        let mut entries = Vec::with_capacity(s / stride + 2);
        let mut push = |rank: usize| {
            let e = CorrEntry {
                x: pairs[rank - 1].0,
                rmin: rank as u64,
                rmax: rank as u64,
                sum_lo: prefix_at[rank - 1],
                sum_hi: prefix_at[rank - 1],
            };
            entries.push(e);
        };
        push(1);
        let mut rank = stride;
        while rank < s {
            if rank > 1 {
                push(rank);
            }
            rank += stride;
        }
        if s > 1 {
            push(s);
        }
        CorrSummary {
            entries,
            count: s as u64,
            total,
        }
    }

    /// Summarized pair count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact total Σy (always tracked exactly).
    pub fn total_sum(&self) -> f64 {
        self.total
    }

    /// Stored entries.
    pub fn entries(&self) -> &[CorrEntry] {
        &self.entries
    }

    /// Merges two summaries over disjoint multisets: ranks combine with the
    /// GK04 predecessor/successor rules, cumulative masses with their
    /// monotone analogue.
    pub fn merge(a: &CorrSummary, b: &CorrSummary, ops: &mut OpCounter) -> CorrSummary {
        let mut entries = Vec::with_capacity(a.entries.len() + b.entries.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.entries.len() || j < b.entries.len() {
            let take_a = match (a.entries.get(i), b.entries.get(j)) {
                (Some(ea), Some(eb)) => {
                    ops.comparisons += 1;
                    ea.x <= eb.x
                }
                (Some(_), None) => true,
                _ => false,
            };
            let merged = if take_a {
                let e = a.entries[i];
                i += 1;
                combine(e, b, j)
            } else {
                let e = b.entries[j];
                j += 1;
                combine(e, a, i)
            };
            ops.moves += 1;
            entries.push(merged);
        }
        CorrSummary {
            entries,
            count: a.count + b.count,
            total: a.total + b.total,
        }
    }

    /// Prunes to at most `b + 1` entries by rank queries (keeps the exact
    /// total).
    pub fn prune(&self, b: usize, ops: &mut OpCounter) -> CorrSummary {
        assert!(b > 0, "prune target must be positive");
        let mut entries: Vec<CorrEntry> = Vec::with_capacity(b + 1);
        for k in 0..=b {
            let r = ((k as f64 / b as f64) * self.count as f64).ceil().max(1.0) as u64;
            let e = self.lookup_rank(r);
            ops.comparisons += (self.entries.len().max(1)).ilog2() as u64 + 1;
            let repeat = entries.last().is_some_and(|l: &CorrEntry| l == &e);
            if !repeat {
                entries.push(e);
                ops.moves += 1;
            }
        }
        CorrSummary {
            entries,
            count: self.count,
            total: self.total,
        }
    }

    fn lookup_rank(&self, r: u64) -> CorrEntry {
        let pos = self.entries.partition_point(|e| e.rmin < r);
        let mut best: Option<(u64, CorrEntry)> = None;
        for c in [pos.checked_sub(1), Some(pos)].into_iter().flatten() {
            if let Some(&e) = self.entries.get(c) {
                let dist = if r > e.rmax {
                    r - e.rmax
                } else {
                    e.rmin.saturating_sub(r)
                };
                if best.map(|(bd, _)| dist < bd).unwrap_or(true) {
                    best = Some((dist, e));
                }
            }
        }
        best.expect("summary is non-empty").1
    }

    /// Bounds on `SUM{ y : x ≤ Q_φ(x) }`: the cumulative-mass interval of
    /// the entry covering rank `⌈φ·count⌉`.
    pub fn query_sum(&self, phi: f64) -> (f64, f64) {
        let r = ((phi * self.count as f64).ceil() as u64).clamp(1, self.count);
        let e = self.lookup_rank(r);
        (e.sum_lo, e.sum_hi)
    }
}

/// Recomputes `e` against `other`, where `j` is the first not-yet-consumed
/// index of `other` (entries before `j` have x ≤ e.x).
fn combine(e: CorrEntry, other: &CorrSummary, j: usize) -> CorrEntry {
    let (rmin, sum_lo) = if j > 0 {
        let p = other.entries[j - 1];
        (e.rmin + p.rmin, e.sum_lo + p.sum_lo)
    } else {
        (e.rmin, e.sum_lo)
    };
    let (rmax, sum_hi) = if j < other.entries.len() {
        let s = other.entries[j];
        (e.rmax + s.rmax - 1, e.sum_hi + s.sum_hi)
    } else {
        (e.rmax + other.count, e.sum_hi + other.total)
    };
    CorrEntry {
        x: e.x,
        rmin,
        rmax,
        sum_lo,
        sum_hi,
    }
}

/// Streaming correlated-sum summary: an exponential histogram of
/// [`CorrSummary`] buckets (same carry structure as the quantile path).
#[derive(serde::Serialize, serde::Deserialize)]
pub struct CorrelatedSum {
    eps: f64,
    levels: Vec<Option<CorrSummary>>,
    prune_b: usize,
    count: u64,
    ops: OpCounter,
}

impl CorrelatedSum {
    /// Creates an empty streaming summary.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1`, `window > 0`, `n_hint ≥ window`.
    pub fn new(eps: f64, window: usize, n_hint: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
        assert!(window > 0 && n_hint >= window as u64, "bad window/hint");
        let max_levels = ((n_hint as f64 / window as f64).log2().ceil() as usize).max(1) + 1;
        let delta = eps / (2.0 * max_levels as f64);
        let prune_b = (1.0 / (2.0 * delta)).ceil() as usize;
        CorrelatedSum {
            eps,
            levels: Vec::new(),
            prune_b,
            count: 0,
            ops: OpCounter::default(),
        }
    }

    /// The sampling error for per-window summaries.
    pub fn window_eps(&self) -> f64 {
        self.eps / 2.0
    }

    /// Pairs processed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Merge/prune operation counters.
    pub fn ops(&self) -> OpCounter {
        self.ops
    }

    /// Folds in one x-sorted window of pairs.
    pub fn push_sorted_window(&mut self, pairs: &[(f32, f32)]) {
        let summary = CorrSummary::from_sorted(pairs, self.window_eps());
        self.count += summary.count();
        let mut carry = summary;
        let mut level = 0;
        loop {
            if level == self.levels.len() {
                self.levels.push(Some(carry));
                return;
            }
            match self.levels[level].take() {
                None => {
                    self.levels[level] = Some(carry);
                    return;
                }
                Some(existing) => {
                    let merged = CorrSummary::merge(&existing, &carry, &mut self.ops);
                    carry = if merged.entries().len() > self.prune_b + 1 {
                        merged.prune(self.prune_b, &mut self.ops)
                    } else {
                        merged
                    };
                    level += 1;
                }
            }
        }
    }

    /// Bounds on `SUM{ y : x ≤ Q_φ(x) }` over everything pushed so far.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been pushed.
    pub fn query_sum(&self, phi: f64) -> (f64, f64) {
        self.snapshot().query_sum(phi)
    }

    /// Exact total Σy.
    pub fn total_sum(&self) -> f64 {
        self.levels
            .iter()
            .flatten()
            .map(CorrSummary::total_sum)
            .sum()
    }

    fn snapshot(&self) -> CorrSummary {
        let mut ops = OpCounter::default();
        let mut acc: Option<CorrSummary> = None;
        for s in self.levels.iter().flatten() {
            acc = Some(match acc {
                None => s.clone(),
                Some(a) => CorrSummary::merge(&a, s, &mut ops),
            });
        }
        acc.expect("cannot query an empty summary")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Exact SUM{y : x <= phi-quantile of x}.
    fn exact_correlated_sum(pairs: &[(f32, f32)], phi: f64) -> f64 {
        let mut sorted = pairs.to_vec();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let r = ((phi * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[..r].iter().map(|&(_, y)| y as f64).sum()
    }

    fn random_pairs(n: usize, seed: u64) -> Vec<(f32, f32)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (rng.random_range(0.0..1000.0), rng.random_range(0.0..10.0)))
            .collect()
    }

    fn run_stream(pairs: &[(f32, f32)], eps: f64, window: usize) -> CorrelatedSum {
        let mut cs = CorrelatedSum::new(eps, window, pairs.len() as u64);
        for chunk in pairs.chunks(window) {
            let mut w = chunk.to_vec();
            w.sort_by(|a, b| a.0.total_cmp(&b.0));
            cs.push_sorted_window(&w);
        }
        cs
    }

    #[test]
    fn single_window_bounds_contain_exact() {
        let pairs = random_pairs(1000, 1);
        let mut sorted = pairs.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let summary = CorrSummary::from_sorted(&sorted, 0.01);
        for phi in [0.1, 0.5, 0.9, 1.0] {
            let exact = exact_correlated_sum(&pairs, phi);
            let (lo, hi) = summary.query_sum(phi);
            // Sampled ranks are exact within one window; the answer can be
            // off only by the mass inside one sampling gap.
            let slack = 0.01 * summary.count() as f64 * 10.0 + 1e-6;
            assert!(
                lo - slack <= exact && exact <= hi + slack,
                "phi={phi}: [{lo},{hi}] vs {exact}"
            );
        }
    }

    #[test]
    fn streaming_bounds_contain_exact() {
        let pairs = random_pairs(40_000, 2);
        let eps = 0.01;
        let cs = run_stream(&pairs, eps, 1024);
        assert_eq!(cs.count(), 40_000);
        for phi in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let exact = exact_correlated_sum(&pairs, phi);
            let (lo, hi) = cs.query_sum(phi);
            // Rank slack of eps*N positions, each carrying at most y_max.
            let slack = eps * pairs.len() as f64 * 10.0;
            assert!(
                lo - slack <= exact && exact <= hi + slack,
                "phi={phi}: [{lo:.0},{hi:.0}] vs {exact:.0} (slack {slack:.0})"
            );
            // The interval itself must be usefully tight.
            assert!(hi - lo <= 4.0 * slack, "phi={phi}: width {}", hi - lo);
        }
    }

    #[test]
    fn total_sum_is_exact() {
        let pairs = random_pairs(10_000, 3);
        let cs = run_stream(&pairs, 0.02, 512);
        let exact: f64 = pairs.iter().map(|&(_, y)| y as f64).sum();
        assert!((cs.total_sum() - exact).abs() < 1e-6 * exact);
    }

    #[test]
    fn full_range_query_returns_total() {
        let pairs = random_pairs(5_000, 4);
        let cs = run_stream(&pairs, 0.02, 512);
        let (lo, hi) = cs.query_sum(1.0);
        let total = cs.total_sum();
        assert!(lo <= total + 1e-9 && total <= hi + 1e-9);
    }

    #[test]
    fn correlated_with_skewed_mass() {
        // All the y-mass sits on the largest x values: SUM up to the median
        // must be near zero, SUM up to 1.0 must be everything.
        let mut rng = StdRng::seed_from_u64(5);
        let pairs: Vec<(f32, f32)> = (0..20_000)
            .map(|_| {
                let x: f32 = rng.random_range(0.0..1000.0);
                let y = if x > 900.0 { 100.0 } else { 0.0 };
                (x, y)
            })
            .collect();
        let cs = run_stream(&pairs, 0.01, 1024);
        let exact_total: f64 = pairs.iter().map(|&(_, y)| y as f64).sum();
        let (_, hi_mid) = cs.query_sum(0.5);
        assert!(
            hi_mid < 0.1 * exact_total,
            "median prefix holds no mass: {hi_mid}"
        );
        let (lo_full, _) = cs.query_sum(1.0);
        assert!(lo_full > 0.9 * exact_total);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_y_rejected() {
        let _ = CorrSummary::from_sorted(&[(1.0, -1.0)], 0.1);
    }
}
