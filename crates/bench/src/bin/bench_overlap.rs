//! **Overlap benchmark** — serial Host vs the `ParallelHost` worker-pool
//! backend vs the simulated GPU, on fixed-seed streams.
//!
//! The paper's throughput claim rests on overlap: the co-processor sorts
//! window *k* while the CPU ingests window *k+1*, and the four RGBA lanes
//! sort concurrently. `Engine::ParallelHost` *executes* that plan on host
//! threads; this harness measures what it buys on real hardware —
//! wall-clock elements/second through the full window→sort→sink pipeline —
//! and dumps a JSON record under `results/` so the perf trajectory
//! accumulates across commits (`BENCH_*.json`).
//!
//! ```text
//! cargo run --release -p gsm-bench --bin bench_overlap [-- --elements 1048576
//!     --window 65536 --repeats 3 --out results/BENCH_overlap.json]
//! ```
//!
//! The GPU engine is a cycle-accurate *simulator*, so its wall-clock time
//! measures the simulator, not the device; its throughput is reported in
//! simulated seconds instead, on a smaller fixed slice of the stream.

use std::time::Instant;

use gsm_bench::Args;
use gsm_core::{Engine, WindowedPipeline};
use gsm_sketch::{SinkOps, SummarySink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sink that only counts, isolating the sort path's throughput.
#[derive(Default)]
struct NullSink {
    count: u64,
    checksum: u64,
}

impl SummarySink for NullSink {
    fn push_sorted_window(&mut self, sorted: &[f32]) {
        self.count += sorted.len() as u64;
        // Fold the first/last bits in so the sort cannot be optimized out.
        if let (Some(a), Some(b)) = (sorted.first(), sorted.last()) {
            self.checksum = self.checksum.wrapping_add(a.to_bits() as u64)
                ^ (b.to_bits() as u64).rotate_left(17);
        }
    }

    fn ops(&self) -> SinkOps {
        SinkOps::default()
    }
}

/// One engine's measured run.
#[derive(serde::Serialize)]
struct EngineResult {
    engine: String,
    elements: u64,
    window: usize,
    /// Best-of-`repeats` wall-clock seconds for the full pipeline run.
    wall_secs: f64,
    /// Elements per wall-clock second.
    throughput_eps: f64,
    /// Simulated device seconds (zero for host engines).
    sim_secs: f64,
    /// Background sorting wall time (ParallelHost only).
    wall_sorting_secs: f64,
    /// Ingest-thread blocked wall time (ParallelHost only).
    wall_blocked_secs: f64,
    /// Sort time hidden behind ingest (ParallelHost only).
    wall_hidden_secs: f64,
    /// Sorted-output checksum — must agree across engines.
    checksum: u64,
}

#[derive(serde::Serialize)]
struct Report {
    bench: String,
    elements: u64,
    gpu_elements: u64,
    window: usize,
    repeats: usize,
    host_threads: usize,
    engines: Vec<EngineResult>,
    /// Wall-clock throughput ratio ParallelHost / Host.
    speedup_parallel_vs_host: f64,
}

fn stream(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(0.0..65_536.0f32)).collect()
}

fn run(engine: Engine, data: &[f32], window: usize, repeats: usize) -> EngineResult {
    let mut best: Option<EngineResult> = None;
    for _ in 0..repeats.max(1) {
        let mut p = WindowedPipeline::new(engine, window, NullSink::default());
        let start = Instant::now();
        for &v in data {
            p.push(v);
        }
        p.flush();
        let wall = start.elapsed().as_secs_f64();
        let sim = p.breakdown().total().as_secs();
        let wc = p.wall_clock();
        let result = EngineResult {
            engine: format!("{engine:?}"),
            elements: data.len() as u64,
            window,
            wall_secs: wall,
            throughput_eps: data.len() as f64 / wall,
            sim_secs: sim,
            wall_sorting_secs: wc.sorting.as_secs_f64(),
            wall_blocked_secs: wc.blocked.as_secs_f64(),
            wall_hidden_secs: wc.hidden().as_secs_f64(),
            checksum: p.sink().checksum,
        };
        if best.as_ref().is_none_or(|b| result.wall_secs < b.wall_secs) {
            best = Some(result);
        }
    }
    best.expect("at least one repeat")
}

fn main() {
    let args = Args::parse();
    let elements: usize = args.get_num("elements", 1 << 20);
    let window: usize = args.get_num("window", 1 << 16);
    let repeats: usize = args.get_num("repeats", 3);
    // The simulator pays thousands of instrumented cycles per element; cap
    // its slice so the harness stays runnable everywhere.
    let gpu_elements: usize = args.get_num("gpu-elements", elements.min(4 * window));
    let out = args
        .get("out")
        .unwrap_or("results/BENCH_overlap.json")
        .to_string();

    let data = stream(elements, 42);
    let threads = std::thread::available_parallelism().map_or(1, usize::from);

    println!(
        "# overlap benchmark: {elements} elements, window {window}, {threads} host thread(s)\n"
    );

    let host = run(Engine::Host, &data, window, repeats);
    let parallel = run(Engine::ParallelHost, &data, window, repeats);
    let gpu = run(
        Engine::GpuSim,
        &data[..gpu_elements.min(elements)],
        window,
        1,
    );

    assert_eq!(
        host.checksum, parallel.checksum,
        "engines must agree bit-for-bit"
    );

    let speedup = parallel.throughput_eps / host.throughput_eps;
    for r in [&host, &parallel, &gpu] {
        println!(
            "{:>14}: {:>10.0} elem/s wall ({:.3}s), sim {:.3}s, hidden {:.3}s",
            r.engine, r.throughput_eps, r.wall_secs, r.sim_secs, r.wall_hidden_secs
        );
    }
    println!("\nParallelHost vs Host wall-clock speedup: {speedup:.2}x");

    let report = Report {
        bench: "overlap".to_string(),
        elements: elements as u64,
        gpu_elements: gpu_elements as u64,
        window,
        repeats,
        host_threads: threads,
        engines: vec![host, parallel, gpu],
        speedup_parallel_vs_host: speedup,
    };
    let payload = serde_json::to_string(&report).expect("report serializes");
    gsm_bench::write_result(
        &out,
        &gsm_bench::envelope_json("gsm-bench/bench_overlap", &payload),
    );
    println!("wrote {out}");
}
