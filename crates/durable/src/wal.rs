//! The segmented write-ahead log.
//!
//! One record per sealed engine window: the raw elements in arrival
//! order. Replay re-pushes exactly that sequence through the (fully
//! deterministic) window → route → sort pipeline, so logging pre-sort
//! data reproduces post-sort state byte for byte while keeping the format
//! trivial.
//!
//! ## On-disk format
//!
//! A log is a directory of segment files named `wal-<first_seq>.seg`
//! (zero-padded decimal), each holding up to
//! [`WalOptions::records_per_segment`] consecutive records:
//!
//! ```text
//! record := magic  u32  "GSMW" (0x57_4D_53_47 LE)
//!           seq    u64  (strictly consecutive, 1-based)
//!           len    u32  (payload bytes; always 4 × element count)
//!           payload      len bytes of f32 little-endian elements
//!           crc    u32  CRC-32 (IEEE) over seq ‖ len ‖ payload
//! ```
//!
//! The scan tolerates exactly one kind of damage silently-truncatable at
//! the tail: an *incomplete* final record in the final segment (a torn
//! write from the crash itself). Everything else — bad magic, CRC
//! mismatch, a sequence gap, a segment that ends early while later
//! segments exist — is reported as detected corruption. In every case the
//! scan stops at the last valid record; damaged data is never returned as
//! replayable.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Record header magic: `"GSMW"` as little-endian bytes.
const MAGIC: [u8; 4] = *b"GSMW";

/// Fixed record header size (magic + seq + len).
const HEADER_BYTES: u64 = 4 + 8 + 4;

/// Trailing CRC size.
const CRC_BYTES: u64 = 4;

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC-32 (IEEE 802.3) over `bytes` — the checksum every WAL record
/// carries over its sequence number, length, and payload.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// When the log forces appended records to stable storage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FsyncPolicy {
    /// `fsync` after every sealed-window record — bounded loss of at most
    /// the in-flight partial window on power failure.
    EverySeal,
    /// `fsync` after every `n` records — amortized, loss bounded by `n`
    /// windows.
    EveryN(u64),
    /// Never `fsync` from the appender. Process crashes still lose
    /// nothing that reached the page cache; power loss may lose the lot.
    Off,
}

impl FsyncPolicy {
    /// Stable lowercase label for reports and metrics.
    pub fn name(self) -> &'static str {
        match self {
            FsyncPolicy::EverySeal => "every_seal",
            FsyncPolicy::EveryN(_) => "every_n",
            FsyncPolicy::Off => "off",
        }
    }
}

/// When the engine snapshots its full state and truncates the WAL below
/// the checkpoint horizon.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckpointPolicy {
    /// Checkpoint after every `n` sealed-window records (and once at seal
    /// time, so recovery always has a base that carries the query set).
    EveryWindows(u64),
    /// Only the seal-time base checkpoint; the WAL grows unboundedly.
    Manual,
}

impl CheckpointPolicy {
    /// The cadence in records, if periodic.
    pub fn every(self) -> Option<u64> {
        match self {
            CheckpointPolicy::EveryWindows(n) => Some(n),
            CheckpointPolicy::Manual => None,
        }
    }
}

/// Tuning for one log.
#[derive(Clone, Copy, Debug)]
pub struct WalOptions {
    /// Fsync policy applied on append.
    pub fsync: FsyncPolicy,
    /// Records per segment file before rolling to a new one.
    pub records_per_segment: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            fsync: FsyncPolicy::EverySeal,
            records_per_segment: 64,
        }
    }
}

/// One valid record surfaced by [`scan`]: its identity, location (for
/// fault injection and tail repair), and decoded payload.
#[derive(Clone, Debug)]
pub struct RecordLoc {
    /// The record's sequence number.
    pub seq: u64,
    /// Segment file holding it.
    pub path: PathBuf,
    /// Byte offset of the record header within the segment.
    pub offset: u64,
    /// Total encoded size (header + payload + CRC).
    pub len: u64,
    /// The decoded elements.
    pub payload: Vec<f32>,
}

/// The result of scanning a log directory: every valid record in order,
/// plus what (if anything) stopped the scan.
#[derive(Debug)]
pub struct WalScan {
    /// Valid records, sequence-ascending.
    pub records: Vec<RecordLoc>,
    /// The final segment ended inside a record — the expected artifact of
    /// a crash mid-append. The valid prefix is intact.
    pub torn_tail: bool,
    /// Detected damage that is *not* a benign torn tail: bad magic, CRC
    /// mismatch, sequence gap, or a segment cut short while later
    /// segments exist. The scan stopped at the last valid record.
    pub corruption: Option<String>,
    /// Segment files seen.
    pub segments: usize,
    /// Total bytes of valid records.
    pub valid_bytes: u64,
}

impl WalScan {
    /// The highest valid sequence number, or 0 for an empty log.
    pub fn last_seq(&self) -> u64 {
        self.records.last().map_or(0, |r| r.seq)
    }
}

fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:010}.seg")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

/// Lists segment files in a directory, sorted by first sequence number.
fn list_segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut segs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(first) = parse_segment_name(&name.to_string_lossy()) {
            segs.push((first, entry.path()));
        }
    }
    segs.sort_by_key(|&(first, _)| first);
    Ok(segs)
}

fn encode_record(seq: u64, payload: &[f32]) -> Vec<u8> {
    let len = (payload.len() * 4) as u32;
    let mut buf = Vec::with_capacity((HEADER_BYTES + CRC_BYTES) as usize + payload.len() * 4);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&len.to_le_bytes());
    for &v in payload {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    let crc = crc32(&buf[4..]);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// What stopped decoding inside one segment (a clean end of segment stops
/// the loop directly, without a `Stop`).
enum Stop {
    /// Bytes remain but do not form a whole record (torn write).
    Torn(String),
    /// Structurally complete but invalid (magic/CRC/sequence).
    Bad(String),
}

/// Scans a log directory, returning every valid record and the scan's
/// stopping condition. Read-only — see [`Wal::open_for_append`] for the
/// repairing variant.
///
/// # Errors
///
/// Returns I/O errors from reading the directory or segment files;
/// damaged *content* is reported in the [`WalScan`], not as an error.
pub fn scan(dir: &Path) -> std::io::Result<WalScan> {
    let segs = list_segments(dir)?;
    let mut out = WalScan {
        records: Vec::new(),
        torn_tail: false,
        corruption: None,
        segments: segs.len(),
        valid_bytes: 0,
    };
    let mut expect_seq: Option<u64> = None;
    'segments: for (idx, (first, path)) in segs.iter().enumerate() {
        let bytes = fs::read(path)?;
        let is_last_segment = idx == segs.len() - 1;
        let mut off = 0usize;
        loop {
            if off == bytes.len() {
                break; // clean segment end
            }
            let (stop, rec) = decode_one(&bytes, off, path, *first, expect_seq);
            match (stop, rec) {
                (None, Some(rec)) => {
                    expect_seq = Some(rec.seq + 1);
                    out.valid_bytes += rec.len;
                    off += rec.len as usize;
                    out.records.push(rec);
                }
                (Some(Stop::Torn(why)), None) => {
                    if is_last_segment {
                        out.torn_tail = true;
                    } else {
                        out.corruption = Some(format!(
                            "{}: {} (mid-log segment cut short)",
                            disp(path),
                            why
                        ));
                    }
                    break 'segments;
                }
                (Some(Stop::Bad(why)), None) => {
                    out.corruption = Some(format!("{}: {why}", disp(path)));
                    break 'segments;
                }
                _ => unreachable!("decode_one returns exactly one of stop/record"),
            }
        }
    }
    Ok(out)
}

fn disp(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

/// Decodes one record at `off`; returns either a stop condition or the
/// record (never both).
fn decode_one(
    bytes: &[u8],
    off: usize,
    path: &Path,
    _first_seq: u64,
    expect_seq: Option<u64>,
) -> (Option<Stop>, Option<RecordLoc>) {
    let avail = bytes.len() - off;
    if (avail as u64) < HEADER_BYTES {
        return (
            Some(Stop::Torn(format!(
                "{avail}-byte partial header at offset {off}"
            ))),
            None,
        );
    }
    let h = &bytes[off..];
    if h[..4] != MAGIC {
        return (
            Some(Stop::Bad(format!("bad record magic at offset {off}"))),
            None,
        );
    }
    let seq = u64::from_le_bytes(h[4..12].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(h[12..16].try_into().expect("4 bytes")) as u64;
    if !len.is_multiple_of(4) {
        return (
            Some(Stop::Bad(format!(
                "record seq {seq}: payload length {len} is not a multiple of 4"
            ))),
            None,
        );
    }
    let total = HEADER_BYTES + len + CRC_BYTES;
    if (avail as u64) < total {
        return (
            Some(Stop::Torn(format!(
                "record seq {seq} needs {total} bytes, {avail} available"
            ))),
            None,
        );
    }
    let body = &h[4..(HEADER_BYTES + len) as usize];
    let stored_crc = u32::from_le_bytes(
        h[(HEADER_BYTES + len) as usize..total as usize]
            .try_into()
            .expect("4 bytes"),
    );
    let actual = crc32(body);
    if stored_crc != actual {
        return (
            Some(Stop::Bad(format!(
                "record seq {seq}: CRC mismatch (stored {stored_crc:#010x}, computed {actual:#010x})"
            ))),
            None,
        );
    }
    if let Some(expect) = expect_seq {
        if seq != expect {
            return (
                Some(Stop::Bad(format!(
                    "sequence gap: expected seq {expect}, found {seq}"
                ))),
                None,
            );
        }
    }
    let payload: Vec<f32> = h[HEADER_BYTES as usize..(HEADER_BYTES + len) as usize]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    (
        None,
        Some(RecordLoc {
            seq,
            path: path.to_path_buf(),
            offset: off as u64,
            len: total,
            payload,
        }),
    )
}

/// Deletes every segment in `dir`, returning how many were removed. Used
/// by recovery when the entire surviving log is at or below the restored
/// checkpoint's horizon: appending after such a tail would leave a
/// sequence gap that a later scan must flag, so the stale log is cleared
/// and appends restart in a fresh first segment.
///
/// # Errors
///
/// Returns I/O errors from listing or deleting segments.
pub fn clear(dir: &Path) -> std::io::Result<usize> {
    let segs = list_segments(dir)?;
    let n = segs.len();
    for (_, path) in segs {
        fs::remove_file(path)?;
    }
    Ok(n)
}

/// The segmented append-side handle.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    opts: WalOptions,
    file: Option<File>,
    current_path: Option<PathBuf>,
    records_in_segment: u64,
    appends_since_sync: u64,
    appends: u64,
    fsyncs: u64,
    bytes_written: u64,
}

impl Wal {
    /// Creates a fresh log in `dir` (created if absent).
    ///
    /// # Errors
    ///
    /// Fails with [`std::io::ErrorKind::AlreadyExists`] if `dir` already
    /// holds WAL segments — reopening an existing log must go through
    /// [`Wal::open_for_append`] so the tail is validated first.
    pub fn create(dir: &Path, opts: WalOptions) -> std::io::Result<Self> {
        fs::create_dir_all(dir)?;
        if !list_segments(dir)?.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!(
                    "{} already holds WAL segments; recover instead of overwriting",
                    dir.display()
                ),
            ));
        }
        Ok(Wal {
            dir: dir.to_path_buf(),
            opts,
            file: None,
            current_path: None,
            records_in_segment: 0,
            appends_since_sync: 0,
            appends: 0,
            fsyncs: 0,
            bytes_written: 0,
        })
    }

    /// Scans an existing log, truncates any torn or damaged tail back to
    /// the last valid record (deleting unreachable later segments), and
    /// returns an appender positioned after it, plus the scan that
    /// describes what was found.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from the scan or the repair writes.
    pub fn open_for_append(dir: &Path, opts: WalOptions) -> std::io::Result<(Self, WalScan)> {
        fs::create_dir_all(dir)?;
        let result = scan(dir)?;
        // Repair: cut the segment holding the last valid record (or the
        // stop point) back to the end of the valid prefix, and remove
        // every segment past the stop — appends must land contiguously
        // after the last record the scan vouched for.
        let keep_until: Option<(PathBuf, u64)> = result
            .records
            .last()
            .map(|r| (r.path.clone(), r.offset + r.len));
        let segs = list_segments(dir)?;
        match &keep_until {
            Some((last_path, end)) => {
                let mut past_last = false;
                for (_, path) in &segs {
                    if past_last {
                        fs::remove_file(path)?;
                    } else if path == last_path {
                        let meta = fs::metadata(path)?;
                        if meta.len() > *end {
                            OpenOptions::new().write(true).open(path)?.set_len(*end)?;
                        }
                        past_last = true;
                    }
                }
            }
            None => {
                // No valid record anywhere: every segment is damage or
                // emptiness; clear the lot.
                for (_, path) in &segs {
                    fs::remove_file(path)?;
                }
            }
        }
        let mut wal = Wal {
            dir: dir.to_path_buf(),
            opts,
            file: None,
            current_path: None,
            records_in_segment: 0,
            appends_since_sync: 0,
            appends: 0,
            fsyncs: 0,
            bytes_written: 0,
        };
        if let Some((last_path, _)) = keep_until {
            // Resume inside the surviving final segment.
            let in_segment = result
                .records
                .iter()
                .rev()
                .take_while(|r| r.path == last_path)
                .count() as u64;
            wal.records_in_segment = in_segment;
            wal.file = Some(OpenOptions::new().append(true).open(&last_path)?);
            wal.current_path = Some(last_path);
        }
        Ok((wal, result))
    }

    /// Appends one sealed-window record, rolling to a new segment when the
    /// current one is full. Returns whether this append was fsynced under
    /// the configured policy.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from the segment write or fsync.
    pub fn append(&mut self, seq: u64, payload: &[f32]) -> std::io::Result<bool> {
        if self.file.is_none() || self.records_in_segment >= self.opts.records_per_segment {
            let path = self.dir.join(segment_name(seq));
            self.file = Some(
                OpenOptions::new()
                    .create_new(true)
                    .append(true)
                    .open(&path)?,
            );
            self.current_path = Some(path);
            self.records_in_segment = 0;
        }
        let buf = encode_record(seq, payload);
        let file = self.file.as_mut().expect("segment open");
        file.write_all(&buf)?;
        self.bytes_written += buf.len() as u64;
        self.records_in_segment += 1;
        self.appends += 1;
        self.appends_since_sync += 1;
        let fsync = match self.opts.fsync {
            FsyncPolicy::EverySeal => true,
            FsyncPolicy::EveryN(n) => self.appends_since_sync >= n.max(1),
            FsyncPolicy::Off => false,
        };
        if fsync {
            file.sync_data()?;
            self.fsyncs += 1;
            self.appends_since_sync = 0;
        }
        Ok(fsync)
    }

    /// Forces everything appended so far to stable storage.
    ///
    /// # Errors
    ///
    /// Returns the fsync error, if any.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if let Some(file) = self.file.as_mut() {
            file.sync_data()?;
            self.fsyncs += 1;
            self.appends_since_sync = 0;
        }
        Ok(())
    }

    /// Deletes every segment whose records all have `seq <= horizon`
    /// (whole segments only; the final segment is always kept because it
    /// may be the live append target). Returns how many were removed.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from listing or deleting segments.
    pub fn truncate_below(&mut self, horizon: u64) -> std::io::Result<usize> {
        let segs = list_segments(&self.dir)?;
        let mut removed = 0;
        for i in 0..segs.len() {
            let next_first = match segs.get(i + 1) {
                Some(&(first, _)) => first,
                None => break, // never delete the final (live) segment
            };
            // Segment i holds seqs [first_i, next_first); all <= horizon
            // exactly when next_first <= horizon + 1.
            if next_first <= horizon.saturating_add(1) {
                fs::remove_file(&segs[i].1)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Records appended through this handle.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Fsyncs issued through this handle.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Bytes written through this handle.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "gsm-wal-test-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn payload(seq: u64, n: usize) -> Vec<f32> {
        (0..n).map(|i| (seq * 1000 + i as u64) as f32).collect()
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_scan_round_trip_across_segments() {
        let dir = tmp("roundtrip");
        let mut wal = Wal::create(
            &dir,
            WalOptions {
                fsync: FsyncPolicy::EveryN(2),
                records_per_segment: 3,
            },
        )
        .unwrap();
        for seq in 1..=8u64 {
            wal.append(seq, &payload(seq, 5)).unwrap();
        }
        wal.sync().unwrap();
        assert_eq!(wal.appends(), 8);
        assert!(wal.fsyncs() >= 4);

        let result = scan(&dir).unwrap();
        assert_eq!(result.records.len(), 8);
        assert!(!result.torn_tail);
        assert!(result.corruption.is_none());
        assert_eq!(result.segments, 3); // 3 + 3 + 2 records
        assert_eq!(result.last_seq(), 8);
        for (i, rec) in result.records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64 + 1);
            assert_eq!(rec.payload, payload(rec.seq, 5));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_existing_log() {
        let dir = tmp("refuse");
        let mut wal = Wal::create(&dir, WalOptions::default()).unwrap();
        wal.append(1, &[1.0]).unwrap();
        drop(wal);
        let err = Wal::create(&dir, WalOptions::default()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_final_record_detected_at_every_byte_offset() {
        // The satellite contract: truncate the log at every byte offset of
        // the final record; the scan must never panic, must keep the valid
        // prefix, and must never surface the partial record.
        let full_dir = tmp("torn-src");
        let mut wal = Wal::create(
            &full_dir,
            WalOptions {
                fsync: FsyncPolicy::Off,
                records_per_segment: 64,
            },
        )
        .unwrap();
        for seq in 1..=3u64 {
            wal.append(seq, &payload(seq, 7)).unwrap();
        }
        drop(wal);
        let reference = scan(&full_dir).unwrap();
        let last = reference.records.last().unwrap().clone();
        let seg_bytes = fs::read(&last.path).unwrap();

        for cut in (last.offset as usize)..(last.offset + last.len) as usize {
            let dir = tmp("torn");
            fs::create_dir_all(&dir).unwrap();
            let seg = dir.join(disp(&last.path));
            fs::write(&seg, &seg_bytes[..cut]).unwrap();

            let result = scan(&dir).unwrap();
            assert_eq!(
                result.records.len(),
                2,
                "cut at {cut}: only the 2 whole records survive"
            );
            assert_eq!(result.last_seq(), 2, "cut at {cut}");
            if cut == last.offset as usize {
                // Clean cut exactly at the record boundary: no tear at all.
                assert!(!result.torn_tail && result.corruption.is_none());
            } else {
                // Any cut inside the record is a tear (or, when only the
                // CRC bytes survive partially, still a tear) — never
                // silent, never a panic.
                assert!(
                    result.torn_tail || result.corruption.is_some(),
                    "cut at {cut} must be noticed"
                );
            }

            // And reopening repairs the tail so appends resume at seq 3.
            let (mut reopened, rescan) = Wal::open_for_append(&dir, WalOptions::default()).unwrap();
            assert_eq!(rescan.last_seq(), 2);
            reopened.append(3, &payload(3, 7)).unwrap();
            let healed = scan(&dir).unwrap();
            assert_eq!(healed.records.len(), 3);
            assert!(healed.corruption.is_none() && !healed.torn_tail);
            std::fs::remove_dir_all(&dir).ok();
        }
        std::fs::remove_dir_all(&full_dir).ok();
    }

    #[test]
    fn mid_log_damage_is_corruption_not_a_tear() {
        let dir = tmp("midlog");
        let mut wal = Wal::create(
            &dir,
            WalOptions {
                fsync: FsyncPolicy::Off,
                records_per_segment: 2,
            },
        )
        .unwrap();
        for seq in 1..=6u64 {
            wal.append(seq, &payload(seq, 4)).unwrap();
        }
        drop(wal);
        // Cut the middle segment (records 3–4) in half: records 5–6 still
        // exist on disk but are unreachable — that is corruption.
        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.len(), 3);
        let mid = &segs[1].1;
        let len = fs::metadata(mid).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(mid)
            .unwrap()
            .set_len(len / 2 + 1) // off a record boundary: a genuine tear
            .unwrap();

        let result = scan(&dir).unwrap();
        assert!(!result.torn_tail);
        assert!(result.last_seq() <= 3);
        let msg = result.corruption.expect("mid-log damage must be flagged");
        assert!(msg.contains("cut short"), "{msg}");

        // Repair keeps the valid prefix and deletes the unreachable tail.
        let (_, rescan) = Wal::open_for_append(&dir, WalOptions::default()).unwrap();
        let after = scan(&dir).unwrap();
        assert_eq!(after.records.len(), rescan.records.len());
        assert!(after.corruption.is_none() && !after.torn_tail);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_fails_crc() {
        let dir = tmp("bitflip");
        let mut wal = Wal::create(&dir, WalOptions::default()).unwrap();
        for seq in 1..=2u64 {
            wal.append(seq, &payload(seq, 6)).unwrap();
        }
        drop(wal);
        let before = scan(&dir).unwrap();
        let first = &before.records[0];
        let mut bytes = fs::read(&first.path).unwrap();
        let idx = (first.offset + HEADER_BYTES + 3) as usize;
        bytes[idx] ^= 0x10;
        fs::write(&first.path, &bytes).unwrap();

        let result = scan(&dir).unwrap();
        assert_eq!(result.records.len(), 0, "flip hit record 1; prefix empty");
        let msg = result.corruption.expect("CRC must catch the flip");
        assert!(msg.contains("CRC mismatch"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_below_deletes_whole_cold_segments_only() {
        let dir = tmp("truncate");
        let mut wal = Wal::create(
            &dir,
            WalOptions {
                fsync: FsyncPolicy::Off,
                records_per_segment: 2,
            },
        )
        .unwrap();
        for seq in 1..=7u64 {
            wal.append(seq, &payload(seq, 3)).unwrap();
        }
        // Segments: [1,2], [3,4], [5,6], [7]. Horizon 5 removes the first
        // two (all records <= 5) but keeps [5,6] (6 > 5) and the live one.
        let removed = wal.truncate_below(5).unwrap();
        assert_eq!(removed, 2);
        let result = scan(&dir).unwrap();
        assert_eq!(result.records.first().unwrap().seq, 5);
        assert_eq!(result.last_seq(), 7);
        assert!(result.corruption.is_none());

        // Horizon past the end still keeps the final segment.
        let removed = wal.truncate_below(100).unwrap();
        assert_eq!(removed, 1); // [5,6] goes, [7] stays
        assert_eq!(scan(&dir).unwrap().last_seq(), 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sequence_gap_is_corruption() {
        let dir = tmp("gap");
        let mut wal = Wal::create(
            &dir,
            WalOptions {
                fsync: FsyncPolicy::Off,
                records_per_segment: 1,
            },
        )
        .unwrap();
        for seq in 1..=3u64 {
            wal.append(seq, &payload(seq, 2)).unwrap();
        }
        drop(wal);
        // Remove the middle segment entirely: 1, _, 3.
        let segs = list_segments(&dir).unwrap();
        fs::remove_file(&segs[1].1).unwrap();
        let result = scan(&dir).unwrap();
        assert_eq!(result.records.len(), 1);
        assert!(result
            .corruption
            .as_deref()
            .is_some_and(|m| m.contains("sequence gap")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_continues_segment_counts() {
        let dir = tmp("reopen");
        let opts = WalOptions {
            fsync: FsyncPolicy::Off,
            records_per_segment: 3,
        };
        let mut wal = Wal::create(&dir, opts).unwrap();
        for seq in 1..=4u64 {
            wal.append(seq, &payload(seq, 2)).unwrap();
        }
        drop(wal);
        let (mut wal, rescan) = Wal::open_for_append(&dir, opts).unwrap();
        assert_eq!(rescan.last_seq(), 4);
        // Seq 5 lands in the second segment (which holds only seq 4), then
        // 6 fills it and 7 rolls a third.
        for seq in 5..=7u64 {
            wal.append(seq, &payload(seq, 2)).unwrap();
        }
        let result = scan(&dir).unwrap();
        assert_eq!(result.records.len(), 7);
        assert_eq!(result.segments, 3);
        assert!(result.corruption.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
