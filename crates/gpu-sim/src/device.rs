//! The simulated device: texture memory, framebuffer, render passes, and the
//! cost ledger.

use gsm_model::Bytes;

use crate::blend::BlendOp;
use crate::bus::BusModel;
use crate::cost::{GpuCostModel, TEXEL_BYTES};
use crate::depth::{DepthBuffer, DepthFunc};
use crate::program::{FragmentProgram, ShaderCtx};
use crate::raster::Quad;
use crate::stats::GpuStats;
use crate::surface::{Surface, Texel, TextureFormat};

/// Handle to a texture resident in simulated video memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TextureId(pub(crate) usize);

/// A simulated GPU: owns video memory (textures + framebuffer), executes
/// render passes, and accumulates a simulated-time ledger.
///
/// # Cost accounting
///
/// * [`Device::upload_texture`] / [`Device::readback_framebuffer`] charge the
///   bus model.
/// * [`Device::draw_quads`] / [`Device::draw_quads_program`] charge one render
///   pass: per-pass overhead + per-quad overhead + `max(compute, memory)`.
/// * [`Device::copy_framebuffer_to_texture`] charges a blit.
/// * Direct inspection methods ([`Device::framebuffer`], [`Device::texture`])
///   are free: they exist for tests and debugging and do not model a real
///   data path.
pub struct Device {
    textures: Vec<(Surface, TextureFormat)>,
    framebuffer: Surface,
    depth: Option<DepthBuffer>,
    cost: GpuCostModel,
    bus: BusModel,
    stats: GpuStats,
}

impl Device {
    /// Creates a device with the given cost model and an AGP 8X bus.
    ///
    /// The framebuffer starts at 1×1; callers resize it to match their
    /// working texture (the paper renders into an offscreen buffer sized
    /// like the data texture).
    pub fn new(cost: GpuCostModel) -> Self {
        Device {
            textures: Vec::new(),
            framebuffer: Surface::new(1, 1),
            depth: None,
            cost,
            bus: BusModel::agp_8x(),
            stats: GpuStats::default(),
        }
    }

    /// A device on which every operation takes zero simulated time — for
    /// functional tests of algorithms built on top.
    pub fn ideal() -> Self {
        Device::new(GpuCostModel::ideal()).with_bus(BusModel::ideal())
    }

    /// Replaces the bus model.
    pub fn with_bus(mut self, bus: BusModel) -> Self {
        self.bus = bus;
        self
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &GpuCostModel {
        &self.cost
    }

    /// The accumulated execution/timing ledger.
    pub fn stats(&self) -> &GpuStats {
        &self.stats
    }

    /// Resets the ledger to zero (resources are kept).
    pub fn reset_stats(&mut self) {
        self.stats = GpuStats::default();
    }

    /// Resizes (and clears) the framebuffer.
    pub fn resize_framebuffer(&mut self, width: u32, height: u32) {
        if self.framebuffer.width() != width || self.framebuffer.height() != height {
            self.framebuffer = Surface::new(width, height);
        }
    }

    /// Uploads a surface over the bus into a new 32-bit float texture.
    pub fn upload_texture(&mut self, surface: Surface) -> TextureId {
        self.upload_texture_fmt(surface, TextureFormat::Rgba32F)
    }

    /// Uploads a surface in an explicit storage format. `Rgba16F` halves
    /// the bus traffic and quantizes every channel to half precision on the
    /// way in (lossless when the data already sits on the f16 grid, as the
    /// paper's 16-bit stream does).
    pub fn upload_texture_fmt(&mut self, mut surface: Surface, format: TextureFormat) -> TextureId {
        if format == TextureFormat::Rgba16F {
            quantize_surface_f16(&mut surface);
        }
        self.charge_upload(surface.texel_count() as u64 * format.bytes_per_texel());
        self.textures.push((surface, format));
        TextureId(self.textures.len() - 1)
    }

    /// Re-uploads a surface over the bus into an existing texture slot,
    /// replacing its contents (the streaming path reuses one texture for
    /// every batch).
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn update_texture(&mut self, id: TextureId, mut surface: Surface) {
        let format = self.textures[id.0].1;
        if format == TextureFormat::Rgba16F {
            quantize_surface_f16(&mut surface);
        }
        self.charge_upload(surface.texel_count() as u64 * format.bytes_per_texel());
        self.textures[id.0] = (surface, format);
    }

    fn charge_upload(&mut self, bytes: u64) {
        self.stats.uploads += 1;
        self.stats.bus_bytes.bump(bytes);
        self.stats.transfer_time += self.bus.transfer_time(Bytes::new(bytes));
    }

    /// Device-side view of a texture (free: debugging/tests only).
    pub fn texture(&self, id: TextureId) -> &Surface {
        &self.textures[id.0].0
    }

    /// The storage format of a texture.
    pub fn texture_format(&self, id: TextureId) -> TextureFormat {
        self.textures[id.0].1
    }

    /// Device-side view of the framebuffer (free: debugging/tests only).
    pub fn framebuffer(&self) -> &Surface {
        &self.framebuffer
    }

    /// Reads the framebuffer back to the host over the bus.
    pub fn readback_framebuffer(&mut self) -> Surface {
        let copy = self.framebuffer.clone();
        self.stats.readbacks += 1;
        self.stats.bus_bytes.bump(copy.byte_size());
        self.stats.transfer_time += self.bus.transfer_time(Bytes::new(copy.byte_size()));
        copy
    }

    /// Reads a texture back to the host over the bus (charged at the
    /// texture's storage format).
    pub fn readback_texture(&mut self, id: TextureId) -> Surface {
        let (copy, format) = self.textures[id.0].clone();
        let bytes = copy.texel_count() as u64 * format.bytes_per_texel();
        self.stats.readbacks += 1;
        self.stats.bus_bytes.bump(bytes);
        self.stats.transfer_time += self.bus.transfer_time(Bytes::new(bytes));
        copy
    }

    /// Copies the framebuffer into a texture on the device
    /// (`glCopyTexSubImage`-style blit; Routine 4.3 line 8 does this after
    /// every sorting step). Dimensions must match.
    ///
    /// # Panics
    ///
    /// Panics if the texture and framebuffer dimensions differ.
    pub fn copy_framebuffer_to_texture(&mut self, id: TextureId) {
        let tex = &mut self.textures[id.0].0;
        assert_eq!(
            (tex.width(), tex.height()),
            (self.framebuffer.width(), self.framebuffer.height()),
            "blit requires matching dimensions"
        );
        tex.texels_mut().copy_from_slice(self.framebuffer.texels());

        let texels = self.framebuffer.texel_count() as u64;
        let dram = texels as f64 * self.cost.blit_dram_bytes_per_texel;
        let pass = self.cost.pass_time(1, texels, self.cost.blit_cycles, dram);
        self.stats.passes += 1;
        self.stats.quads += 1;
        self.stats.fragments += texels;
        self.stats.dram_bytes.bump(dram as u64);
        self.stats.compute_time += pass.compute;
        self.stats.memory_time += pass.memory;
        self.stats.render_time += pass.compute.max(pass.memory);
        self.stats.overhead_time += pass.overhead;
    }

    /// Executes one fixed-function render pass: rasterizes `quads`, samples
    /// `tex` with nearest-neighbour clamped sampling, and combines each
    /// fragment with the framebuffer under `blend`.
    ///
    /// This is the workhorse of the paper's sorter: `ComputeMin` /
    /// `ComputeMax` / `Copy` are all single calls to this with different
    /// quads and blend state.
    pub fn draw_quads(&mut self, tex: TextureId, quads: &[Quad], blend: BlendOp) {
        if quads.is_empty() {
            return;
        }
        let texture = &self.textures[tex.0].0;
        let fb = &mut self.framebuffer;
        let fbw = fb.width() as usize;
        let mut fragments: u64 = 0;

        for quad in quads {
            debug_assert!(
                quad.dst.x1 <= fb.width() && quad.dst.y1 <= fb.height(),
                "quad {:?} exceeds framebuffer {}x{}",
                quad.dst,
                fb.width(),
                fb.height()
            );
            fragments += quad.dst.area();
            if let Some((u_lut, v_lut)) = separable_luts(quad, texture) {
                // Fast path: axis-separable texcoords (all of the paper's
                // quads). Precompute per-column and per-row texel indices.
                let texels = texture.texels();
                let tw = texture.width() as usize;
                let fb_texels = fb.texels_mut();
                for (dy, &ty) in (quad.dst.y0..quad.dst.y1).zip(v_lut.iter()) {
                    let trow = ty * tw;
                    let frow = dy as usize * fbw;
                    for (dx, &tx) in (quad.dst.x0..quad.dst.x1).zip(u_lut.iter()) {
                        let src = texels[trow + tx];
                        let d = &mut fb_texels[frow + dx as usize];
                        *d = blend.apply(src, *d);
                    }
                }
            } else {
                for frag in quad.fragments() {
                    let (tx, ty) = frag.texel_xy();
                    let src = texture.get_clamped(tx, ty);
                    let dst = fb.get(frag.x, frag.y);
                    fb.set(frag.x, frag.y, blend.apply(src, dst));
                }
            }
        }

        self.account_fixed_function_pass(quads.len() as u64, fragments, blend);
    }

    fn account_fixed_function_pass(&mut self, quads: u64, fragments: u64, blend: BlendOp) {
        let reads_dst = blend.reads_dst();
        let cycles = if reads_dst {
            self.cost.blend_cycles
        } else {
            self.cost.replace_cycles
        };
        let dram = fragments as f64 * self.cost.fragment_dram_bytes(reads_dst);
        let pass = self.cost.pass_time(quads, fragments, cycles, dram);

        self.stats.passes += 1;
        self.stats.quads += quads;
        self.stats.fragments += fragments;
        if reads_dst {
            self.stats.blend_ops += fragments;
            self.stats.fb_read_bytes.bump(fragments * TEXEL_BYTES);
        }
        self.stats.tex_fetch_bytes.bump(fragments * TEXEL_BYTES);
        self.stats.fb_write_bytes.bump(fragments * TEXEL_BYTES);
        self.stats.dram_bytes.bump(dram as u64);
        self.stats.compute_time += pass.compute;
        self.stats.memory_time += pass.memory;
        self.stats.render_time += pass.compute.max(pass.memory);
        self.stats.overhead_time += pass.overhead;
    }

    /// Executes one programmable render pass: every fragment runs
    /// `program.shader`, which may perform dependent texture fetches through
    /// its [`ShaderCtx`]. The result replaces the framebuffer value
    /// (shader-based sorters do their own compare/select, so no blending).
    ///
    /// Cost is `program.instructions` cycles per fragment — the model for the
    /// Purcell et al. bitonic baseline, which the paper reports at ≥ 53
    /// instructions per pixel per stage.
    pub fn draw_quads_program(
        &mut self,
        tex: TextureId,
        quads: &[Quad],
        program: &FragmentProgram<'_>,
    ) {
        if quads.is_empty() {
            return;
        }
        let texture = &self.textures[tex.0].0;
        let fb = &mut self.framebuffer;
        let mut fragments: u64 = 0;
        let mut ctx = ShaderCtx::new(texture);

        for quad in quads {
            fragments += quad.dst.area();
            for frag in quad.fragments() {
                let out: Texel = (program.shader)(&mut ctx, &frag);
                fb.set(frag.x, frag.y, out);
            }
        }
        let fetch_bytes = ctx.fetches() * TEXEL_BYTES;

        let dram = fetch_bytes as f64 * self.cost.tex_cache_miss_rate
            + fragments as f64 * TEXEL_BYTES as f64;
        let pass = self.cost.pass_time(
            quads.len() as u64,
            fragments,
            program.instructions as f64,
            dram,
        );

        self.stats.passes += 1;
        self.stats.quads += quads.len() as u64;
        self.stats.fragments += fragments;
        self.stats.program_fragments += fragments;
        self.stats.tex_fetch_bytes.bump(fetch_bytes);
        self.stats.fb_write_bytes.bump(fragments * TEXEL_BYTES);
        self.stats.dram_bytes.bump(dram as u64);
        self.stats.compute_time += pass.compute;
        self.stats.memory_time += pass.memory;
        self.stats.render_time += pass.compute.max(pass.memory);
        self.stats.overhead_time += pass.overhead;
    }
}

impl Device {
    /// Uploads a depth plane over the bus and performs the depth-write pass
    /// that stores it (the \[20\]-style pipelines keep attribute values in
    /// the depth buffer; loading costs one transfer plus one full-screen
    /// depth write).
    pub fn load_depth(&mut self, depth: DepthBuffer) {
        let fragments = depth.len() as u64;
        let bytes = fragments * 4;
        self.charge_upload(bytes);

        let dram = fragments as f64 * 4.0; // depth write-through
        let pass = self
            .cost
            .pass_time(1, fragments, self.cost.depth_cycles, dram);
        self.stats.passes += 1;
        self.stats.quads += 1;
        self.stats.fragments += fragments;
        self.stats.depth_fragments += fragments;
        self.stats.dram_bytes.bump(dram as u64);
        self.stats.compute_time += pass.compute;
        self.stats.memory_time += pass.memory;
        self.stats.render_time += pass.compute.max(pass.memory);
        self.stats.overhead_time += pass.overhead;

        self.depth = Some(depth);
    }

    /// The resident depth plane (free inspection for tests).
    pub fn depth_buffer(&self) -> Option<&DepthBuffer> {
        self.depth.as_ref()
    }

    /// An occlusion query: renders a full-screen quad at constant fragment
    /// depth `frag_depth` with comparison `func` (color and depth writes
    /// off) and returns the number of passing fragments — the \[20\]
    /// predicate/count primitive.
    ///
    /// Charges a depth-only pass (double-rate on the calibrated model) and
    /// one bus-latency round trip for the query result.
    ///
    /// # Panics
    ///
    /// Panics if no depth plane is loaded.
    pub fn occlusion_count(&mut self, frag_depth: f32, func: DepthFunc) -> u64 {
        let depth = self
            .depth
            .as_ref()
            .expect("load_depth before occlusion_count");
        let mut passed = 0u64;
        for &stored in depth.values() {
            if func.passes(frag_depth, stored) {
                passed += 1;
            }
        }
        let fragments = depth.len() as u64;
        // Depth reads are cached like texture fetches.
        let dram = fragments as f64 * 4.0 * self.cost.tex_cache_miss_rate;
        let pass = self
            .cost
            .pass_time(1, fragments, self.cost.depth_cycles, dram);
        self.stats.passes += 1;
        self.stats.quads += 1;
        self.stats.fragments += fragments;
        self.stats.depth_fragments += fragments;
        self.stats.occlusion_queries += 1;
        self.stats.dram_bytes.bump(dram as u64);
        self.stats.compute_time += pass.compute;
        self.stats.memory_time += pass.memory;
        self.stats.render_time += pass.compute.max(pass.memory);
        self.stats.overhead_time += pass.overhead;
        // Query-result round trip: latency-bound, 4 bytes of payload.
        self.stats.transfer_time += self.bus.transfer_time(Bytes::new(4));
        self.stats.bus_bytes.bump(4);
        passed
    }
}

/// Quantizes every channel of a surface to binary16 precision (the storage
/// effect of an `Rgba16F` upload).
fn quantize_surface_f16(surface: &mut Surface) {
    use gsm_model::F16;
    for t in surface.texels_mut() {
        for c in t.iter_mut() {
            *c = F16::from_f32(*c).to_f32();
        }
    }
}

/// If `quad`'s texture coordinates are axis-separable (u depends only on x,
/// v only on y), returns per-column and per-row texel-index lookup tables,
/// clamped to the texture.
fn separable_luts(quad: &Quad, texture: &Surface) -> Option<(Vec<usize>, Vec<usize>)> {
    let [c00, c10, c11, c01] = quad.tex;
    let separable = c00.u == c01.u && c10.u == c11.u && c00.v == c10.v && c01.v == c11.v;
    if !separable {
        return None;
    }
    let w = quad.dst.width();
    let h = quad.dst.height();
    let max_x = texture.width() as i64 - 1;
    let max_y = texture.height() as i64 - 1;

    let u_lut = (0..w)
        .map(|i| {
            let fx = (i as f32 + 0.5) / w as f32;
            let u = c00.u + (c10.u - c00.u) * fx;
            (u.floor() as i64).clamp(0, max_x) as usize
        })
        .collect();
    let v_lut = (0..h)
        .map(|j| {
            let fy = (j as f32 + 0.5) / h as f32;
            let v = c00.v + (c01.v - c00.v) * fy;
            (v.floor() as i64).clamp(0, max_y) as usize
        })
        .collect();
    Some((u_lut, v_lut))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raster::Rect;

    fn ramp_surface(w: u32, h: u32) -> Surface {
        let mut s = Surface::new(w, h);
        for i in 0..(w * h) as usize {
            let v = i as f32;
            s.set_flat(i, [v, v + 0.25, v + 0.5, v + 0.75]);
        }
        s
    }

    #[test]
    fn copy_routine_reproduces_texture() {
        // Routine 4.1 from the paper.
        let mut dev = Device::ideal();
        let tex = dev.upload_texture(ramp_surface(8, 4));
        dev.resize_framebuffer(8, 4);
        dev.draw_quads(tex, &[Quad::copy(Rect::new(0, 0, 8, 4))], BlendOp::Replace);
        assert_eq!(dev.framebuffer().texels(), dev.texture(tex).texels());
    }

    #[test]
    fn compute_min_routine() {
        // Routine 4.2: minimum of the i-th and (n-1-i)-th value of an
        // 8-element single-row texture, stored at i for i < 4.
        let mut dev = Device::ideal();
        let mut s = Surface::new(8, 1);
        let vals = [5.0, 1.0, 7.0, 3.0, 9.0, 0.0, 4.0, 2.0];
        for (i, &v) in vals.iter().enumerate() {
            s.set(i as u32, 0, [v; 4]);
        }
        let tex = dev.upload_texture(s);
        dev.resize_framebuffer(8, 1);
        dev.draw_quads(tex, &[Quad::copy(Rect::new(0, 0, 8, 1))], BlendOp::Replace);
        // Min pass over the first half with reversed u: pixel x fetches 7-x.
        let quad = Quad::mapped(Rect::new(0, 0, 4, 1), 8.0, 4.0, 0.0, 1.0);
        dev.draw_quads(tex, &[quad], BlendOp::Min);
        let fb = dev.framebuffer();
        for i in 0..4u32 {
            let expect = vals[i as usize].min(vals[7 - i as usize]);
            assert_eq!(fb.get(i, 0)[0], expect, "at {i}");
        }
        // Second half untouched.
        for i in 4..8u32 {
            assert_eq!(fb.get(i, 0)[0], vals[i as usize]);
        }
    }

    #[test]
    fn vertical_mirror_via_generic_path_matches_fast_path() {
        // Both-axis mirror is still separable; compare against a per-fragment
        // reference computed manually.
        let mut dev = Device::ideal();
        let src = ramp_surface(4, 4);
        let tex = dev.upload_texture(src.clone());
        dev.resize_framebuffer(4, 4);
        let quad = Quad::mapped(Rect::new(0, 0, 4, 4), 4.0, 0.0, 4.0, 0.0);
        dev.draw_quads(tex, &[quad], BlendOp::Replace);
        let fb = dev.framebuffer();
        for y in 0..4u32 {
            for x in 0..4u32 {
                assert_eq!(fb.get(x, y), src.get(3 - x, 3 - y));
            }
        }
    }

    #[test]
    fn blit_round_trip() {
        let mut dev = Device::ideal();
        let tex = dev.upload_texture(Surface::new(4, 4));
        dev.resize_framebuffer(4, 4);
        let ramp = ramp_surface(4, 4);
        let src = dev.upload_texture(ramp.clone());
        dev.draw_quads(src, &[Quad::copy(Rect::new(0, 0, 4, 4))], BlendOp::Replace);
        dev.copy_framebuffer_to_texture(tex);
        assert_eq!(dev.texture(tex).texels(), ramp.texels());
    }

    #[test]
    fn stats_count_passes_and_fragments() {
        let mut dev = Device::new(GpuCostModel::geforce_6800_ultra());
        let tex = dev.upload_texture(ramp_surface(8, 8));
        dev.resize_framebuffer(8, 8);
        dev.draw_quads(tex, &[Quad::copy(Rect::new(0, 0, 8, 8))], BlendOp::Replace);
        dev.draw_quads(tex, &[Quad::copy(Rect::new(0, 0, 8, 4))], BlendOp::Min);
        let s = dev.stats();
        assert_eq!(s.passes, 2);
        assert_eq!(s.fragments, 64 + 32);
        assert_eq!(s.blend_ops, 32);
        assert_eq!(s.uploads, 1);
        assert!(s.total_time().as_secs() > 0.0);
        assert!(s.render_time.as_secs() > 0.0);
    }

    #[test]
    fn upload_and_readback_charge_bus() {
        let mut dev = Device::new(GpuCostModel::geforce_6800_ultra());
        let tex = dev.upload_texture(ramp_surface(64, 64));
        let before = dev.stats().transfer_time;
        let _ = dev.readback_texture(tex);
        let after = dev.stats().transfer_time;
        assert!(after > before);
        assert_eq!(dev.stats().bus_bytes.get(), 2 * 64 * 64 * 16);
    }

    #[test]
    fn update_texture_reuses_slot() {
        let mut dev = Device::ideal();
        let tex = dev.upload_texture(Surface::new(2, 2));
        dev.update_texture(tex, ramp_surface(2, 2));
        assert_eq!(dev.texture(tex).get(1, 1)[0], 3.0);
        assert_eq!(dev.stats().uploads, 2);
    }

    #[test]
    fn program_pass_runs_shader_and_counts_fetches() {
        let mut dev = Device::ideal();
        let tex = dev.upload_texture(ramp_surface(4, 1));
        dev.resize_framebuffer(4, 1);
        let program = FragmentProgram {
            instructions: 53,
            shader: &|ctx, frag| {
                // Swap with the horizontally adjacent texel's value.
                let partner = frag.x as i64 ^ 1;
                ctx.fetch(partner, 0)
            },
        };
        dev.draw_quads_program(tex, &[Quad::copy(Rect::new(0, 0, 4, 1))], &program);
        let fb = dev.framebuffer();
        assert_eq!(fb.get(0, 0)[0], 1.0);
        assert_eq!(fb.get(1, 0)[0], 0.0);
        assert_eq!(fb.get(2, 0)[0], 3.0);
        assert_eq!(fb.get(3, 0)[0], 2.0);
        assert_eq!(dev.stats().program_fragments, 4);
        assert_eq!(dev.stats().tex_fetch_bytes.get(), 4 * 16);
    }

    #[test]
    fn f16_textures_halve_bus_traffic_and_quantize() {
        let mut surf = Surface::new(4, 4);
        surf.set(0, 0, [1.0, 2.0, 3.0, 4.0]); // exactly representable
        surf.set(1, 0, [1.0 + 2.0f32.powi(-13); 4]); // rounds to 1.0 in f16

        let mut dev32 = Device::new(GpuCostModel::geforce_6800_ultra());
        let t32 = dev32.upload_texture(surf.clone());
        assert_eq!(dev32.stats().bus_bytes.get(), 16 * 16);
        assert_eq!(dev32.texture_format(t32), TextureFormat::Rgba32F);
        assert_eq!(dev32.texture(t32).get(1, 0)[0], 1.0 + 2.0f32.powi(-13));

        let mut dev16 = Device::new(GpuCostModel::geforce_6800_ultra());
        let t16 = dev16.upload_texture_fmt(surf, TextureFormat::Rgba16F);
        assert_eq!(dev16.stats().bus_bytes.get(), 16 * 8, "half the traffic");
        assert_eq!(dev16.texture_format(t16), TextureFormat::Rgba16F);
        assert_eq!(
            dev16.texture(t16).get(0, 0),
            [1.0, 2.0, 3.0, 4.0],
            "grid values exact"
        );
        assert_eq!(
            dev16.texture(t16).get(1, 0)[0],
            1.0,
            "off-grid values quantize"
        );

        // Readback charges at the stored format too.
        let before = dev16.stats().bus_bytes.get();
        let _ = dev16.readback_texture(t16);
        assert_eq!(dev16.stats().bus_bytes.get() - before, 16 * 8);
    }

    #[test]
    fn update_texture_preserves_format() {
        let mut dev = Device::ideal();
        let id = dev.upload_texture_fmt(Surface::new(2, 2), TextureFormat::Rgba16F);
        let mut surf = Surface::new(2, 2);
        surf.set(0, 0, [1.0 + 2.0f32.powi(-13); 4]);
        dev.update_texture(id, surf);
        assert_eq!(dev.texture_format(id), TextureFormat::Rgba16F);
        assert_eq!(
            dev.texture(id).get(0, 0)[0],
            1.0,
            "re-upload still quantizes"
        );
    }

    #[test]
    fn occlusion_queries_count_passing_fragments() {
        let mut dev = Device::new(GpuCostModel::geforce_6800_ultra());
        let mut depth = DepthBuffer::new(4, 2, 0.0);
        for (i, v) in [0.1f32, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]
            .iter()
            .enumerate()
        {
            depth.set_flat(i, *v);
        }
        dev.load_depth(depth);
        // Fragments at depth 0.45 with LessEqual pass where 0.45 <= stored.
        assert_eq!(dev.occlusion_count(0.45, DepthFunc::LessEqual), 4);
        assert_eq!(dev.occlusion_count(0.45, DepthFunc::Greater), 4);
        assert_eq!(dev.occlusion_count(0.0, DepthFunc::Always), 8);
        assert_eq!(dev.occlusion_count(0.3, DepthFunc::Equal), 1);
        let s = dev.stats();
        assert_eq!(s.occlusion_queries, 4);
        assert_eq!(s.depth_fragments, 8 + 4 * 8);
        assert!(s.render_time.as_secs() > 0.0);
        assert!(
            s.transfer_time.as_secs() > 0.0,
            "query results cross the bus"
        );
    }

    #[test]
    #[should_panic(expected = "load_depth")]
    fn occlusion_without_depth_plane_panics() {
        let mut dev = Device::ideal();
        let _ = dev.occlusion_count(0.5, DepthFunc::Less);
    }

    #[test]
    fn empty_pass_is_free() {
        let mut dev = Device::new(GpuCostModel::geforce_6800_ultra());
        let tex = dev.upload_texture(Surface::new(2, 2));
        let before = dev.stats().passes;
        dev.draw_quads(tex, &[], BlendOp::Min);
        assert_eq!(dev.stats().passes, before);
    }
}
