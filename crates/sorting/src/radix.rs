//! Branchless host sorting of `f32` lanes in `total_cmp` order.
//!
//! The worker-pool backend (see [`crate::pool`]) needs the fastest sort the
//! host can offer per lane, while staying *byte-identical* to
//! `slice::sort_by(f32::total_cmp)` so every engine keeps producing the
//! same answers. IEEE 754's `totalOrder` admits a monotone bijection into
//! unsigned integers — flip the sign bit for non-negatives, flip every bit
//! for negatives — so a lane can be mapped to `u32` keys, sorted with an
//! LSD counting radix sort (no comparator calls, no branches on data), and
//! mapped back bit-for-bit.

/// Maps an `f32` to a `u32` key whose unsigned order equals
/// [`f32::total_cmp`] order (IEEE 754 `totalOrder`).
#[inline]
pub fn key_of(value: f32) -> u32 {
    let bits = value.to_bits();
    if bits >> 31 == 1 {
        !bits
    } else {
        bits ^ 0x8000_0000
    }
}

/// Inverse of [`key_of`]: recovers the exact original bit pattern.
#[inline]
pub fn value_of(key: u32) -> f32 {
    if key >> 31 == 1 {
        f32::from_bits(key ^ 0x8000_0000)
    } else {
        f32::from_bits(!key)
    }
}

/// Digit width of one counting pass. Eleven bits means three passes cover
/// all 32 key bits with a 2048-entry count table (8 KiB — L1-resident),
/// one histogram+scatter sweep cheaper than the classic four 8-bit passes.
const RADIX_BITS: u32 = 11;
const RADIX_BUCKETS: usize = 1 << RADIX_BITS;
const RADIX_MASK: u32 = (RADIX_BUCKETS as u32) - 1;

/// Sorts `keys` ascending with a 3-pass LSD counting radix sort over
/// 11-bit digits. Returns the number of scatter passes actually executed.
///
/// Passes whose digit is constant across the whole input are skipped — the
/// common case for streams of small integer-valued floats, where only a
/// couple of exponent/mantissa digits vary — so the return value is the
/// real per-lane work, not the nominal three.
pub fn radix_sort_u32(keys: &mut Vec<u32>) -> u32 {
    let n = keys.len();
    if n <= 1 {
        return 0;
    }
    let mut src = core::mem::take(keys);
    let mut dst = vec![0u32; n];
    let mut executed = 0;
    for pass in 0..32u32.div_ceil(RADIX_BITS) {
        let shift = pass * RADIX_BITS;
        let mut counts = [0usize; RADIX_BUCKETS];
        for &k in &src {
            counts[((k >> shift) & RADIX_MASK) as usize] += 1;
        }
        if counts.contains(&n) {
            continue; // every key shares this digit — the pass is a no-op
        }
        executed += 1;
        let mut running = 0usize;
        for c in counts.iter_mut() {
            let here = *c;
            *c = running;
            running += here;
        }
        for &k in &src {
            let digit = ((k >> shift) & RADIX_MASK) as usize;
            dst[counts[digit]] = k;
            counts[digit] += 1;
        }
        core::mem::swap(&mut src, &mut dst);
    }
    *keys = src;
    executed
}

/// Sorts `values` ascending in [`f32::total_cmp`] order, preserving every
/// bit pattern (including `-0.0` vs `0.0` and NaN payloads). Returns the
/// number of radix passes executed (see [`radix_sort_u32`]).
pub fn sort_total(values: &mut [f32]) -> u32 {
    if values.len() <= 1 {
        return 0;
    }
    let mut keys: Vec<u32> = values.iter().map(|&v| key_of(v)).collect();
    let passes = radix_sort_u32(&mut keys);
    for (v, &k) in values.iter_mut().zip(&keys) {
        *v = value_of(k);
    }
    passes
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    #[test]
    fn key_map_round_trips_all_bit_patterns() {
        for bits in [
            0u32,
            1,
            0x8000_0000,
            0x8000_0001,
            0x7f80_0000, // +inf
            0xff80_0000, // -inf
            0x7fc0_0001, // NaN with payload
            0xffc0_0001,
            0x3f80_0000,
        ] {
            let v = f32::from_bits(bits);
            assert_eq!(value_of(key_of(v)).to_bits(), bits, "bits={bits:08x}");
        }
    }

    #[test]
    fn key_order_matches_total_cmp() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20_000 {
            let a = f32::from_bits(rng.next_u32());
            let b = f32::from_bits(rng.next_u32());
            assert_eq!(
                key_of(a).cmp(&key_of(b)),
                a.total_cmp(&b),
                "a={:08x} b={:08x}",
                a.to_bits(),
                b.to_bits()
            );
        }
    }

    #[test]
    fn sorts_exactly_like_total_cmp() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [0usize, 1, 2, 3, 17, 255, 256, 1000, 4096] {
            let values: Vec<f32> = (0..n)
                .map(|_| {
                    if rng.random_range(0..10) == 0 {
                        // Exercise the special cases too.
                        [0.0f32, -0.0, f32::INFINITY, f32::NEG_INFINITY][rng.random_range(0..4)]
                    } else {
                        rng.random_range(-1.0e6..1.0e6)
                    }
                })
                .collect();
            let mut fast = values.clone();
            sort_total(&mut fast);
            let mut expect = values;
            expect.sort_by(f32::total_cmp);
            let fast_bits: Vec<u32> = fast.iter().map(|v| v.to_bits()).collect();
            let expect_bits: Vec<u32> = expect.iter().map(|v| v.to_bits()).collect();
            assert_eq!(fast_bits, expect_bits, "n={n}");
        }
    }

    #[test]
    fn constant_byte_passes_are_skipped_correctly() {
        // Small non-negative integers: three of four key bytes are constant.
        let mut v: Vec<f32> = (0..300).rev().map(|i| (i % 50) as f32).collect();
        let mut expect = v.clone();
        sort_total(&mut v);
        expect.sort_by(f32::total_cmp);
        assert_eq!(v, expect);
    }
}
