//! Cross-checks the observability layer against the pipelines' own
//! accounting: on every engine, the per-window `sim_*_ns` counters recorded
//! by `gsm-obs` must reconcile with the `OpLedger` breakdown the figures
//! are priced from, and a disabled recorder must leave sorted output
//! byte-identical to an uninstrumented run.

use gsm::core::{Engine, WindowedPipeline};
use gsm::obs::Recorder;
use gsm::sketch::{SinkOps, SummarySink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ENGINES: [Engine; 4] = [
    Engine::GpuSim,
    Engine::CpuSim,
    Engine::Host,
    Engine::ParallelHost,
];

/// Captures every sorted window bit-for-bit.
#[derive(Default)]
struct CaptureSink {
    windows: Vec<Vec<u32>>,
}

impl SummarySink for CaptureSink {
    fn push_sorted_window(&mut self, sorted: &[f32]) {
        self.windows
            .push(sorted.iter().map(|v| v.to_bits()).collect());
    }

    fn ops(&self) -> SinkOps {
        SinkOps::default()
    }
}

fn stream(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(0.0..65_536.0f32)).collect()
}

fn run(
    engine: Engine,
    data: &[f32],
    window: usize,
    rec: Option<Recorder>,
) -> WindowedPipeline<CaptureSink> {
    let mut p = WindowedPipeline::new(engine, window, CaptureSink::default());
    if let Some(rec) = rec {
        p = p.with_recorder(rec);
    }
    for &v in data {
        p.push(v);
    }
    p.flush();
    p
}

#[test]
fn counters_reconcile_with_the_op_ledger_on_every_engine() {
    let data = stream(6000, 11);
    let window = 512;
    for engine in ENGINES {
        let rec = Recorder::enabled();
        let p = run(engine, &data, window, Some(rec.clone()));
        let windows = p.windows_sorted();
        assert_eq!(
            rec.counter("windows_absorbed"),
            windows,
            "{engine:?}: every sorted window must be counted"
        );
        // Each span fires once per window (plus one ingest span covering
        // the final partial window).
        let sort_spans = rec.histogram("window_sort").expect("sort spans").count;
        assert!(
            sort_spans >= windows,
            "{engine:?}: {sort_spans} sort spans for {windows} windows"
        );
        assert_eq!(
            rec.histogram("window_absorb").expect("absorb spans").count,
            windows,
            "{engine:?}"
        );

        // The sim_*_ns counters are sums of per-absorption ledger deltas
        // rounded to whole nanoseconds: they must match the final ledger
        // totals to within one nanosecond per absorption plus float slack.
        let b = p.breakdown();
        let phases = [
            ("sim_sort_ns", b.sort),
            ("sim_transfer_ns", b.transfer),
            ("sim_merge_ns", b.merge),
            ("sim_compress_ns", b.compress),
        ];
        for (name, total) in phases {
            let total = total.as_secs();
            let counted = rec.counter(name) as f64 * 1e-9;
            let tolerance = 1e-9 * windows as f64 + 1e-6 * total.max(1e-3);
            assert!(
                (counted - total).abs() <= tolerance,
                "{engine:?}/{name}: ledger {total}s vs counters {counted}s"
            );
        }
    }
}

#[test]
fn disabled_recorder_leaves_every_engine_byte_identical() {
    let data = stream(4000, 7);
    let window = 256;
    for engine in ENGINES {
        let plain = run(engine, &data, window, None);
        let noop = run(engine, &data, window, Some(Recorder::disabled()));
        let live = run(engine, &data, window, Some(Recorder::enabled()));
        assert_eq!(
            plain.sink().windows,
            noop.sink().windows,
            "{engine:?}: a no-op recorder must not perturb sorted output"
        );
        assert_eq!(
            plain.sink().windows,
            live.sink().windows,
            "{engine:?}: an enabled recorder must not perturb sorted output"
        );
    }
}

#[test]
fn engines_agree_bit_for_bit_under_recording() {
    // The cross-engine guarantee (every backend produces the same sorted
    // windows) must survive instrumentation.
    let data = stream(3000, 3);
    let window = 128;
    let reference = run(Engine::Host, &data, window, Some(Recorder::enabled()));
    for engine in [Engine::GpuSim, Engine::CpuSim, Engine::ParallelHost] {
        let other = run(engine, &data, window, Some(Recorder::enabled()));
        assert_eq!(
            reference.sink().windows,
            other.sink().windows,
            "{engine:?} diverged from Host under recording"
        );
    }
}
