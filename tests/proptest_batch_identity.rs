//! Property-based scalar-vs-batch ingest identity.
//!
//! `StreamEngine::push_batch` contracts byte identity with the scalar
//! `push` loop no matter how the caller slices the stream. The verify
//! gate pins the canonical boundary-adversarial batch lengths; these
//! properties attack the contract with *arbitrary* batch partitions —
//! random chunk-length sequences that wander across window boundaries —
//! and extend the comparison to the durable artifacts on disk: the WAL
//! segment bytes and checkpoint files must be identical too.

use std::path::{Path, PathBuf};

use gsm::core::Engine;
use gsm::dsms::{BuildError, DurableOptions, EngineBuilder, QueryId, StreamEngine};
use gsm::durable::{CheckpointPolicy, FsyncPolicy};
use proptest::collection::vec;
use proptest::prelude::*;

/// A value pool small enough that heavy hitters exist.
fn id_value() -> impl Strategy<Value = f32> {
    (0u32..64).prop_map(|v| v as f32)
}

/// Sets up a two-query engine (quantile + frequency — window 1024).
fn build(engine: Engine, shards: usize, n: usize) -> (StreamEngine, QueryId, QueryId) {
    let mut eng = StreamEngine::new(engine)
        .with_n_hint(n as u64)
        .with_shards(shards);
    let q = eng.register_quantile(0.02);
    let f = eng.register_frequency(0.005);
    (eng, q, f)
}

/// Checkpoint JSON plus the bit-exact answers of both queries.
fn observe(mut eng: StreamEngine, q: QueryId, f: QueryId) -> (String, Vec<u32>, Vec<(u32, u64)>) {
    let cp = eng.checkpoint();
    let quantiles = [0.01, 0.25, 0.5, 0.75, 0.99]
        .iter()
        .map(|&phi| eng.quantile(q, phi).to_bits())
        .collect();
    let hh = eng
        .heavy_hitters(f, 0.02)
        .into_iter()
        .map(|(v, c)| (v.to_bits(), c))
        .collect();
    (cp, quantiles, hh)
}

/// Feeds `data` through `push_batch` sliced by cycling through `cuts`.
fn push_partitioned(eng: &mut StreamEngine, data: &[f32], cuts: &[usize]) {
    let mut rest = data;
    let mut i = 0;
    while !rest.is_empty() {
        let take = cuts[i % cuts.len()].min(rest.len());
        let (chunk, tail) = rest.split_at(take);
        eng.push_batch(chunk);
        rest = tail;
        i += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary batch partitions produce the same checkpoint envelope
    /// and bit-exact answers as the scalar loop, across shard counts and
    /// engines.
    #[test]
    fn batch_partition_is_byte_identical(
        data in vec(id_value(), 1..6000),
        cuts in vec(1usize..2500, 1..6),
        shards in (0usize..3).prop_map(|i| [1usize, 2, 4][i]),
        engine in (0usize..Engine::ALL.len()).prop_map(|i| Engine::ALL[i]),
    ) {
        let (mut scalar, q, f) = build(engine, shards, data.len());
        for &v in &data {
            scalar.push(v);
        }
        let reference = observe(scalar, q, f);

        let (mut batched, q, f) = build(engine, shards, data.len());
        push_partitioned(&mut batched, &data, &cuts);
        let result = observe(batched, q, f);
        prop_assert_eq!(reference, result);
    }
}

/// Every file under `dir`, as (relative path, bytes), sorted by path.
fn dir_bytes(dir: &Path) -> Vec<(PathBuf, Vec<u8>)> {
    fn walk(root: &Path, dir: &Path, out: &mut Vec<(PathBuf, Vec<u8>)>) {
        for entry in std::fs::read_dir(dir).expect("read durable dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path.strip_prefix(root).expect("under root").to_path_buf();
                out.push((rel, std::fs::read(&path).expect("read durable file")));
            }
        }
    }
    let mut out = Vec::new();
    walk(dir, dir, &mut out);
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn durable_opts(dir: &Path) -> DurableOptions {
    DurableOptions::new(dir)
        .fsync(FsyncPolicy::Off)
        .checkpoint(CheckpointPolicy::EveryWindows(2))
        .records_per_segment(3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// With durability attached, arbitrary batch partitions leave the WAL
    /// segments and checkpoint files on disk byte-identical to the scalar
    /// loop's — same records, same sequence numbers, same truncations.
    #[test]
    fn durable_batch_partition_writes_identical_wal_bytes(
        data in vec(id_value(), 1..5000),
        cuts in vec(1usize..2500, 1..5),
    ) {
        let base = std::env::temp_dir().join(format!(
            "gsm-batch-prop-{}-{}",
            std::process::id(),
            data.len()
        ));
        let scalar_dir = base.join("scalar");
        let batch_dir = base.join("batch");
        let _ = std::fs::remove_dir_all(&base);

        let mut scalar = StreamEngine::new(Engine::Host)
            .with_n_hint(data.len() as u64)
            .with_durability(durable_opts(&scalar_dir))
            .expect("fresh scalar dir");
        scalar.register_quantile(0.02);
        for &v in &data {
            scalar.push(v);
        }
        let scalar_cp = scalar.checkpoint();
        drop(scalar);

        let mut batched = StreamEngine::new(Engine::Host)
            .with_n_hint(data.len() as u64)
            .with_durability(durable_opts(&batch_dir))
            .expect("fresh batch dir");
        batched.register_quantile(0.02);
        push_partitioned(&mut batched, &data, &cuts);
        let batched_cp = batched.checkpoint();
        drop(batched);

        prop_assert_eq!(scalar_cp, batched_cp);
        let scalar_files = dir_bytes(&scalar_dir);
        let batch_files = dir_bytes(&batch_dir);
        let scalar_names: Vec<_> = scalar_files.iter().map(|(p, _)| p.clone()).collect();
        let batch_names: Vec<_> = batch_files.iter().map(|(p, _)| p.clone()).collect();
        prop_assert_eq!(scalar_names, batch_names);
        for ((path, a), (_, b)) in scalar_files.iter().zip(batch_files.iter()) {
            prop_assert_eq!(a, b, "durable file {} diverged", path.display());
        }
        let _ = std::fs::remove_dir_all(&base);
    }
}

/// The builder rejects misuse with typed errors instead of panicking
/// mid-chain, and surfaces durability I/O failures the same way.
#[test]
fn builder_rejects_misuse_with_typed_errors() {
    assert!(matches!(
        EngineBuilder::new(Engine::Host).shards(0).build(),
        Err(BuildError::ZeroShards)
    ));
    assert!(matches!(
        EngineBuilder::new(Engine::Host).publish_every(0).build(),
        Err(BuildError::ZeroPublishCadence)
    ));
    // Both problems present: the first validation failure wins, and no
    // durable directory is created as a side effect of the failed build.
    let dir = std::env::temp_dir().join(format!("gsm-builder-misuse-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let err = EngineBuilder::new(Engine::Host)
        .shards(0)
        .durability(DurableOptions::new(&dir))
        .build();
    assert!(matches!(err, Err(BuildError::ZeroShards)));
    assert!(!dir.exists(), "failed build must not touch the filesystem");
}
