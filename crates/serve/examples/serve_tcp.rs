//! A runnable serving demo: ingest a synthetic stream while exposing the
//! query frontend over TCP.
//!
//! ```text
//! cargo run --release -p gsm-serve --example serve_tcp -- [addr] [elements]
//! ```
//!
//! Defaults to `127.0.0.1:7878` and 1,048,576 elements. While it runs
//! (and after ingestion finishes, until Enter is pressed), talk to it with
//! `nc`:
//!
//! ```text
//! $ nc 127.0.0.1 7878
//! quantile 0 0.5
//! answer 17 quantile 32741
//! hh 1 0.009
//! answer 17 hh 16 3:13107 7:13102 ...
//! epoch
//! epoch 17
//! ```
//!
//! Query indices: 0 = quantile (ε=0.01), 1 = frequency (ε=0.001),
//! 2 = sliding quantile (ε=0.05, width 65536).

use gsm_core::Engine;
use gsm_dsms::StreamEngine;
use gsm_serve::{QueryServer, ServeConfig, TcpFront};

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let elements: u64 = args
        .next()
        .map(|s| s.parse().expect("elements must be an integer"))
        .unwrap_or(1 << 20);

    let mut eng = StreamEngine::new(Engine::ParallelHost)
        .with_n_hint(elements)
        .with_shards(2)
        .with_publish_every(4);
    let q = eng.register_quantile(0.01);
    let f = eng.register_frequency(0.001);
    let sq = eng.register_sliding_quantile(0.05, 1 << 16);

    let server = QueryServer::start(eng.serve(), ServeConfig::default());
    let front = TcpFront::bind(server.client(), &addr).expect("bind TCP front");
    println!(
        "serving on {} (queries: {}=quantile {}=frequency {}=sliding-quantile)",
        front.local_addr(),
        q.index(),
        f.index(),
        sq.index()
    );

    // Ingest on this thread while the server answers concurrently; a
    // value mix of 20% hot keys over a wide uniform range gives both
    // query families something to find.
    println!("ingesting {elements} elements ...");
    let mut state = 0x9e3779b97f4a7c15u64;
    for _ in 0..elements {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let v = if state % 5 == 0 {
            (state >> 32) % 16
        } else {
            (state >> 32) % 65_536
        };
        eng.push(v as f32);
    }
    eng.flush();
    eng.publish_now();
    println!(
        "ingestion done: {} elements, epoch {} — press Enter to stop",
        eng.count(),
        server.registry().epoch()
    );
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
    drop(front);
    let stats = server.stats();
    drop(server);
    println!(
        "served {} requests ({} answered, {} shed, {} expired, {} lost)",
        stats.submitted,
        stats.answered,
        stats.overloaded,
        stats.expired,
        stats.lost()
    );
}
