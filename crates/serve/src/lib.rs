#![warn(missing_docs)]

//! Concurrent query serving over the gsm DSMS — the frontend half of the
//! paper's system story.
//!
//! The paper's DSMS answers quantile/frequency queries *while* the stream
//! is being ingested and sorted on the co-processor (§1, §6); PR 5 made
//! ingestion shard-parallel but queries still ran on the caller's thread,
//! serializing every reader behind the writer. This crate closes that gap
//! with a reader/writer split built on **snapshot isolation**:
//!
//! * the engine publishes immutable [`gsm_dsms::EngineSnapshot`]s into a
//!   [`gsm_dsms::SnapshotRegistry`] as windows seal (see
//!   `StreamEngine::serve`), and
//! * a [`QueryServer`] answers queries against the latest snapshot from a
//!   fixed pool of worker threads, behind a **bounded queue** with
//!   admission control: when the queue is full a request is shed
//!   immediately with a structured [`Reply::Overloaded`] (never silently
//!   dropped, never blocking the caller), and a request that waits past
//!   its deadline is answered [`Reply::Expired`] instead of executing
//!   stale.
//!
//! Readers never take the ingest lock; ingestion never waits for readers.
//! The only shared point is the registry's epoch-pointer swap, held for
//! two pointer moves.
//!
//! Two access paths are provided: an in-process [`Client`] handle
//! (cloneable, thread-safe), and a line-delimited TCP front ([`TcpFront`])
//! for out-of-process consumers — both funnel into the same admission
//! queue and reply with the same structured vocabulary, so saturation
//! behavior is identical no matter where the request came from.
//!
//! Alongside the query plane sits a telemetry plane: an [`AdminServer`]
//! answering `GET /metrics` (Prometheus text from the live recorder),
//! `/healthz`, and `/status` (JSON: epoch, shards, queue depth, shed and
//! ring counters, SLO verdicts) over std-only HTTP/1.0 on its own
//! listener, and every request carries a [`gsm_obs::TraceCtx`] whose id
//! is echoed in replies and links the request's spans in
//! `chrome_trace_json`.
//!
//! Everything is std-only, matching the workspace's vendored-shims policy.

pub mod admin;
pub mod net;
pub mod server;

pub use admin::{AdminServer, AdminSources};
pub use net::TcpFront;
pub use server::{Client, QueryServer, Reply, Request, ServeConfig, ServerStats};
