//! The GK04 sensor-network quantile summary the paper builds on (§5.2).
//!
//! *"Each node in the tree initially computes an ε′-approximate quantile
//! summary by sorting its set of observations S locally, and choosing the
//! elements of rank 1, ⌈ε′S⌉, … , S. The summary structure also maintains
//! the minimum rank and maximum rank for each element. … At the parent node,
//! a merge operation is performed on these summaries … Finally, the node
//! performs a compress operation to compute a new summary structure with
//! B+1 elements."*
//!
//! A [`WindowSummary`] is a sorted sequence of [`QuantileEntry`] tuples with
//! the invariant that each entry's true rank in the summarized multiset lies
//! in `[rmin, rmax]`, plus a tracked error bound `eps`: any rank query errs
//! by at most `eps · count` ranks.
//!
//! * [`WindowSummary::merge`] combines two summaries over disjoint
//!   multisets; the result's error is `max(ε_a, ε_b)` (GK04, Lemma 1).
//! * [`WindowSummary::prune`] reduces a summary to `B+1` entries, adding
//!   `1/(2B)` to the error (GK04, Lemma 2).

use crate::histogram::sample_sorted;
use crate::summary::{OpCounter, QuantileEntry};

/// An ε-approximate quantile summary of a fixed multiset.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct WindowSummary {
    entries: Vec<QuantileEntry>,
    count: u64,
    eps: f64,
}

impl WindowSummary {
    /// Builds a summary of a sorted window by rank sampling at stride
    /// `⌈eps·S⌉` (histogram step 1 of §3.2). The entries carry exact ranks.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or `eps ∉ (0, 1]`.
    pub fn from_sorted(sorted: &[f32], eps: f64) -> Self {
        let entries = sample_sorted(sorted, eps);
        WindowSummary {
            entries,
            count: sorted.len() as u64,
            eps,
        }
    }

    /// Builds a summary directly from entries (used by tests and the
    /// sliding-window layer).
    ///
    /// # Panics
    ///
    /// Panics if entries are empty, unsorted, or rank-inconsistent.
    pub fn from_entries(entries: Vec<QuantileEntry>, count: u64, eps: f64) -> Self {
        assert!(!entries.is_empty(), "summary needs at least one entry");
        assert!(
            entries
                .windows(2)
                .all(|w| w[0].value <= w[1].value && w[0].rmin <= w[1].rmin),
            "entries must be sorted by value with non-decreasing ranks"
        );
        assert!(entries
            .iter()
            .all(|e| e.rmin >= 1 && e.rmax <= count && e.rmin <= e.rmax));
        WindowSummary {
            entries,
            count,
            eps,
        }
    }

    /// Number of summarized elements.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The tracked error bound: rank queries err by ≤ `eps() · count()`.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The stored entries (memory footprint = `entries().len()`).
    pub fn entries(&self) -> &[QuantileEntry] {
        &self.entries
    }

    /// Merges two summaries over disjoint multisets (GK04 merge).
    ///
    /// For an entry `x` from `A`: with `pred`/`succ` the neighbouring
    /// entries of `B` by value,
    /// `rmin′(x) = rmin_A(x) + rmin_B(pred)` (0 if none) and
    /// `rmax′(x) = rmax_A(x) + rmax_B(succ) − 1` (or `+ count_B` if none).
    /// The merged error is `max(ε_A, ε_B)`; `ops` counts the comparisons
    /// and tuple moves for the Figure 6 cost split.
    pub fn merge(a: &WindowSummary, b: &WindowSummary, ops: &mut OpCounter) -> WindowSummary {
        let mut entries = Vec::with_capacity(a.entries.len() + b.entries.len());
        // Standard two-pointer merge by value; each output entry computes
        // its rank bounds against the *other* summary.
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.entries.len() || j < b.entries.len() {
            let take_a = match (a.entries.get(i), b.entries.get(j)) {
                (Some(ea), Some(eb)) => {
                    ops.comparisons += 1;
                    ea.value <= eb.value
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!("loop condition"),
            };
            let merged = if take_a {
                let e = a.entries[i];
                i += 1;
                combine_entry(e, b, j)
            } else {
                let e = b.entries[j];
                j += 1;
                combine_entry(e, a, i)
            };
            ops.moves += 1;
            entries.push(merged);
        }
        WindowSummary {
            entries,
            count: a.count + b.count,
            eps: a.eps.max(b.eps),
        }
    }

    /// Prunes the summary to at most `b + 1` entries by querying ranks
    /// `⌈k·count/b⌉` for `k = 0..=b` (GK04 compress). Adds `1/(2b)` error.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn prune(&self, b: usize, ops: &mut OpCounter) -> WindowSummary {
        assert!(b > 0, "prune target must be positive");
        let mut entries: Vec<QuantileEntry> = Vec::with_capacity(b + 1);
        for k in 0..=b {
            let r = ((k as f64 / b as f64) * self.count as f64).ceil().max(1.0) as u64;
            let e = self.lookup_rank(r);
            ops.comparisons += (self.entries.len().max(1)).ilog2() as u64 + 1;
            // Skip only exact repeats. Entries sharing a *value* but with
            // different ranks must all survive: on duplicate-heavy data one
            // value can span a huge rank range, and collapsing it to a
            // single entry would orphan every rank inside the run.
            let repeat = entries.last().is_some_and(|l: &QuantileEntry| {
                l.value == e.value && l.rmin == e.rmin && l.rmax == e.rmax
            });
            if !repeat {
                entries.push(e);
                ops.moves += 1;
            }
        }
        WindowSummary {
            entries,
            count: self.count,
            eps: self.eps + 1.0 / (2.0 * b as f64),
        }
    }

    /// The entry best covering rank `r`: the one whose `[rmin, rmax]`
    /// interval is closest to `r`.
    fn lookup_rank(&self, r: u64) -> QuantileEntry {
        // First entry with rmin >= r.
        let pos = self.entries.partition_point(|e| e.rmin < r);
        let candidates = [pos.checked_sub(1), Some(pos)];
        let mut best: Option<(u64, QuantileEntry)> = None;
        for c in candidates.into_iter().flatten() {
            if let Some(&e) = self.entries.get(c) {
                let dist = if r > e.rmax {
                    r - e.rmax
                } else {
                    e.rmin.saturating_sub(r)
                };
                if best.map(|(bd, _)| dist < bd).unwrap_or(true) {
                    best = Some((dist, e));
                }
            }
        }
        best.expect("summary is non-empty").1
    }

    /// Answers a φ-quantile query: a value whose rank is within
    /// `eps() · count()` of `⌈φ · count⌉`.
    pub fn query(&self, phi: f64) -> f32 {
        let r = ((phi * self.count as f64).ceil() as u64).clamp(1, self.count);
        self.lookup_rank(r).value
    }
}

/// Recomputes entry `e` (from one summary) against the other summary `other`
/// where `j` is the index of the first entry of `other` with value > `e`
/// at merge time (entries before `j` are ≤ `e`).
fn combine_entry(e: QuantileEntry, other: &WindowSummary, j: usize) -> QuantileEntry {
    let rmin = if j > 0 {
        e.rmin + other.entries[j - 1].rmin
    } else {
        e.rmin
    };
    let rmax = if j < other.entries.len() {
        e.rmax + other.entries[j].rmax - 1
    } else {
        e.rmax + other.count
    };
    QuantileEntry {
        value: e.value,
        rmin,
        rmax,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactStats;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sorted_random(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v: Vec<f32> = (0..n).map(|_| rng.random_range(0.0..1000.0)).collect();
        v.sort_by(f32::total_cmp);
        v
    }

    fn assert_queries_within(summary: &WindowSummary, data: &[f32], slack: f64) {
        let oracle = ExactStats::new(data);
        for phi in [0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0] {
            let ans = summary.query(phi);
            let err = oracle.quantile_rank_error(phi, ans);
            assert!(
                err <= summary.eps() + slack,
                "phi={phi} err={err} claimed eps={}",
                summary.eps()
            );
        }
    }

    #[test]
    fn from_sorted_queries_within_eps() {
        for n in [10usize, 100, 1000, 4096] {
            let data = sorted_random(n, n as u64);
            for eps in [0.5, 0.1, 0.01] {
                let s = WindowSummary::from_sorted(&data, eps);
                assert_queries_within(&s, &data, 1.0 / n as f64);
            }
        }
    }

    #[test]
    fn merge_preserves_rank_brackets() {
        let a_data = sorted_random(500, 1);
        let b_data = sorted_random(700, 2);
        let a = WindowSummary::from_sorted(&a_data, 0.05);
        let b = WindowSummary::from_sorted(&b_data, 0.05);
        let mut ops = OpCounter::default();
        let m = WindowSummary::merge(&a, &b, &mut ops);
        assert_eq!(m.count(), 1200);
        assert!(ops.total() > 0);

        // Every merged entry's [rmin, rmax] must contain a true rank of its
        // value in the combined multiset.
        let mut all: Vec<f32> = a_data.iter().chain(&b_data).copied().collect();
        all.sort_by(f32::total_cmp);
        let oracle = ExactStats::new(&all);
        for e in m.entries() {
            let (lo, hi) = oracle.rank_range(e.value);
            let (lo, hi) = if hi < lo { (lo, lo) } else { (lo, hi) };
            assert!(
                e.rmin <= hi && e.rmax >= lo,
                "entry {e:?} does not bracket true ranks [{lo}, {hi}]"
            );
        }
        // Rank bounds must be monotone and within the total count.
        assert!(m.entries().windows(2).all(|w| w[0].rmin <= w[1].rmin));
        assert!(m.entries().iter().all(|e| e.rmax <= m.count()));
    }

    #[test]
    fn merged_queries_within_max_eps() {
        let a_data = sorted_random(2000, 3);
        let b_data = sorted_random(1000, 4);
        let a = WindowSummary::from_sorted(&a_data, 0.02);
        let b = WindowSummary::from_sorted(&b_data, 0.05);
        let mut ops = OpCounter::default();
        let m = WindowSummary::merge(&a, &b, &mut ops);
        assert!((m.eps() - 0.05).abs() < 1e-12);
        let all: Vec<f32> = a_data.iter().chain(&b_data).copied().collect();
        assert_queries_within(&m, &all, 2.0 / all.len() as f64);
    }

    #[test]
    fn repeated_merges_stay_within_eps() {
        // Merge 8 windows pairwise (a full binary tree, like the sensor
        // hierarchy): error must remain max of the parts.
        let mut ops = OpCounter::default();
        let mut all: Vec<f32> = Vec::new();
        let mut summaries: Vec<WindowSummary> = (0..8)
            .map(|k| {
                let d = sorted_random(512, 10 + k);
                all.extend_from_slice(&d);
                WindowSummary::from_sorted(&d, 0.02)
            })
            .collect();
        while summaries.len() > 1 {
            summaries = summaries
                .chunks(2)
                .map(|pair| WindowSummary::merge(&pair[0], &pair[1], &mut ops))
                .collect();
        }
        let m = &summaries[0];
        assert_eq!(m.count(), 8 * 512);
        assert_queries_within(m, &all, 2.0 / all.len() as f64);
    }

    #[test]
    fn prune_shrinks_and_adds_bounded_error() {
        let data = sorted_random(4096, 20);
        let s = WindowSummary::from_sorted(&data, 0.005);
        let mut ops = OpCounter::default();
        let b = 50;
        let p = s.prune(b, &mut ops);
        assert!(p.entries().len() <= b + 1, "{} entries", p.entries().len());
        assert!((p.eps() - (0.005 + 0.01)).abs() < 1e-12);
        assert_queries_within(&p, &data, 2.0 / data.len() as f64);
    }

    #[test]
    fn merge_then_prune_pipeline() {
        // The paper's §5.2 combine operation: merge two summaries, prune to
        // B+1 with the next level's error budget.
        let a_data = sorted_random(1024, 30);
        let b_data = sorted_random(1024, 31);
        let mut ops = OpCounter::default();
        let a = WindowSummary::from_sorted(&a_data, 0.01);
        let b = WindowSummary::from_sorted(&b_data, 0.01);
        let combined = WindowSummary::merge(&a, &b, &mut ops).prune(100, &mut ops);
        let all: Vec<f32> = a_data.iter().chain(&b_data).copied().collect();
        assert_queries_within(&combined, &all, 2.0 / all.len() as f64);
        assert!(combined.entries().len() <= 101);
    }

    #[test]
    fn extreme_queries_hit_min_max() {
        let data = sorted_random(777, 40);
        let s = WindowSummary::from_sorted(&data, 0.1);
        assert_eq!(s.query(0.0), data[0]);
        assert_eq!(s.query(1.0), *data.last().unwrap());
    }

    #[test]
    fn single_value_window() {
        let s = WindowSummary::from_sorted(&[3.5], 0.1);
        assert_eq!(s.query(0.5), 3.5);
        assert_eq!(s.count(), 1);
    }
}
