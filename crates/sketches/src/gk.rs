//! The classic per-element Greenwald–Khanna quantile summary (GK01) — the
//! "single element-based" insertion baseline of paper §3.2.
//!
//! Maintains a sorted list of tuples `(v, g, Δ)` where `g` is the number of
//! ranks covered since the previous tuple and `Δ` bounds the extra rank
//! uncertainty. The invariant `g + Δ ≤ 2εn` guarantees that any quantile
//! query can be answered within `εn` ranks.
//!
//! This implementation uses the simple (band-free) compress rule: it
//! preserves the correctness invariant exactly and the `O((1/ε)·log(εN))`
//! space bound empirically, at a small constant factor over the full
//! banding scheme — a common engineering simplification.

use crate::summary::OpCounter;

#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
struct Tuple {
    value: f32,
    /// Rank mass: rmin(i) = Σ_{j ≤ i} g_j.
    g: u64,
    /// Rank uncertainty: rmax(i) = rmin(i) + Δ_i.
    delta: u64,
}

/// A streaming ε-approximate quantile summary with per-element insertion.
///
/// ```
/// use gsm_sketch::GkSummary;
///
/// let mut gk = GkSummary::new(0.05);
/// for i in 0..1000 {
///     gk.insert((i % 97) as f32);
/// }
/// let median = gk.query(0.5);
/// assert!((40.0..=56.0).contains(&median));
/// assert!(gk.tuple_count() < 200, "bounded memory");
/// ```
#[derive(serde::Serialize, serde::Deserialize)]
pub struct GkSummary {
    eps: f64,
    n: u64,
    tuples: Vec<Tuple>,
    since_compress: u64,
    ops: OpCounter,
}

impl GkSummary {
    /// Creates an empty summary with target error `eps`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1), got {eps}");
        GkSummary {
            eps,
            n: 0,
            tuples: Vec::new(),
            since_compress: 0,
            ops: OpCounter::default(),
        }
    }

    /// Number of stream elements summarized.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Number of stored tuples (the memory footprint).
    pub fn tuple_count(&self) -> usize {
        self.tuples.len()
    }

    /// The target error bound.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Operation counters accumulated by inserts/compresses.
    pub fn ops(&self) -> OpCounter {
        self.ops
    }

    /// Inserts one stream element.
    pub fn insert(&mut self, value: f32) {
        debug_assert!(!value.is_nan(), "summaries are NaN-free");
        self.n += 1;
        let threshold = (2.0 * self.eps * self.n as f64).floor() as u64;

        // Find the first tuple with a strictly larger value.
        let pos = self.tuples.partition_point(|t| t.value <= value);
        self.ops.comparisons += (self.tuples.len().max(1)).ilog2() as u64 + 1;

        let delta = if pos == 0 || pos == self.tuples.len() {
            // New minimum or maximum: its rank is known exactly.
            0
        } else {
            threshold.saturating_sub(1)
        };
        self.tuples.insert(pos, Tuple { value, g: 1, delta });
        // A sorted-array insert shifts the tail: this is the per-element
        // cost §3.2's window-based algorithms exist to avoid.
        self.ops.moves += (self.tuples.len() - pos) as u64;

        self.since_compress += 1;
        if self.since_compress as f64 >= 1.0 / (2.0 * self.eps) {
            self.compress();
            self.since_compress = 0;
        }
    }

    /// Merges adjacent tuples whose combined mass fits under the `2εn`
    /// invariant, shrinking the summary.
    pub fn compress(&mut self) {
        let threshold = (2.0 * self.eps * self.n as f64).floor() as u64;
        let mut i = self.tuples.len().saturating_sub(1);
        while i >= 2 {
            let prev = self.tuples[i - 1];
            let cur = self.tuples[i];
            self.ops.comparisons += 1;
            // Never absorb the minimum (index 0) and keep the maximum intact.
            if prev.g + cur.g + cur.delta <= threshold {
                self.tuples[i].g += prev.g;
                self.tuples.remove(i - 1);
                self.ops.moves += (self.tuples.len() + 1 - i) as u64;
            }
            i -= 1;
        }
    }

    /// Answers a φ-quantile query (`φ ∈ [0, 1]`).
    ///
    /// Returns a value whose rank is within `εn` of `⌈φn⌉`.
    ///
    /// # Panics
    ///
    /// Panics if the summary is empty.
    pub fn query(&self, phi: f64) -> f32 {
        assert!(self.n > 0, "cannot query an empty summary");
        let r = ((phi * self.n as f64).ceil() as u64).clamp(1, self.n) as f64;
        let allowance = self.eps * self.n as f64;

        // Classic GK rule: return the predecessor of the first tuple whose
        // rmax exceeds r + εn. The g + Δ ≤ 2εn invariant then bounds the
        // predecessor's rank distance from r by εn.
        let mut rmin = 0u64;
        let mut prev = self.tuples[0].value;
        for t in &self.tuples {
            rmin += t.g;
            let rmax = (rmin + t.delta) as f64;
            if rmax > r + allowance {
                return prev;
            }
            prev = t.value;
        }
        prev
    }

    /// The `g + Δ ≤ 2εn` invariant — exposed for property tests.
    pub fn check_invariant(&self) -> bool {
        let threshold = ((2.0 * self.eps * self.n as f64).floor() as u64).max(1);
        // Total rank mass must equal n.
        let total: u64 = self.tuples.iter().map(|t| t.g).sum();
        total == self.n && self.tuples.iter().all(|t| t.g + t.delta <= threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactStats;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_all_quantiles(data: &[f32], eps: f64) {
        let mut gk = GkSummary::new(eps);
        for &v in data {
            gk.insert(v);
        }
        assert!(
            gk.check_invariant(),
            "invariant violated (eps={eps}, n={})",
            data.len()
        );
        let oracle = ExactStats::new(data);
        for phi in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let ans = gk.query(phi);
            let err = oracle.quantile_rank_error(phi, ans);
            assert!(
                err <= eps + 1e-9,
                "phi={phi} err={err} eps={eps} n={}",
                data.len()
            );
        }
    }

    #[test]
    fn uniform_random_within_eps() {
        let mut rng = StdRng::seed_from_u64(17);
        let data: Vec<f32> = (0..20_000).map(|_| rng.random_range(0.0..1.0)).collect();
        for eps in [0.1, 0.02, 0.005] {
            check_all_quantiles(&data, eps);
        }
    }

    #[test]
    fn sorted_and_reversed_within_eps() {
        let asc: Vec<f32> = (0..5000).map(|i| i as f32).collect();
        let desc: Vec<f32> = (0..5000).rev().map(|i| i as f32).collect();
        check_all_quantiles(&asc, 0.01);
        check_all_quantiles(&desc, 0.01);
    }

    #[test]
    fn heavy_duplicates_within_eps() {
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<f32> = (0..10_000).map(|_| rng.random_range(0..5) as f32).collect();
        check_all_quantiles(&data, 0.02);
    }

    #[test]
    fn space_is_sublinear() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut gk = GkSummary::new(0.01);
        for _ in 0..200_000 {
            gk.insert(rng.random_range(0.0..1.0));
        }
        // O((1/ε) log(εN)) ≈ 100 × log2(2000) ≈ 1100; allow generous slack.
        assert!(
            gk.tuple_count() < 4000,
            "summary kept {} tuples for 200k elements",
            gk.tuple_count()
        );
    }

    #[test]
    fn extremes_are_exact() {
        let mut rng = StdRng::seed_from_u64(8);
        let data: Vec<f32> = (0..5000).map(|_| rng.random_range(0.0..100.0)).collect();
        let mut gk = GkSummary::new(0.05);
        for &v in &data {
            gk.insert(v);
        }
        let min = data.iter().copied().fold(f32::INFINITY, f32::min);
        let max = data.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(gk.query(0.0), min);
        assert_eq!(gk.query(1.0), max);
    }

    #[test]
    fn single_element() {
        let mut gk = GkSummary::new(0.1);
        gk.insert(42.0);
        assert_eq!(gk.query(0.5), 42.0);
        assert_eq!(gk.count(), 1);
    }

    #[test]
    fn ops_counter_grows() {
        let mut gk = GkSummary::new(0.1);
        for i in 0..100 {
            gk.insert(i as f32);
        }
        assert!(gk.ops().total() > 100);
    }
}
