//! **§5.3 (reconstructed) — sliding windows.** The supplied scan of the
//! paper truncates inside §5.3; this experiment follows its setup sentence
//! ("we have applied our deterministic frequency and quantile estimation
//! algorithms for performing ε-approximate queries over sliding windows …
//! fixed or variable-sized width") and the algorithms it builds on
//! (exponential histograms \[13\], GK \[21\], MM \[32\]).
//!
//! Part A — **fixed-width** sliding window: quantiles and frequencies over
//! the most recent `W` elements, ε sweep, GPU vs CPU block sorting, with
//! observed error against an exact oracle on the final window.
//!
//! Part B — **variable-width** (time-based) windows on bursty arrivals:
//! per-window ε-approximate quantile summaries; window populations vary
//! ~10×, and the GPU's advantage tracks the window size.
//!
//! ```text
//! cargo run --release -p gsm-bench --bin fig8_sliding [-- --n 2097152 --width 524288 --csv]
//! ```

use gsm_bench::{human_n, Args, Table};
use gsm_core::{Engine, SlidingFrequencyEstimator, SlidingQuantileEstimator};

use gsm_cpu::{CpuCostModel, Machine};
use gsm_sketch::exact::ExactStats;
use gsm_sketch::WindowSummary;
use gsm_sort::channels::GpuBatchSorter;
use gsm_stream::{BurstyGen, Timestamped, UniformGen, VariableWindows};

fn main() {
    let args = Args::parse();
    let csv = args.flag("csv");
    let n: usize = args.get_num("n", 2 << 20);
    let width: usize = args.get_num("width", (n / 4).max(1 << 16));

    fixed_width(n, width, csv);
    println!();
    variable_width(csv);
}

fn fixed_width(n: usize, width: usize, csv: bool) {
    println!(
        "# Part A: fixed sliding window of {} over a {} stream (simulated ms)\n",
        human_n(width),
        human_n(n)
    );
    let data: Vec<f32> = UniformGen::unit(7).take(n).collect();
    let oracle = ExactStats::new(&data[n - width..]);

    let mut table = Table::new([
        "eps",
        "kind",
        "block",
        "GPU total ms",
        "CPU total ms",
        "GPU/CPU",
        "worst err (bound eps)",
    ]);

    for eps in [0.02f64, 0.01, 0.005, 0.002] {
        // Quantiles. Block size = ⌈εW/2⌉ (gsm-sketch's sliding layout).
        let q_block = ((eps * width as f64) / 2.0).ceil() as usize;
        let mut times = Vec::new();
        let mut worst = 0.0f64;
        for engine in [Engine::GpuSim, Engine::CpuSim] {
            let mut est = SlidingQuantileEstimator::new(eps, width, engine);
            est.push_all(data.iter().copied());
            est.flush();
            // Record ingest time before the error probes: query-time summary
            // merging is not part of the per-element cost being compared.
            times.push(est.total_time());
            if engine == Engine::GpuSim {
                for phi in [0.1, 0.5, 0.9] {
                    worst = worst.max(oracle.quantile_rank_error(phi, est.query(phi)));
                }
            }
        }
        table.row([
            format!("{eps}"),
            "quantile".into(),
            human_n(q_block),
            format!("{:.3}", times[0].as_millis()),
            format!("{:.3}", times[1].as_millis()),
            format!("{:.2}", times[0].as_secs() / times[1].as_secs()),
            format!("{worst:.6}"),
        ]);

        // Frequencies. Block size = ⌈εW/4⌉; the f16 quantization of the
        // uniform stream gives every grid value enough duplicates for
        // frequency queries to be meaningful.
        let f_block = ((eps * width as f64) / 4.0).ceil() as usize;
        let mut ftimes = Vec::new();
        let mut ferr = 0.0f64;
        for engine in [Engine::GpuSim, Engine::CpuSim] {
            let mut est = SlidingFrequencyEstimator::new(eps, width, engine);
            est.push_all(data.iter().copied());
            est.flush();
            ftimes.push(est.total_time());
            if engine == Engine::GpuSim {
                // Probe a few grid values for frequency error.
                for probe in [0.25f32, 0.5, 0.75] {
                    let v = gsm_stream::F16::from_f32(probe).to_f32();
                    let e = est.estimate(v) as f64;
                    let t = oracle.frequency(v) as f64;
                    ferr = ferr.max((e - t).abs() / width as f64);
                }
            }
        }
        table.row([
            format!("{eps}"),
            "frequency".into(),
            human_n(f_block),
            format!("{:.3}", ftimes[0].as_millis()),
            format!("{:.3}", ftimes[1].as_millis()),
            format!("{:.2}", ftimes[0].as_secs() / ftimes[1].as_secs()),
            format!("{ferr:.6}"),
        ]);
    }
    table.print(csv);
    println!("\n# every observed error is below its eps; segmented batching keeps the GPU within ~15% of");
    println!("# the CPU even though sliding blocks are tiny (plain 4-window batching would be 2-20x slower).");
}

fn variable_width(csv: bool) {
    println!("# Part B: variable-width (time-based) windows on bursty arrivals");
    println!("# one eps-approximate quantile summary per window; eps = 0.01\n");
    let eps = 0.01;
    let events: Vec<Timestamped> = BurstyGen::new(3, 50_000.0, 20.0).take(400_000).collect();
    let windows: Vec<Vec<Timestamped>> = VariableWindows::new(events.into_iter(), 0.25).collect();

    let mut gpu = GpuBatchSorter::testbed();
    let mut cpu = Machine::new(CpuCostModel::pentium4_3400());
    let mut sizes: Vec<usize> = Vec::new();
    let mut worst_err = 0.0f64;

    for w in &windows {
        let values: Vec<f32> = w.iter().map(|e| e.value).collect();
        sizes.push(values.len());
        // GPU path: sort + sample the window summary.
        let sorted = gpu.sort(&values);
        let summary = WindowSummary::from_sorted(&sorted, eps);
        // CPU path: the same work via instrumented quicksort.
        let mut copy = values.clone();
        gsm_sort::cpu::quicksort(&mut copy, &mut cpu, 0x100_0000);
        // Accuracy of the per-window summary.
        let oracle = ExactStats::new(&values);
        for phi in [0.1, 0.5, 0.9] {
            let err = oracle.quantile_rank_error(phi, summary.query(phi));
            worst_err = worst_err.max(err - 1.0 / values.len() as f64);
        }
    }
    sizes.sort_unstable();
    let total: usize = sizes.iter().sum();

    let mut table = Table::new(["metric", "value"]);
    table.row(["windows", &windows.len().to_string()]);
    table.row(["elements", &human_n(total)]);
    table.row(["min window", &sizes.first().unwrap().to_string()]);
    table.row(["median window", &sizes[sizes.len() / 2].to_string()]);
    table.row(["max window", &sizes.last().unwrap().to_string()]);
    table.row([
        "GPU sort+merge time ms",
        &format!("{:.3}", gpu.total_time().as_millis()),
    ]);
    table.row([
        "CPU sort time ms",
        &format!("{:.3}", cpu.time().as_millis()),
    ]);
    table.row(["worst quantile err", &format!("{worst_err:.6}")]);
    table.row(["eps bound", &format!("{eps}")]);
    table.print(csv);
    println!("\n# bursts inflate window populations ~10x; the summaries stay eps-approximate throughout.");
}
