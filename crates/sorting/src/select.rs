//! GPU selection via occlusion queries — the query style of the paper's
//! predecessor system (\[20\], cited in §2.2: "range queries and kth largest
//! numbers").
//!
//! Instead of sorting, the attribute values are loaded into the **depth
//! buffer** once; each predicate evaluation is then a single depth-only
//! pass whose passing-fragment count comes back through an occlusion query.
//! K-th-largest selection binary-searches the value space with one query
//! per bit of precision — `32` passes total, each touching every value at
//! double-pumped z-only rate, versus the `log²n` full passes a sort needs.
//!
//! The CPU baseline is an instrumented quickselect (Hoare partition,
//! expected `O(n)`).

use gsm_cpu::Machine;
use gsm_gpu::{DepthBuffer, DepthFunc, Device};

use crate::layout::texture_dims;

/// Loads `values` into the device's depth plane (row-major, padded with
/// `-∞` so padding never passes a `≥ candidate` test).
///
/// # Panics
///
/// Panics if `values` is empty or contains NaN.
pub fn load_values_as_depth(dev: &mut Device, values: &[f32]) {
    assert!(!values.is_empty(), "cannot load an empty value set");
    assert!(
        values.iter().all(|v| !v.is_nan()),
        "values must be NaN-free"
    );
    let (w, h) = texture_dims(values.len());
    let mut depth = DepthBuffer::new(w, h, f32::NEG_INFINITY);
    for (i, &v) in values.iter().enumerate() {
        depth.set_flat(i, v);
    }
    dev.load_depth(depth);
}

/// Counts the loaded values `v` with `v ≥ threshold` — one occlusion query.
pub fn gpu_count_at_least(dev: &mut Device, threshold: f32) -> u64 {
    // Fragment at `threshold` passes where threshold <= stored.
    dev.occlusion_count(threshold, DepthFunc::LessEqual)
}

/// Counts the loaded values in the half-open range `[lo, hi)` — two
/// occlusion queries (the \[20\] range-query primitive).
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn gpu_range_count(dev: &mut Device, lo: f32, hi: f32) -> u64 {
    assert!(lo <= hi, "empty range [{lo}, {hi})");
    gpu_count_at_least(dev, lo) - gpu_count_at_least(dev, hi)
}

/// The exact k-th largest of the loaded values (`k = 1` is the maximum),
/// by binary search over the IEEE key space: one occlusion query per bit,
/// 32 passes total, no sorting.
///
/// # Panics
///
/// Panics if `k` is 0 or exceeds the loaded count (detected via a full
/// `Always` query).
pub fn gpu_kth_largest(dev: &mut Device, values_len: usize, k: u64) -> f32 {
    assert!(
        k >= 1 && k as usize <= values_len,
        "k must be in 1..={values_len}"
    );
    // Monotone bijection between f32 (non-NaN) and u32: flip all bits of
    // negatives, the sign bit of non-negatives. Binary search the key space
    // for the largest key whose value still has >= k elements at or above
    // it.
    let mut lo_key = 0u32; // -inf
    let mut hi_key = u32::MAX; // +inf (as ordered keys)
                               // Invariant: count(>= value(lo_key)) >= k, count(>= value(hi_key)) < k
                               // or hi_key's value is above every element.
    while hi_key - lo_key > 1 {
        let mid = lo_key.midpoint(hi_key);
        let candidate = key_to_f32(mid);
        if gpu_count_at_least(dev, candidate) >= k {
            lo_key = mid;
        } else {
            hi_key = mid;
        }
    }
    key_to_f32(lo_key)
}

/// Inverse of the order-preserving f32→u32 key map.
fn key_to_f32(key: u32) -> f32 {
    let bits = if key & 0x8000_0000 != 0 {
        key ^ 0x8000_0000
    } else {
        !key
    };
    f32::from_bits(bits)
}

/// Order-preserving f32→u32 key map (exposed for tests).
pub fn f32_to_key(v: f32) -> u32 {
    let b = v.to_bits();
    if b & 0x8000_0000 != 0 {
        !b
    } else {
        b ^ 0x8000_0000
    }
}

/// Branch-site ids for quickselect.
const QS_LEFT: u64 = 21;
const QS_RIGHT: u64 = 22;

/// Instrumented quickselect: the k-th largest of `data` (`k = 1` is the
/// maximum) in expected `O(n)`, reporting its trace to `m`.
///
/// # Panics
///
/// Panics if `k` is 0 or exceeds `data.len()`.
pub fn cpu_quickselect(data: &mut [f32], k: u64, m: &mut Machine, base: u64) -> f32 {
    let n = data.len();
    assert!(k >= 1 && k as usize <= n, "k must be in 1..={n}");
    // k-th largest = element at 0-based ascending index n - k.
    let target = n - k as usize;
    let (mut lo, mut hi) = (0usize, n - 1);
    loop {
        if lo == hi {
            m.read(base + 4 * lo as u64);
            return data[lo];
        }
        // Median-of-three pivot value.
        let mid = lo + (hi - lo) / 2;
        m.read(base + 4 * lo as u64);
        m.read(base + 4 * mid as u64);
        m.read(base + 4 * hi as u64);
        let mut a = [data[lo], data[mid], data[hi]];
        a.sort_by(f32::total_cmp);
        m.alu(6);
        let pivot = a[1];

        // Hoare partition around the pivot value.
        let (mut i, mut j) = (lo, hi);
        loop {
            loop {
                m.read(base + 4 * i as u64);
                let go = data[i] < pivot;
                m.branch(QS_LEFT, go);
                m.alu(3);
                if !go {
                    break;
                }
                i += 1;
            }
            loop {
                m.read(base + 4 * j as u64);
                let go = data[j] > pivot;
                m.branch(QS_RIGHT, go);
                m.alu(3);
                if !go {
                    break;
                }
                j -= 1;
            }
            if i >= j {
                break;
            }
            data.swap(i, j);
            m.write(base + 4 * i as u64);
            m.write(base + 4 * j as u64);
            m.alu(2);
            i += 1;
            j = j.saturating_sub(1);
        }
        if target <= j {
            hi = j;
        } else {
            lo = j + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_cpu::CpuCostModel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(-1000.0..1000.0)).collect()
    }

    fn kth_largest_exact(data: &[f32], k: u64) -> f32 {
        let mut s = data.to_vec();
        s.sort_by(f32::total_cmp);
        s[s.len() - k as usize]
    }

    #[test]
    fn key_map_is_monotone() {
        let vals = [-1e30f32, -5.0, -0.5, -0.0, 0.0, 0.5, 5.0, 1e30];
        for w in vals.windows(2) {
            assert!(f32_to_key(w[0]) <= f32_to_key(w[1]), "{} vs {}", w[0], w[1]);
        }
        for &v in &vals {
            // Round trip through the inverse.
            let k = f32_to_key(v);
            assert_eq!(key_to_f32(k).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn gpu_counts_match_direct_counts() {
        let values = random_vec(777, 1);
        let mut dev = Device::ideal();
        load_values_as_depth(&mut dev, &values);
        for t in [-500.0f32, -1.0, 0.0, 250.0, 999.0] {
            let expect = values.iter().filter(|&&v| v >= t).count() as u64;
            assert_eq!(gpu_count_at_least(&mut dev, t), expect, "t={t}");
        }
        let in_range = values
            .iter()
            .filter(|&&v| (-100.0..100.0).contains(&v))
            .count() as u64;
        assert_eq!(gpu_range_count(&mut dev, -100.0, 100.0), in_range);
    }

    #[test]
    fn gpu_kth_largest_matches_sort() {
        let values = random_vec(1000, 2);
        let mut dev = Device::ideal();
        load_values_as_depth(&mut dev, &values);
        for k in [1u64, 2, 10, 500, 999, 1000] {
            let got = gpu_kth_largest(&mut dev, values.len(), k);
            let want = kth_largest_exact(&values, k);
            assert_eq!(got.to_bits(), want.to_bits(), "k={k}");
        }
    }

    #[test]
    fn gpu_kth_largest_with_duplicates() {
        let values = vec![5.0f32, 5.0, 5.0, 1.0, 9.0, 9.0, -3.0];
        let mut dev = Device::ideal();
        load_values_as_depth(&mut dev, &values);
        assert_eq!(gpu_kth_largest(&mut dev, 7, 1), 9.0);
        assert_eq!(gpu_kth_largest(&mut dev, 7, 2), 9.0);
        assert_eq!(gpu_kth_largest(&mut dev, 7, 3), 5.0);
        assert_eq!(gpu_kth_largest(&mut dev, 7, 6), 1.0);
        assert_eq!(gpu_kth_largest(&mut dev, 7, 7), -3.0);
    }

    #[test]
    fn gpu_selection_uses_about_32_queries() {
        let values = random_vec(4096, 3);
        let mut dev = Device::new(gsm_gpu::GpuCostModel::geforce_6800_ultra());
        load_values_as_depth(&mut dev, &values);
        let before = dev.stats().occlusion_queries;
        let _ = gpu_kth_largest(&mut dev, values.len(), 7);
        let queries = dev.stats().occlusion_queries - before;
        assert!((30..=33).contains(&queries), "{queries} queries");
    }

    #[test]
    fn cpu_quickselect_matches_sort() {
        for n in [1usize, 2, 17, 1000, 50_000] {
            let data = random_vec(n, 40 + n as u64);
            for k in [1u64, (n as u64 / 2).max(1), n as u64] {
                let mut copy = data.clone();
                let mut m = Machine::new(CpuCostModel::pentium4_3400());
                let got = cpu_quickselect(&mut copy, k, &mut m, 0);
                assert_eq!(
                    got.to_bits(),
                    kth_largest_exact(&data, k).to_bits(),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn quickselect_is_linear_not_linearithmic() {
        // Cycles per element must not grow with n like a sort's would.
        let per_elem = |n: usize| {
            let mut data = random_vec(n, 60);
            let mut m = Machine::new(CpuCostModel::pentium4_3400());
            let _ = cpu_quickselect(&mut data, (n / 2) as u64, &mut m, 0);
            m.cycles() as f64 / n as f64
        };
        let small = per_elem(10_000);
        let large = per_elem(300_000);
        assert!(
            large < 2.0 * small,
            "quickselect per-element cost must stay flat: {small:.1} -> {large:.1}"
        );
    }
}
