//! **Verification gate** — the differential fuzz driver behind CI's
//! `verify` job.
//!
//! Every adversarial generator family in [`gsm_verify::Family::ALL`] is
//! fanned across all four engines × all five estimators (quantile,
//! frequency, HHH, sliding quantile, sliding frequency); answers are
//! cross-checked for byte-identity and audited against the exact oracles
//! for the paper's bounds: frequency undercount ≤ εN with no overestimates
//! and no false negatives above support, quantile rank error ≤ ε, and the
//! `O((1/ε)·log(εN))` summary-space envelope.
//!
//! The run writes `results/VERIFY_report.json` (versioned envelope) with
//! one outcome per (family, iteration). On any violation it *minimizes*
//! the failing stream — halving `n` while the failure reproduces — then
//! writes `results/VERIFY_repro.json` holding the smallest failing
//! `{family, seed, n, window}` and exits nonzero. Re-running with exactly
//! those arguments reproduces the failure deterministically on any host:
//!
//! ```text
//! cargo run --release -p gsm-bench --bin verify_report [-- --n 4096
//!     --window 1024 --seed 42 --iters 1 --family zipf_skew
//!     --out results/VERIFY_report.json --repro-out results/VERIFY_repro.json]
//! ```

use gsm_bench::{envelope_json, write_result, Args, Table};
use gsm_obs::Recorder;
use gsm_verify::{
    record_violations, verify_family, Family, FamilyOutcome, StreamSpec, VerifyConfig,
};

/// One failing spec, minimized, ready to paste back into the CLI.
#[derive(serde::Serialize)]
struct Repro {
    family: String,
    seed: u64,
    n: u64,
    window: u64,
    failures: Vec<String>,
}

#[derive(serde::Serialize)]
struct Report {
    n: u64,
    window: u64,
    seed: u64,
    iters: u64,
    families: u64,
    passed: bool,
    outcomes: Vec<FamilyOutcome>,
}

/// Shrinks a failing spec by halving `n` while the failure still
/// reproduces, so the repro artifact is the smallest stream that breaks.
fn minimize(spec: &StreamSpec, cfg: &VerifyConfig) -> (StreamSpec, FamilyOutcome) {
    let mut best = spec.clone();
    let mut outcome = verify_family(&best, cfg);
    assert!(!outcome.passed(), "minimize called on a passing spec");
    // Keep n large enough for the sliding sketches' minimum widths
    // (width ≥ 4/ε at n/4 → n ≥ 16/ε).
    let floor = (16.0 / cfg.sliding_eps).ceil() as usize;
    while best.n / 2 >= floor {
        let candidate = StreamSpec {
            n: best.n / 2,
            ..best.clone()
        };
        let o = verify_family(&candidate, cfg);
        if o.passed() {
            break;
        }
        best = candidate;
        outcome = o;
    }
    (best, outcome)
}

fn main() {
    let args = Args::parse();
    let n: usize = args.get_num("n", 4096);
    let window: usize = args.get_num("window", 1024);
    let seed: u64 = args.get_num("seed", 42);
    let iters: u64 = args.get_num("iters", 1);
    let out = args
        .get("out")
        .unwrap_or("results/VERIFY_report.json")
        .to_string();
    let repro_out = args
        .get("repro-out")
        .unwrap_or("results/VERIFY_repro.json")
        .to_string();
    let only: Option<Family> = args
        .get("family")
        .map(|name| Family::from_name(name).unwrap_or_else(|| panic!("unknown family `{name}`")));

    let cfg = VerifyConfig::default();
    let families: Vec<Family> = match only {
        Some(f) => vec![f],
        None => Family::ALL.to_vec(),
    };

    println!(
        "# verify: {} families x {iters} iter(s), n={n}, window={window}, seed={seed}",
        families.len()
    );
    let mut outcomes: Vec<FamilyOutcome> = Vec::new();
    let mut first_failure: Option<StreamSpec> = None;
    // Flight recorder for the gate itself: every violation becomes a
    // structured AuditViolation event, dumped as a postmortem on failure.
    let rec = Recorder::enabled();
    let mut table = Table::new(["family", "iter", "n", "agree", "checks", "worst headroom"]);
    for iter in 0..iters {
        for &family in &families {
            let spec = StreamSpec {
                family,
                seed: seed.wrapping_add(iter),
                n,
                window,
            };
            let outcome = verify_family(&spec, &cfg);
            let checks: usize = outcome.reports.iter().map(|r| r.checks.len()).sum();
            let worst = outcome
                .reports
                .iter()
                .map(|r| r.worst_headroom())
                .fold(f64::INFINITY, f64::min);
            table.row([
                family.name().to_string(),
                iter.to_string(),
                outcome.n.to_string(),
                outcome.cross_backend_agree.to_string(),
                checks.to_string(),
                format!("{worst:.3}"),
            ]);
            if !outcome.passed() {
                record_violations(&rec, &outcome);
                if first_failure.is_none() {
                    first_failure = Some(spec);
                }
            }
            outcomes.push(outcome);
        }
    }
    table.print(args.flag("csv"));

    let passed = first_failure.is_none();
    let report = Report {
        n: n as u64,
        window: window as u64,
        seed,
        iters,
        families: families.len() as u64,
        passed,
        outcomes,
    };
    let payload = serde_json::to_string(&report).expect("report serializes infallibly");
    write_result(&out, &envelope_json("gsm-bench/verify_report", &payload));
    println!("wrote {out}");

    if let Some(spec) = first_failure {
        let (min_spec, min_outcome) = minimize(&spec, &cfg);
        record_violations(&rec, &min_outcome);
        let failures = min_outcome.failures();
        for f in &failures {
            eprintln!("VIOLATION: {f}");
        }
        // Dump the flight recorder so the triggering AuditViolation events
        // ride along with the repro artifact.
        let postmortem = "results/VERIFY_postmortem.json";
        write_result(
            postmortem,
            &envelope_json(
                "gsm-bench/verify_report",
                &rec.postmortem_json("verify gate found an eps-bound violation"),
            ),
        );
        eprintln!("flight-recorder postmortem written to {postmortem}");
        let repro = Repro {
            family: min_spec.family.name().to_string(),
            seed: min_spec.seed,
            n: min_spec.n as u64,
            window: min_spec.window as u64,
            failures,
        };
        let payload = serde_json::to_string(&repro).expect("repro serializes infallibly");
        write_result(
            &repro_out,
            &envelope_json("gsm-bench/verify_report", &payload),
        );
        eprintln!(
            "minimized repro written to {repro_out}: rerun with \
             `--family {} --seed {} --n {} --window {}`",
            repro.family, repro.seed, repro.n, repro.window
        );
        std::process::exit(1);
    }
    println!("all bounds hold, all engines agree");
}
