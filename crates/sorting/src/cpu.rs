//! Instrumented CPU sorting baselines.
//!
//! The paper benchmarks against two CPU configurations (§4.5): the standard
//! `stdlib.h` `qsort` compiled with MSVC (every comparison goes through a
//! comparator function pointer) and the Intel compiler's optimized,
//! Hyper-Threaded quicksort. Both are quicksorts; what differs is
//! per-comparison overhead and an overall throughput factor from
//! parallelization.
//!
//! The implementation here is a classic median-of-three quicksort with an
//! insertion-sort cutoff, *instrumented*: every element access reports its
//! address to the [`Machine`]'s cache hierarchy, every comparison reports
//! its branch outcome to the predictor, and loop bookkeeping charges ALU
//! cycles. The reported simulated time therefore exhibits the two effects
//! the paper highlights — cache misses beyond L2 (LaMarca–Ladner) and
//! branch-mispredict stalls — because they *emerge from the trace*, not from
//! a formula.

use gsm_cpu::Machine;

/// Partition segments at or below this length finish with insertion sort.
pub const INSERTION_CUTOFF: usize = 16;

/// ALU cycles charged per compare–exchange iteration.
///
/// On the Pentium IV's 31-stage Netburst pipeline a dependent
/// load → FP compare (`fcomip`, ~3 cycle latency) → index update → loop
/// branch chain sustains well under one instruction per cycle. Ten cycles
/// per comparison step calibrates the end-to-end simulated time against the
/// ~1 s the paper's Figure 3 shows for Intel-compiler quicksort at n = 8 M.
pub const COMPARE_ALU_CYCLES: u64 = 10;

/// Branch-site ids (stand-ins for static branch addresses).
mod site {
    pub const PARTITION_LEFT: u64 = 1;
    pub const PARTITION_RIGHT: u64 = 2;
    pub const INSERTION: u64 = 3;
    pub const MEDIAN: u64 = 4;
    pub const MERGE: u64 = 5;
}

/// Sorts `data` ascending while driving `m` with the full memory/branch
/// trace. `base` is the array's simulated base address (element `i` lives at
/// `base + 4·i`).
///
/// Uses an explicit segment stack (recursing on the smaller side first), so
/// adversarial inputs cannot overflow the host stack.
pub fn quicksort(data: &mut [f32], m: &mut Machine, base: u64) {
    if data.len() <= 1 {
        return;
    }
    let mut stack: Vec<(usize, usize)> = vec![(0, data.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi - lo < INSERTION_CUTOFF {
            insertion_sort(data, lo, hi, m, base);
            continue;
        }
        // Hoare partition: [lo..=j] ≤ pivot ≤ [j+1..=hi], both non-empty.
        let j = partition(data, lo, hi, m, base);
        // Push the larger side first so the smaller is processed next:
        // O(log n) stack depth.
        if j - lo < hi - j - 1 {
            stack.push((j + 1, hi));
            stack.push((lo, j));
        } else {
            stack.push((lo, j));
            stack.push((j + 1, hi));
        }
    }
}

/// Reads element `i`, charging the cache access.
#[inline]
fn load(data: &[f32], i: usize, m: &mut Machine, base: u64) -> f32 {
    m.read(base + 4 * i as u64);
    data[i]
}

/// Writes element `i`, charging the cache access.
#[inline]
fn store(data: &mut [f32], i: usize, v: f32, m: &mut Machine, base: u64) {
    m.write(base + 4 * i as u64);
    data[i] = v;
}

/// One comparison: charges the (possible) comparator call, a branch at
/// `site`, and the compare/increment ALU work.
#[inline]
fn compare(m: &mut Machine, site: u64, outcome: bool) -> bool {
    m.call();
    m.branch(site, outcome);
    m.alu(COMPARE_ALU_CYCLES);
    outcome
}

/// Swaps elements `i` and `j`, charging both writes.
#[inline]
fn swap_elems(data: &mut [f32], i: usize, j: usize, m: &mut Machine, base: u64) {
    data.swap(i, j);
    m.write(base + 4 * i as u64);
    m.write(base + 4 * j as u64);
}

/// Hoare-style partition with a median-of-three pivot. Returns `j` such
/// that `data[lo..=j] ≤ pivot ≤ data[j+1..=hi]`, both sides non-empty.
fn partition(data: &mut [f32], lo: usize, hi: usize, m: &mut Machine, base: u64) -> usize {
    // Median of three: order data[lo] ≤ data[mid] ≤ data[hi]; the median at
    // `mid` becomes the pivot, and the ordered endpoints double as scan
    // sentinels.
    let mid = lo + (hi - lo) / 2;
    let mut a = load(data, lo, m, base);
    let mut b = load(data, mid, m, base);
    let mut c = load(data, hi, m, base);
    if compare(m, site::MEDIAN, b < a) {
        core::mem::swap(&mut a, &mut b);
        swap_elems(data, lo, mid, m, base);
    }
    if compare(m, site::MEDIAN, c < a) {
        core::mem::swap(&mut a, &mut c);
        swap_elems(data, lo, hi, m, base);
    }
    if compare(m, site::MEDIAN, c < b) {
        core::mem::swap(&mut b, &mut c);
        swap_elems(data, mid, hi, m, base);
    }
    let pivot = b;

    let mut i = lo;
    let mut j = hi;
    loop {
        loop {
            i += 1;
            let v = load(data, i, m, base);
            if !compare(m, site::PARTITION_LEFT, v < pivot) {
                break;
            }
        }
        loop {
            j -= 1;
            let v = load(data, j, m, base);
            if !compare(m, site::PARTITION_RIGHT, v > pivot) {
                break;
            }
        }
        if i >= j {
            m.alu(1);
            return j;
        }
        swap_elems(data, i, j, m, base);
        m.alu(2);
    }
}

/// Instrumented insertion sort over `data[lo..=hi]`.
fn insertion_sort(data: &mut [f32], lo: usize, hi: usize, m: &mut Machine, base: u64) {
    for i in (lo + 1)..=hi {
        let v = load(data, i, m, base);
        let mut j = i;
        while j > lo {
            let prev = load(data, j - 1, m, base);
            if !compare(m, site::INSERTION, prev > v) {
                break;
            }
            store(data, j, prev, m, base);
            j -= 1;
        }
        if j > lo {
            // Loop exited via the comparison: charge the final (not-taken)
            // bookkeeping already done in `compare`.
            m.alu(1);
        }
        store(data, j, v, m, base);
    }
}

/// Sorts `data` ascending with LSD radix sort (four 8-bit passes over
/// sign-flipped IEEE keys), driving `m` with the full trace.
///
/// Radix sort is the branch-free counterpoint to quicksort: no
/// data-dependent comparisons (so no mispredict stalls, §3.2's second
/// bottleneck) but a scatter phase whose writes wander across the output
/// array (cache-hostile once the array outgrows L2 — LaMarca & Ladner's
/// other regime). `scratch_base` is the simulated address of the ping-pong
/// buffer.
pub fn radix_sort(data: &mut [f32], m: &mut Machine, base: u64, scratch_base: u64) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    // Order-preserving key transform: flip all bits of negatives, flip the
    // sign bit of non-negatives.
    let mut keys: Vec<u32> = data
        .iter()
        .map(|v| {
            let b = v.to_bits();
            if b & 0x8000_0000 != 0 {
                !b
            } else {
                b ^ 0x8000_0000
            }
        })
        .collect();
    let mut scratch = vec![0u32; n];
    let (mut src_base, mut dst_base) = (base, scratch_base);

    for pass in 0..4u32 {
        let shift = pass * 8;
        let mut counts = [0u32; 256];
        // Histogram: one sequential read per element.
        for (i, &k) in keys.iter().enumerate() {
            m.read(src_base + 4 * i as u64);
            m.alu(2);
            counts[((k >> shift) & 0xFF) as usize] += 1;
        }
        // Prefix sum over 256 buckets.
        let mut offsets = [0u32; 256];
        let mut acc = 0u32;
        for (o, &c) in offsets.iter_mut().zip(&counts) {
            *o = acc;
            acc += c;
        }
        m.alu(256);
        // Scatter: sequential read, bucket-ordered write.
        for (i, &k) in keys.iter().enumerate() {
            m.read(src_base + 4 * i as u64);
            let bucket = ((k >> shift) & 0xFF) as usize;
            let slot = offsets[bucket];
            offsets[bucket] += 1;
            m.write(dst_base + 4 * slot as u64);
            m.alu(3);
            scratch[slot as usize] = k;
        }
        core::mem::swap(&mut keys, &mut scratch);
        core::mem::swap(&mut src_base, &mut dst_base);
    }

    for (v, &k) in data.iter_mut().zip(&keys) {
        let b = if k & 0x8000_0000 != 0 {
            k ^ 0x8000_0000
        } else {
            !k
        };
        *v = f32::from_bits(b);
    }
}

/// Sorts `data` ascending with bottom-up merge sort, driving `m` with the
/// full trace.
///
/// Merge sort is the streaming counterpoint: every pass reads and writes
/// both arrays strictly sequentially (one cache miss per line, LaMarca &
/// Ladner's best case for large inputs) but still pays a data-dependent
/// branch per comparison.
pub fn merge_sort(data: &mut [f32], m: &mut Machine, base: u64, scratch_base: u64) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let mut scratch = vec![0.0f32; n];
    let mut src: &mut [f32] = data;
    let mut dst: &mut [f32] = &mut scratch;
    let (mut src_base, mut dst_base) = (base, scratch_base);
    let mut width = 1usize;
    let mut passes = 0u32;

    while width < n {
        let mut start = 0usize;
        while start < n {
            let mid = (start + width).min(n);
            let end = (start + 2 * width).min(n);
            let (mut i, mut j, mut k) = (start, mid, start);
            while i < mid && j < end {
                m.read(src_base + 4 * i as u64);
                m.read(src_base + 4 * j as u64);
                let take_left = src[i] <= src[j];
                m.branch(site::MERGE, take_left);
                m.alu(3);
                dst[k] = if take_left {
                    i += 1;
                    src[i - 1]
                } else {
                    j += 1;
                    src[j - 1]
                };
                m.write(dst_base + 4 * k as u64);
                k += 1;
            }
            while i < mid {
                m.read(src_base + 4 * i as u64);
                m.write(dst_base + 4 * k as u64);
                m.alu(1);
                dst[k] = src[i];
                i += 1;
                k += 1;
            }
            while j < end {
                m.read(src_base + 4 * j as u64);
                m.write(dst_base + 4 * k as u64);
                m.alu(1);
                dst[k] = src[j];
                j += 1;
                k += 1;
            }
            start = end;
        }
        core::mem::swap(&mut src, &mut dst);
        core::mem::swap(&mut src_base, &mut dst_base);
        width *= 2;
        passes += 1;
    }
    if passes % 2 == 1 {
        // Result landed in the scratch buffer (now `src`): copy back.
        for k in 0..n {
            m.read(src_base + 4 * k as u64);
            m.write(dst_base + 4 * k as u64);
        }
        dst.copy_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_cpu::CpuCostModel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn machine() -> Machine {
        Machine::new(CpuCostModel::pentium4_3400())
    }

    fn random_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(0.0..1.0e6)).collect()
    }

    #[test]
    fn sorts_small_and_large() {
        for n in [0usize, 1, 2, 15, 16, 17, 100, 1000, 20_000] {
            let mut data = random_vec(n, n as u64 + 1);
            let mut expect = data.clone();
            expect.sort_by(f32::total_cmp);
            quicksort(&mut data, &mut machine(), 0);
            assert_eq!(data, expect, "n={n}");
        }
    }

    #[test]
    fn sorts_adversarial_patterns() {
        let n = 4096;
        let patterns: Vec<Vec<f32>> = vec![
            (0..n).map(|i| i as f32).collect(),
            (0..n).rev().map(|i| i as f32).collect(),
            vec![7.0; n],
            (0..n).map(|i| (i % 2) as f32).collect(),
            (0..n).map(|i| (i % 10) as f32).collect(),
        ];
        for (k, p) in patterns.into_iter().enumerate() {
            let mut data = p;
            let mut expect = data.clone();
            expect.sort_by(f32::total_cmp);
            quicksort(&mut data, &mut machine(), 0);
            assert_eq!(data, expect, "pattern {k}");
        }
    }

    #[test]
    fn cycle_count_grows_superlinearly_past_cache() {
        // Per-element cost must rise once the array exceeds L2 (1 MB =
        // 256 K f32): LaMarca–Ladner's effect.
        let small_n = 64 << 10; // 256 KB: fits L2
        let large_n = 1 << 21; // 8 MB: 8x L2
        let mut m1 = machine();
        let mut d1 = random_vec(small_n, 42);
        quicksort(&mut d1, &mut m1, 0);
        let per_small = m1.cycles() as f64 / (small_n as f64 * (small_n as f64).log2());

        let mut m2 = machine();
        let mut d2 = random_vec(large_n, 42);
        quicksort(&mut d2, &mut m2, 0);
        let per_large = m2.cycles() as f64 / (large_n as f64 * (large_n as f64).log2());

        assert!(
            per_large > 1.03 * per_small,
            "per-comparison cost must grow past L2: {per_small:.2} -> {per_large:.2}"
        );
    }

    #[test]
    fn random_input_defeats_the_branch_predictor() {
        let mut m = machine();
        let mut data = random_vec(100_000, 7);
        quicksort(&mut data, &mut m, 0);
        let rate = m.stats().mispredict_rate();
        assert!((0.15..0.6).contains(&rate), "mispredict rate = {rate}");
    }

    #[test]
    fn sorted_input_is_branch_friendly() {
        let mut m_sorted = machine();
        let mut asc: Vec<f32> = (0..100_000).map(|i| i as f32).collect();
        quicksort(&mut asc, &mut m_sorted, 0);
        let mut m_rand = machine();
        let mut rnd = random_vec(100_000, 3);
        quicksort(&mut rnd, &mut m_rand, 0);
        assert!(
            m_sorted.stats().mispredict_rate() < m_rand.stats().mispredict_rate(),
            "sorted {} vs random {}",
            m_sorted.stats().mispredict_rate(),
            m_rand.stats().mispredict_rate()
        );
    }

    const SCRATCH: u64 = 0x4000_0000;

    #[test]
    fn radix_sort_is_correct() {
        for n in [0usize, 1, 2, 100, 4096, 50_000] {
            let mut data = random_vec(n, 70 + n as u64);
            // Include negatives and special patterns.
            for (i, v) in data.iter_mut().enumerate() {
                if i % 3 == 0 {
                    *v = -*v;
                }
            }
            let mut expect = data.clone();
            expect.sort_by(f32::total_cmp);
            radix_sort(&mut data, &mut machine(), 0, SCRATCH);
            assert_eq!(data, expect, "n={n}");
        }
    }

    #[test]
    fn radix_sort_handles_negatives_zeros_and_duplicates() {
        let mut data = vec![-0.0f32, 0.0, -1.5, 1.5, -1.5, 7.0, -1e30, 1e30, 7.0];
        let mut expect = data.clone();
        expect.sort_by(f32::total_cmp);
        radix_sort(&mut data, &mut machine(), 0, SCRATCH);
        // -0.0 and 0.0 compare equal; compare bit-agnostically by value.
        assert_eq!(data.len(), expect.len());
        for (a, b) in data.iter().zip(&expect) {
            assert_eq!(
                a.partial_cmp(b),
                Some(core::cmp::Ordering::Equal),
                "{data:?}"
            );
        }
    }

    #[test]
    fn radix_sort_is_branch_free() {
        let mut m = machine();
        let mut data = random_vec(50_000, 71);
        radix_sort(&mut data, &mut m, 0, SCRATCH);
        assert_eq!(
            m.stats().branches,
            0,
            "radix sort issues no data-dependent branches"
        );
        assert_eq!(m.stats().mispredicts, 0);
    }

    #[test]
    fn merge_sort_is_correct() {
        for n in [0usize, 1, 2, 3, 100, 4095, 4096, 50_000] {
            let mut data = random_vec(n, 80 + n as u64);
            let mut expect = data.clone();
            expect.sort_by(f32::total_cmp);
            merge_sort(&mut data, &mut machine(), 0, SCRATCH);
            assert_eq!(data, expect, "n={n}");
        }
    }

    #[test]
    fn merge_sort_misses_match_the_streaming_model() {
        // A naive bottom-up merge sort streams source and destination
        // arrays once per pass: beyond L2 capacity that is ~one miss per
        // 64 B line per array per pass (LaMarca & Ladner's analysis of why
        // base merge sort is miss-heavy and needs tiling). Quicksort, by
        // contrast, localizes after a few partition levels and misses far
        // less per access.
        let n = 1usize << 20; // 4 MB per array, 4x L2
        let data = random_vec(n, 81);
        let mut mm = machine();
        let mut dm = data.clone();
        merge_sort(&mut dm, &mut mm, 0, SCRATCH);
        let passes = (n as f64).log2().ceil();
        let model = passes * 2.0 * (n as f64 * 4.0 / 64.0);
        let observed = mm.stats().l2_misses as f64;
        assert!(
            (0.4..2.0).contains(&(observed / model)),
            "observed {observed} vs streaming model {model}"
        );

        let mut mq = machine();
        let mut dq = data;
        quicksort(&mut dq, &mut mq, 0);
        let q_rate = mq.stats().l2_misses as f64 / mq.stats().reads as f64;
        let m_rate = mm.stats().l2_misses as f64 / mm.stats().reads as f64;
        assert!(
            q_rate < m_rate,
            "quicksort localizes: {q_rate:.4} vs merge {m_rate:.4}"
        );
        assert_eq!(dq, dm);
    }

    #[test]
    fn prefetcher_helps_streaming_sorts_most() {
        // Merge sort streams both arrays linearly: the prefetcher should
        // hide most of its memory latency. Quicksort's partition walks are
        // also streams, but its working set localizes quickly, so there is
        // far less latency to hide.
        let n = 1 << 20;
        let data = random_vec(n, 90);
        let run = |prefetch: bool, merge: bool| {
            let model = if prefetch {
                CpuCostModel::pentium4_3400_prefetch()
            } else {
                CpuCostModel::pentium4_3400()
            };
            let mut m = Machine::new(model);
            let mut d = data.clone();
            if merge {
                merge_sort(&mut d, &mut m, 0, SCRATCH);
            } else {
                quicksort(&mut d, &mut m, 0);
            }
            (m.cycles(), m.stats().prefetch_covered)
        };
        let (merge_plain, _) = run(false, true);
        let (merge_pf, covered) = run(true, true);
        assert!(covered > 0, "streaming misses must be covered");
        let merge_gain = merge_plain as f64 / merge_pf as f64;
        let (quick_plain, _) = run(false, false);
        let (quick_pf, _) = run(true, false);
        let quick_gain = quick_plain as f64 / quick_pf as f64;
        assert!(
            merge_gain > quick_gain,
            "merge sort must benefit more: {merge_gain:.3} vs {quick_gain:.3}"
        );
        assert!(
            merge_gain > 1.05,
            "merge sort gain {merge_gain:.3} too small"
        );
    }

    #[test]
    fn qsort_call_overhead_costs_more() {
        let data = random_vec(50_000, 9);
        let mut m_fast = Machine::new(CpuCostModel::pentium4_3400());
        let mut d1 = data.clone();
        quicksort(&mut d1, &mut m_fast, 0);
        let mut m_qsort = Machine::new(CpuCostModel::pentium4_3400_qsort());
        let mut d2 = data;
        quicksort(&mut d2, &mut m_qsort, 0);
        assert!(m_qsort.cycles() > m_fast.cycles());
        assert_eq!(d1, d2);
    }
}
