//! Finance logs: rolling quantiles of a tick stream over a sliding window —
//! the paper's "finance logs" motivation (§1) combined with its
//! sliding-window machinery (§5.3).
//!
//! A synthetic tick stream follows a random walk with occasional volatility
//! bursts. A sliding-window quantile estimator tracks the rolling median
//! and the 1%/99% tails (a VaR-style band) over the last `W` ticks; a
//! variable-width (time-based) windowing pass shows burst absorption.
//!
//! ```text
//! cargo run --release --example finance_sliding_quantiles
//! ```

use gsm::core::{Engine, SlidingQuantileEstimator};
use gsm::sketch::exact::ExactStats;
use gsm::stream::{BurstyGen, Timestamped, VariableWindows, F16};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random-walk ticks quantized to the f16 grid (the paper's 16-bit values).
fn tick_stream(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut price = 100.0f32;
    (0..n)
        .map(|i| {
            // Volatility regime switches every ~50k ticks.
            let vol = if (i / 50_000) % 2 == 0 { 0.02 } else { 0.08 };
            price += rng.random_range(-vol..vol);
            price = price.clamp(50.0, 200.0);
            F16::from_f32(price).to_f32()
        })
        .collect()
}

fn main() {
    let n = 400_000usize;
    let window = 100_000usize;
    let eps = 0.01;
    let ticks = tick_stream(n, 11);

    println!("tick stream: {n} ticks, rolling window {window}, eps {eps}\n");
    let mut est = SlidingQuantileEstimator::new(eps, window, Engine::GpuSim);

    // Stream in and snapshot the quantile band at checkpoints.
    println!(
        "{:>9}  {:>8}  {:>8}  {:>8}   (rolling 1% / median / 99%)",
        "tick", "p01", "p50", "p99"
    );
    let checkpoints = [100_000usize, 200_000, 300_000, 400_000];
    let mut fed = 0usize;
    for &cp in &checkpoints {
        est.push_all(ticks[fed..cp].iter().copied());
        fed = cp;
        let (p01, p50, p99) = (est.query(0.01), est.query(0.5), est.query(0.99));
        println!("{cp:>9}  {p01:>8.2}  {p50:>8.2}  {p99:>8.2}");
    }

    // Validate the final band against the exact window.
    let oracle = ExactStats::new(&ticks[n - window..]);
    for phi in [0.01, 0.5, 0.99] {
        let err = oracle.quantile_rank_error(phi, est.query(phi));
        assert!(err <= eps, "phi={phi}: rank error {err} exceeds eps {eps}");
    }
    println!("\nfinal band verified against the exact window (rank error <= eps)");
    println!("simulated GPU time: {}", est.total_time());
    println!(
        "summary footprint:  {} entries for a {window}-tick window",
        est.entry_count()
    );

    // ---- Variable-width windows on bursty tick arrivals -------------------
    println!("\n== per-second summaries under bursty arrivals ==");
    let events: Vec<Timestamped> = BurstyGen::new(5, 20_000.0, 15.0).take(200_000).collect();
    let windows: Vec<Vec<Timestamped>> = VariableWindows::new(events.into_iter(), 0.5).collect();
    let sizes: Vec<usize> = windows.iter().map(Vec::len).collect();
    println!(
        "  {} half-second windows; population min {} / max {} (bursts absorbed)",
        windows.len(),
        sizes.iter().min().unwrap(),
        sizes.iter().max().unwrap()
    );
}
