#!/usr/bin/env bash
# Public-API surface snapshot gate.
#
# Extracts a grep-derived listing of every `pub` item declaration line in
# the workspace crates (fn/struct/enum/trait/mod/use/const/type/static),
# normalizes it (path-prefixed, whitespace-collapsed, bodies and
# terminators stripped), and diffs it against the committed snapshot at
# tests/data/api_surface.txt.
#
# The point is review friction, not precision: an API change — a renamed
# builder method, a new public type, a widened re-export — must show up as
# a one-line diff in the same PR that made it, so the surface can never
# drift unreviewed. Multi-line signatures are captured by their first line
# only; that is deliberate, a first-line change is what a rename or an
# arity change produces, and the snapshot stays stable under rustfmt.
#
# Usage:
#   scripts/api_surface.sh            print the current surface to stdout
#   scripts/api_surface.sh --check    diff against the snapshot (CI gate)
#   scripts/api_surface.sh --update   rewrite the snapshot after review
set -euo pipefail

cd "$(dirname "$0")/.."
SNAPSHOT="tests/data/api_surface.txt"

generate() {
    # Crate sources only: shims/ vendors third-party code and src/ is the
    # facade crate; tests and benches have no public surface to pin.
    grep -rn --include='*.rs' -E '^\s*pub (fn|struct|enum|trait|mod|use|const|type|static|union)\b' \
        crates/*/src src/*.rs \
        | sed -E 's|^([^:]+):[0-9]+:[[:space:]]*|\1: |; s/[[:space:]]+/ /g; s/ \{.*$//; s/;.*$//; s/ $//' \
        | LC_ALL=C sort
}

case "${1:-}" in
    "")
        generate
        ;;
    --check)
        if ! diff -u "$SNAPSHOT" <(generate); then
            echo >&2
            echo "api_surface: public API surface changed without a snapshot update." >&2
            echo "api_surface: review the diff above, then run: scripts/api_surface.sh --update" >&2
            exit 1
        fi
        echo "api_surface: surface matches $SNAPSHOT ($(wc -l < "$SNAPSHOT") items)"
        ;;
    --update)
        mkdir -p "$(dirname "$SNAPSHOT")"
        generate > "$SNAPSHOT"
        echo "api_surface: wrote $(wc -l < "$SNAPSHOT") items to $SNAPSHOT"
        ;;
    *)
        echo "usage: scripts/api_surface.sh [--check|--update]" >&2
        exit 2
        ;;
esac
