//! Quickstart: ε-approximate quantiles and heavy hitters over a stream,
//! with window sorting on the simulated GPU co-processor.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gsm::core::{Engine, FrequencyEstimator, QuantileEstimator};
use gsm::stream::{UniformGen, ZipfGen};

fn main() {
    let n = 1_000_000usize;
    let eps = 0.001;

    // ---- Quantiles over a uniform random stream --------------------------
    let mut quantiles = QuantileEstimator::builder(eps)
        .engine(Engine::GpuSim)
        .n_hint(n as u64)
        .build();
    quantiles.push_all(UniformGen::unit(42).take(n));

    println!("== quantiles of {n} uniform values (eps = {eps}) ==");
    for phi in [0.01, 0.25, 0.5, 0.75, 0.99] {
        println!("  phi = {phi:<4}  ->  {:.4}", quantiles.query(phi));
    }
    println!("  summary entries: {}", quantiles.entry_count());
    println!("  simulated time:  {}", quantiles.total_time());
    println!("  breakdown:       {}", quantiles.breakdown());

    // ---- Heavy hitters over a Zipf stream --------------------------------
    let mut freq = FrequencyEstimator::builder(eps)
        .engine(Engine::GpuSim)
        .build();
    freq.push_all(ZipfGen::new(7, 10_000, 1.1).take(n));

    println!("\n== heavy hitters at 1% support over {n} Zipf(1.1) values ==");
    for (value, count) in freq.heavy_hitters(0.01) {
        println!("  value {value:<8} count >= {count}");
    }
    println!("  summary entries: {}", freq.entry_count());
    println!("  simulated time:  {}", freq.total_time());
    println!("  breakdown:       {}", freq.breakdown());
}
