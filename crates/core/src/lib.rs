#![warn(missing_docs)]

//! GPU-co-processor stream mining — the paper's contribution, assembled.
//!
//! This crate provides the public API a user of the original system would
//! have seen: push a stream of values, ask for ε-approximate **quantiles**
//! and **frequencies** (heavy hitters), over the entire past or over sliding
//! windows, with the expensive per-window **sorting** offloaded to the GPU.
//!
//! # The co-processor protocol (paper §4.1)
//!
//! The estimators buffer **four** complete windows, pack one window per
//! RGBA channel of a single texture, upload once, sort all four windows in
//! one PBSN run, read back once, and fold each sorted window into the
//! running summary on the CPU. The protocol exists because the AGP bus
//! (~800 MB/s effective) is far slower than either processor: one transfer
//! each way per four windows.
//!
//! # Engines
//!
//! Every estimator runs on an [`Engine`]:
//!
//! * [`Engine::GpuSim`] — windows sort on the simulated GeForce 6800 Ultra;
//! * [`Engine::CpuSim`] — windows sort with instrumented quicksort on the
//!   simulated Pentium IV (the paper's CPU baseline);
//! * [`Engine::Host`] — plain `slice::sort` with zero simulated time, for
//!   functional testing;
//! * [`Engine::ParallelHost`] — real host threads: the four PBSN channel
//!   lanes of each window sort concurrently on a worker pool while the
//!   ingest thread keeps filling the next window (the paper's overlap,
//!   executed instead of simulated).
//!
//! The engines are *functionally identical* — only the simulated-time ledger
//! differs — which the integration tests assert exactly.
//!
//! # Example
//!
//! ```
//! use gsm_core::{Engine, QuantileEstimator};
//!
//! let mut est = QuantileEstimator::builder(0.01)
//!     .engine(Engine::Host)
//!     .build();
//! for i in 0..100_000 {
//!     est.push((i % 1000) as f32);
//! }
//! let median = est.query(0.5);
//! assert!((median - 499.0).abs() <= 20.0); // within ε·N ranks
//! ```

mod correlated;
mod engine;
mod frequencies;
mod hhh;
pub mod pipeline;
mod quantiles;
mod report;
mod sliding;

pub use correlated::CorrelatedSumEstimator;
pub use engine::Engine;
pub use frequencies::{FrequencyEstimator, FrequencyEstimatorBuilder};
pub use hhh::HhhEstimator;
pub use pipeline::{
    replay, BatchPipeline, HashRouter, OpLedger, ParallelHostBackend, RangeRouter,
    RoundRobinRouter, ShardRouter, ShardedPipeline, SortBackend, Submission, WindowedPipeline,
};
pub use quantiles::{QuantileEstimator, QuantileEstimatorBuilder};
pub use report::{price_ops, TimeBreakdown, WallClock};
pub use sliding::{SlidingFrequencyEstimator, SlidingQuantileEstimator};

// Re-export the hierarchy and entry types alongside their estimator, and
// the sink contract alongside the pipeline that drives it.
pub use gsm_sketch::{BitPrefixHierarchy, HhhEntry, SinkOps, SummarySink};
