//! One-shot reproduction driver: runs every figure/experiment harness at
//! its default scale and writes the outputs under `results/`, then runs the
//! claim checker. This is what `EXPERIMENTS.md` was generated from.
//!
//! ```text
//! cargo run --release -p gsm-bench --bin repro_all [-- --out results]
//! ```

use std::path::Path;
use std::process::Command;

use gsm_bench::Args;

const HARNESSES: &[(&str, &[&str])] = &[
    ("fig3_sorting", &[]),
    ("fig3_sorting", &["--ablation", "channels"]),
    ("fig3_sorting", &["--ablation", "rowblock"]),
    ("fig3_sorting", &["--extended", "--max", "2097152"]),
    ("fig4_breakdown", &[]),
    ("fig5_frequency", &[]),
    ("fig6_opscost", &[]),
    ("fig6_opscost", &["--engine", "cpu"]),
    ("fig7_quantile", &[]),
    ("fig8_sliding", &[]),
    ("ablation_insertion", &[]),
    ("selection", &[]),
    ("future_hw", &[]),
    ("dsms_load", &[]),
    ("distribution_sensitivity", &[]),
];

fn main() {
    let args = Args::parse();
    let out_dir = args.get("out").unwrap_or("results").to_string();
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin directory")
        .to_path_buf();

    let mut failures = 0;
    for (bin, extra) in HARNESSES {
        let mut name = bin.to_string();
        for e in extra.iter().filter(|e| !e.starts_with("--")) {
            name.push('_');
            name.push_str(e);
        }
        if extra.contains(&"--extended") {
            name.push_str("_extended");
        }
        if extra.contains(&"--engine") {
            name = format!("{bin}_cpu");
        }
        let out_file = Path::new(&out_dir).join(format!("{name}.txt"));
        print!(
            "running {bin} {} -> {} ... ",
            extra.join(" "),
            out_file.display()
        );

        let output = Command::new(exe_dir.join(bin))
            .args(extra.iter())
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        std::fs::write(&out_file, &output.stdout).expect("write output");
        if output.status.success() {
            println!("ok");
        } else {
            println!("FAILED ({})", output.status);
            failures += 1;
        }
    }

    println!("\nrunning claim checker (check_repro) ...");
    let status = Command::new(exe_dir.join("check_repro"))
        .status()
        .expect("launch check_repro");
    if !status.success() {
        failures += 1;
    }

    if failures > 0 {
        eprintln!("{failures} harness(es) failed");
        std::process::exit(1);
    }
    println!("\nall harnesses completed; outputs in {out_dir}/");
}
