//! The served-vs-direct differential verifier.
//!
//! The serving frontend (`gsm-serve`) promises that putting a worker pool,
//! an admission queue, and a snapshot registry between the caller and the
//! engine changes *nothing* about the answers: a query served from a
//! published [`gsm_dsms::EngineSnapshot`] must be byte-identical to (a)
//! the same query run directly against that snapshot and (b) the engine's
//! own answer over the same sealed windows. This module certifies both
//! equalities for every query kind across every [`Engine`] and a sharded
//! configuration, plus the structural serving contract: every submitted
//! request produced exactly one structured reply
//! ([`gsm_serve::ServerStats::lost`] == 0).

use std::sync::Arc;

use gsm_core::{BitPrefixHierarchy, Engine};
use gsm_dsms::{QueryAnswer, StreamEngine};
use gsm_serve::{QueryServer, Reply, Request, ServeConfig};

use crate::gen::StreamSpec;

/// The served-vs-direct verdict for one engine × shard count.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ServeRun {
    /// Backend name.
    pub engine: String,
    /// Shard count the engine ingested with.
    pub shards: usize,
    /// Requests compared.
    pub compared: u64,
    /// Requests that got no structured reply (must be 0).
    pub lost: u64,
    /// Human-readable divergences (empty when passed).
    pub mismatches: Vec<String>,
}

impl ServeRun {
    /// Whether every served answer matched and no request was lost.
    pub fn passed(&self) -> bool {
        self.lost == 0 && self.mismatches.is_empty()
    }
}

/// The serving verdict for one adversarial stream.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ServeFamilyOutcome {
    /// Generator family name.
    pub family: String,
    /// Generator seed.
    pub seed: u64,
    /// Stream length.
    pub n: u64,
    /// One verdict per engine × shard count.
    pub runs: Vec<ServeRun>,
}

impl ServeFamilyOutcome {
    /// Whether every run passed.
    pub fn passed(&self) -> bool {
        self.runs.iter().all(ServeRun::passed)
    }

    /// Human-readable description of every failure.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for run in &self.runs {
            if run.lost > 0 {
                out.push(format!(
                    "{} {} k={}: {} requests lost without a reply",
                    self.family, run.engine, run.shards, run.lost
                ));
            }
            for m in &run.mismatches {
                out.push(format!(
                    "{} {} k={}: {}",
                    self.family, run.engine, run.shards, m
                ));
            }
        }
        out
    }
}

/// Compares one served reply against the expected direct answer.
fn check(
    mismatches: &mut Vec<String>,
    what: &str,
    served: Reply,
    expected_epoch: u64,
    expected: &QueryAnswer,
) {
    match served {
        Reply::Answer { epoch, answer } => {
            if epoch != expected_epoch {
                mismatches.push(format!(
                    "{what}: served from epoch {epoch}, expected {expected_epoch}"
                ));
            }
            if !answers_equal(&answer, expected) {
                mismatches.push(format!("{what}: served {answer:?} != direct {expected:?}"));
            }
        }
        other => mismatches.push(format!("{what}: expected an answer, got {other:?}")),
    }
}

/// Bit-exact comparison (floats by `to_bits`, so `-0.0 != 0.0` and NaNs
/// compare equal to themselves — stricter than `PartialEq`).
fn answers_equal(a: &QueryAnswer, b: &QueryAnswer) -> bool {
    match (a, b) {
        (QueryAnswer::Quantile(x), QueryAnswer::Quantile(y)) => x.to_bits() == y.to_bits(),
        (QueryAnswer::HeavyHitters(x), QueryAnswer::HeavyHitters(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((xv, xc), (yv, yc))| xv.to_bits() == yv.to_bits() && xc == yc)
        }
        (QueryAnswer::Hhh(x), QueryAnswer::Hhh(y)) => x == y,
        _ => false,
    }
}

/// Runs the served-vs-direct differential for one stream: every engine in
/// `engines`, at shard counts 1 and 3, with all five query kinds
/// registered. Uses the stream's canonical integer-id projection so
/// frequency supports are meaningful on every family.
pub fn verify_family_served(spec: &StreamSpec, engines: &[Engine]) -> ServeFamilyOutcome {
    let ids = spec.integer_ids();
    let mut runs = Vec::new();
    for &engine in engines {
        for shards in [1usize, 3] {
            runs.push(run_one(engine, shards, &ids));
        }
    }
    ServeFamilyOutcome {
        family: spec.family.name().to_string(),
        seed: spec.seed,
        n: ids.len() as u64,
        runs,
    }
}

fn run_one(engine: Engine, shards: usize, ids: &[f32]) -> ServeRun {
    let mut eng = StreamEngine::new(engine)
        .with_n_hint(ids.len() as u64)
        .with_shards(shards);
    let q = eng.register_quantile(0.02);
    let f = eng.register_frequency(0.005);
    let h = eng.register_hhh(0.005, BitPrefixHierarchy::new(vec![4, 8]));
    let sq = eng.register_sliding_quantile(0.05, 4 * eng.window().max(1024));
    let sf = eng.register_sliding_frequency(0.05, 4 * eng.window().max(1024));
    let registry = eng.serve();
    eng.push_all(ids.iter().copied());
    // Flush, then publish, so the snapshot and the direct engine answers
    // cover exactly the same sealed windows.
    eng.flush();
    eng.publish_now();
    let snap = registry.latest().expect("published snapshot");
    let epoch = snap.epoch();

    let server = QueryServer::start(Arc::clone(&registry), ServeConfig::default());
    let client = server.client();
    let mut mismatches = Vec::new();
    let mut compared = 0u64;

    let phis = [0.01, 0.25, 0.5, 0.75, 0.99];
    for &phi in &phis {
        // Direct chain first: the engine's own answer must equal the
        // snapshot's, then the served reply must equal both.
        let direct = eng.quantile(q, phi);
        let via_snap = snap.quantile(q.index(), phi).expect("snapshot quantile");
        if direct.to_bits() != via_snap.to_bits() {
            mismatches.push(format!(
                "quantile(phi={phi}): snapshot {via_snap} != engine {direct}"
            ));
        }
        let served = client.call(Request::Quantile {
            query: q.index(),
            phi,
        });
        check(
            &mut mismatches,
            &format!("quantile(phi={phi})"),
            served,
            epoch,
            &QueryAnswer::Quantile(direct),
        );
        compared += 1;

        let direct = eng.sliding_quantile(sq, phi);
        let served = client.call(Request::SlidingQuantile {
            query: sq.index(),
            phi,
        });
        check(
            &mut mismatches,
            &format!("sliding_quantile(phi={phi})"),
            served,
            epoch,
            &QueryAnswer::Quantile(direct),
        );
        compared += 1;
    }

    let support = 0.03;
    let direct = eng.heavy_hitters(f, support);
    let served = client.call(Request::HeavyHitters {
        query: f.index(),
        support,
    });
    check(
        &mut mismatches,
        "heavy_hitters",
        served,
        epoch,
        &QueryAnswer::HeavyHitters(direct),
    );
    compared += 1;

    let direct = eng.hhh(h, support);
    let served = client.call(Request::Hhh {
        query: h.index(),
        support,
    });
    check(
        &mut mismatches,
        "hhh",
        served,
        epoch,
        &QueryAnswer::Hhh(direct),
    );
    compared += 1;

    let direct = eng.sliding_heavy_hitters(sf, 0.1);
    let served = client.call(Request::SlidingHeavyHitters {
        query: sf.index(),
        support: 0.1,
    });
    check(
        &mut mismatches,
        "sliding_heavy_hitters",
        served,
        epoch,
        &QueryAnswer::HeavyHitters(direct),
    );
    compared += 1;

    let stats = server.stats();
    drop(server);
    ServeRun {
        engine: format!("{engine:?}"),
        shards,
        compared,
        lost: stats.lost(),
        mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Family;

    #[test]
    fn served_answers_are_byte_identical_across_engines() {
        let spec = StreamSpec {
            family: Family::ZipfSkew,
            seed: 7,
            n: 20_000,
            window: 1024,
        };
        let outcome = verify_family_served(&spec, &Engine::ALL);
        assert!(
            outcome.passed(),
            "served-vs-direct divergence:\n{}",
            outcome.failures().join("\n")
        );
        assert_eq!(outcome.runs.len(), Engine::ALL.len() * 2);
        assert!(outcome.runs.iter().all(|r| r.compared == 13));
    }
}
