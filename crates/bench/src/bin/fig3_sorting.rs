//! **Figure 3** — sorting time vs input size, four engines.
//!
//! Paper: "our GPU-based sorting algorithm outperforms the earlier
//! CPU-based and the GPU-based implementations for reasonably large values
//! of n … the Quicksort routine in the Intel compiler is well optimized and
//! its performance is comparable to our GPU-based algorithm." GPU timings
//! include both transfers (as in the paper).
//!
//! ```text
//! cargo run --release -p gsm-bench --bin fig3_sorting [-- --max 8388608
//!     --bitonic-max 1048576 --csv --ablation channels|rowblock]
//! ```

use gsm_bench::{human_n, ms, Args, Table};
use gsm_gpu::{Channel, Device, GpuCostModel, Surface};
use gsm_sort::layout::{pad_pow2, texture_dims, PAD};
use gsm_sort::pbsn::{pbsn_sort_device, pbsn_sort_device_naive, pbsn_sort_surface};
use gsm_sort::{SortEngine, Sorter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_data(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(0.0..1.0e6)).collect()
}

fn sizes(max: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut n = 16 << 10;
    while n <= max {
        out.push(n);
        n *= 2;
    }
    out
}

fn main() {
    let args = Args::parse();
    let csv = args.flag("csv");
    let max: usize = args.get_num("max", 8 << 20);
    let bitonic_max: usize = args.get_num("bitonic-max", 1 << 20);

    match args.get("ablation") {
        Some("channels") => ablation_channels(max, csv),
        Some("rowblock") => ablation_rowblock(max, csv),
        Some(other) => eprintln!("unknown ablation {other:?}; use channels|rowblock"),
        None if args.flag("extended") => extended(max, bitonic_max, csv),
        None => figure3(max, bitonic_max, csv),
    }
}

/// `--extended`: every engine, including the baselines beyond Figure 3
/// (Kipfer's improved shader sort, branch-free radix, streaming merge sort).
fn extended(max: usize, bitonic_max: usize, csv: bool) {
    println!("# Extended sweep: all engines (simulated ms, transfers included)\n");
    let mut table = Table::new(
        core::iter::once("n".to_string()).chain(
            SortEngine::EXTENDED
                .iter()
                .map(|e| format!("{} ms", e.label())),
        ),
    );
    for n in sizes(max) {
        let data = random_data(n, n as u64);
        let mut row = vec![human_n(n)];
        for engine in SortEngine::EXTENDED {
            let skip_shader = matches!(
                engine,
                SortEngine::GpuBitonic | SortEngine::GpuBitonicKipfer
            ) && n > bitonic_max;
            row.push(if skip_shader {
                "-".into()
            } else {
                ms(Sorter::new(engine).sort(&data).total_time)
            });
        }
        table.row(row);
    }
    table.print(csv);
}

/// The headline sweep: all four engines of Figure 3.
fn figure3(max: usize, bitonic_max: usize, csv: bool) {
    println!("# Figure 3: sorting time vs n (simulated ms, transfers included)");
    println!(
        "# bitonic capped at {} (it is ~10x slower; raise with --bitonic-max)\n",
        human_n(bitonic_max)
    );
    let mut table = Table::new([
        "n",
        "GPU PBSN (ours) ms",
        "GPU bitonic [40] ms",
        "CPU quicksort (Intel) ms",
        "CPU qsort (MSVC) ms",
    ]);
    for n in sizes(max) {
        let data = random_data(n, n as u64);
        let pbsn = Sorter::new(SortEngine::GpuPbsn).sort(&data);
        let bitonic = (n <= bitonic_max).then(|| Sorter::new(SortEngine::GpuBitonic).sort(&data));
        let intel = Sorter::new(SortEngine::CpuQuicksort).sort(&data);
        let qsort = Sorter::new(SortEngine::CpuQsort).sort(&data);
        table.row([
            human_n(n),
            ms(pbsn.total_time),
            bitonic
                .map(|b| ms(b.total_time))
                .unwrap_or_else(|| "-".into()),
            ms(intel.total_time),
            ms(qsort.total_time),
        ]);
    }
    table.print(csv);
}

/// Ablation A1: 4-channel RGBA packing vs a single-channel layout.
fn ablation_channels(max: usize, csv: bool) {
    println!("# Ablation A1: RGBA 4-channel packing vs single-channel PBSN");
    println!("# (single-channel wastes 3 of 4 vector lanes: ~4x the texels)\n");
    let mut table = Table::new(["n", "4-channel + merge ms", "single-channel ms", "speedup"]);
    for n in sizes(max.min(4 << 20)) {
        let data = random_data(n, 7);
        let four = Sorter::new(SortEngine::GpuPbsn).sort(&data).total_time;

        // Single channel: all n values in R, full-size texture.
        let padded = pad_pow2(&data);
        let pads = vec![PAD; padded.len()];
        let (w, _) = texture_dims(padded.len());
        let surface = Surface::from_channels(w, [&padded, &pads, &pads, &pads]);
        let mut dev = Device::new(GpuCostModel::geforce_6800_ultra());
        let sorted = pbsn_sort_surface(&mut dev, surface);
        assert!(sorted.channel(Channel::R).windows(2).all(|p| p[0] <= p[1]));
        let single = dev.stats().total_time();

        table.row([
            human_n(n),
            ms(four),
            ms(single),
            format!("{:.2}x", single.as_secs() / four.as_secs()),
        ]);
    }
    table.print(csv);
}

/// Ablation A2: Figure 2's row-block quads vs one quad per block per row.
fn ablation_rowblock(max: usize, csv: bool) {
    println!("# Ablation A2: row-block SortStep quads (Fig. 2) vs per-row quads");
    println!("# (identical fragments; the naive layout exposes per-quad overhead)\n");
    let mut table = Table::new(["n", "optimized ms", "naive ms", "quads opt", "quads naive"]);
    for n in sizes(max.min(1 << 20)) {
        let data = random_data(n / 4, 9); // per-channel length
        let padded = pad_pow2(&data);
        let (w, _) = texture_dims(padded.len());
        let surface = Surface::from_channels(w, [&padded, &padded, &padded, &padded]);

        let run = |naive: bool| {
            let mut dev = Device::new(GpuCostModel::geforce_6800_ultra());
            let tex = dev.upload_texture(surface.clone());
            if naive {
                pbsn_sort_device_naive(&mut dev, tex);
            } else {
                pbsn_sort_device(&mut dev, tex);
            }
            (dev.stats().total_time(), dev.stats().quads)
        };
        let (opt_t, opt_q) = run(false);
        let (naive_t, naive_q) = run(true);
        table.row([
            human_n(n),
            ms(opt_t),
            ms(naive_t),
            opt_q.to_string(),
            naive_q.to_string(),
        ]);
    }
    table.print(csv);
}
