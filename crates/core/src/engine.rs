//! Engine selection: who sorts the windows, on which simulated device.

/// The sorting engine behind an estimator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Engine {
    /// The paper's configuration: PBSN rasterization sorting on the
    /// simulated GeForce 6800 Ultra, 4 windows per batch, CPU summary
    /// maintenance.
    GpuSim,
    /// The CPU baseline: instrumented quicksort on the simulated 3.4 GHz
    /// Pentium IV.
    CpuSim,
    /// Host `slice::sort` with zero simulated time — functional testing and
    /// debugging only.
    Host,
}

impl Engine {
    /// Display label used by the figure harnesses.
    pub fn label(self) -> &'static str {
        match self {
            Engine::GpuSim => "GPU (6800 Ultra, simulated)",
            Engine::CpuSim => "CPU (P4 3.4 GHz, simulated)",
            Engine::Host => "host reference",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        assert_ne!(Engine::GpuSim.label(), Engine::CpuSim.label());
        assert_ne!(Engine::CpuSim.label(), Engine::Host.label());
    }
}
