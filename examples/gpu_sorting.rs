//! Direct use of the GPU sorting layer: sort a batch on the simulated
//! rasterization pipeline and inspect exactly what the device executed —
//! render passes, fragments, blend operations, bus traffic, and where the
//! simulated time went (the paper's §4).
//!
//! ```text
//! cargo run --release --example gpu_sorting
//! ```

use gsm::sort::{SortEngine, Sorter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 1 << 20;
    let mut rng = StdRng::seed_from_u64(3);
    let data: Vec<f32> = (0..n).map(|_| rng.random_range(0.0..1.0e6)).collect();

    println!("sorting {n} random f32 values on every engine:\n");
    for engine in SortEngine::ALL {
        let report = Sorter::new(engine).sort(&data);
        assert!(report.sorted.windows(2).all(|w| w[0] <= w[1]));
        println!(
            "{:<26} total {:>12}",
            engine.label(),
            format!("{}", report.total_time)
        );
        if let Some(gs) = &report.gpu_stats {
            println!(
                "    GPU: {} passes, {} quads, {} fragments, {} blend ops",
                gs.passes, gs.quads, gs.fragments, gs.blend_ops
            );
            println!(
                "    GPU: render {} + overhead {} + transfer {} ({} over the bus)",
                gs.render_time, gs.overhead_time, gs.transfer_time, gs.bus_bytes
            );
            // The paper's §4.5 measurement: effective cycles per blend.
            if gs.blend_ops > 0 {
                let cycles = report.gpu_time.as_secs() * 400e6 * 16.0;
                println!(
                    "    effective cycles/blend: {:.2} (paper: 6-7)",
                    cycles / gs.blend_ops as f64
                );
            }
        }
        if let Some(cs) = &report.cpu_stats {
            println!(
                "    CPU: {} reads, {} writes, {} branches ({:.1}% mispredicted), {} L2 misses",
                cs.reads,
                cs.writes,
                cs.branches,
                100.0 * cs.mispredict_rate(),
                cs.l2_misses
            );
        }
        println!();
    }
}
