//! Set-associative cache simulation.
//!
//! Write-allocate, LRU replacement, physical-address-free (the instrumented
//! algorithms use flat virtual addresses). Two levels compose into a
//! [`CacheHierarchy`] that returns the cycle cost of each access.

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two line size,
    /// capacity not divisible by `line × associativity`).
    pub fn sets(&self) -> u64 {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = self.capacity / self.line_bytes;
        assert_eq!(
            lines * self.line_bytes,
            self.capacity,
            "capacity must be line-aligned"
        );
        let sets = lines / self.associativity as u64;
        assert!(
            sets > 0 && sets * self.associativity as u64 == lines,
            "bad associativity"
        );
        sets
    }
}

/// One level of set-associative cache with LRU replacement.
///
/// Each set is a small vector of line tags ordered most-recently-used first;
/// with the associativities used here (4–8 ways) a linear scan beats any
/// fancier structure.
pub struct Cache {
    sets: Vec<Vec<u64>>,
    line_shift: u32,
    set_mask: u64,
    associativity: usize,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            sets: vec![Vec::with_capacity(config.associativity as usize); sets as usize],
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            associativity: config.associativity as usize,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses `addr`; returns `true` on hit. Misses allocate the line
    /// (write-allocate for both reads and writes), evicting LRU.
    ///
    /// Set indexing requires a power-of-two set count, which all the presets
    /// satisfy; [`CacheConfig::sets`] guarantees consistency.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            // Move to MRU position.
            if pos != 0 {
                set[..=pos].rotate_right(1);
            }
            self.hits += 1;
            true
        } else {
            if set.len() == self.associativity {
                set.pop();
            }
            set.insert(0, line);
            self.misses += 1;
            false
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidates all lines and zeroes the counters.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

/// A two-level cache hierarchy with fixed per-level latencies.
///
/// An access always pays `l1_latency`; an L1 miss adds `l2_latency`; an L2
/// miss adds `mem_latency`. The paper's round numbers for a Pentium IV are
/// 1–2, 10, and ~100 cycles respectively (§3.2).
pub struct CacheHierarchy {
    l1: Cache,
    l2: Cache,
    /// Cycles charged on every access.
    pub l1_latency: u64,
    /// Additional cycles on an L1 miss.
    pub l2_latency: u64,
    /// Additional cycles on an L2 miss.
    pub mem_latency: u64,
}

impl CacheHierarchy {
    /// Builds a hierarchy from two geometries and three latencies.
    pub fn new(
        l1: CacheConfig,
        l2: CacheConfig,
        l1_latency: u64,
        l2_latency: u64,
        mem_latency: u64,
    ) -> Self {
        CacheHierarchy {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            l1_latency,
            l2_latency,
            mem_latency,
        }
    }

    /// Performs one access and returns its cycle cost.
    #[inline]
    pub fn access(&mut self, addr: u64) -> u64 {
        let mut cycles = self.l1_latency;
        if !self.l1.access(addr) {
            cycles += self.l2_latency;
            if !self.l2.access(addr) {
                cycles += self.mem_latency;
            }
        }
        cycles
    }

    /// L1-level counters.
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// L2-level counters.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Invalidates both levels.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 lines of 64 B, 2-way: 2 sets.
        Cache::new(CacheConfig {
            capacity: 256,
            line_bytes: 64,
            associativity: 2,
        })
    }

    #[test]
    fn config_sets() {
        let c = CacheConfig {
            capacity: 16 << 10,
            line_bytes: 64,
            associativity: 8,
        };
        assert_eq!(c.sets(), 32);
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        let line = |k: u64| k * 64;
        // Lines 0, 2, 4 all map to set 0 (2 sets: even lines).
        c.access(line(0));
        c.access(line(2));
        // Touch line 0 so line 2 is LRU.
        c.access(line(0));
        // Line 4 evicts line 2.
        c.access(line(4));
        assert!(c.access(line(0)), "line 0 must survive");
        assert!(!c.access(line(2)), "line 2 must have been evicted");
    }

    #[test]
    fn sequential_scan_miss_rate_is_one_per_line() {
        // Streaming 4 KiB through a 256 B cache must miss exactly once per
        // 64 B line: 64 misses out of 1024 4-byte accesses.
        let mut c = tiny();
        for i in 0..1024u64 {
            c.access(i * 4);
        }
        assert_eq!(c.misses(), 64);
        assert_eq!(c.hits(), 960);
    }

    #[test]
    fn working_set_within_capacity_never_misses_after_warmup() {
        let mut c = tiny();
        // 4 lines exactly fill the cache.
        for round in 0..10 {
            for line in 0..4u64 {
                let hit = c.access(line * 64);
                if round > 0 {
                    assert!(hit, "round {round} line {line}");
                }
            }
        }
        assert_eq!(c.misses(), 4);
    }

    #[test]
    fn hierarchy_latencies_compose() {
        let l1 = CacheConfig {
            capacity: 128,
            line_bytes: 64,
            associativity: 2,
        };
        let l2 = CacheConfig {
            capacity: 512,
            line_bytes: 64,
            associativity: 2,
        };
        let mut h = CacheHierarchy::new(l1, l2, 1, 10, 100);
        // Cold: miss both levels.
        assert_eq!(h.access(0), 111);
        // Warm: L1 hit.
        assert_eq!(h.access(0), 1);
        // Evict from L1 (2 lines/set there) but not from L2.
        h.access(128);
        h.access(256);
        // addr 0 now misses L1, hits L2.
        assert_eq!(h.access(0), 11);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.access(0));
    }
}
