//! Criterion micro-benchmarks of the sorting engines' *host* cost: how fast
//! the simulation itself runs. (The simulated-device times the paper's
//! figures report come from the `figN_*` harness binaries; these benches
//! track the library's own performance so regressions in the simulator are
//! caught.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gsm_cpu::{CpuCostModel, Machine};
use gsm_gpu::Device;
use gsm_sort::channels::gpu_sort_rgba;
use gsm_sort::cpu::quicksort;
use gsm_sort::network::{apply_schedule, pbsn_schedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(0.0..1.0e6)).collect()
}

fn bench_gpu_pbsn(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpu_pbsn_sim");
    for n in [4096usize, 65_536] {
        let data = random_vec(n, 1);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                let mut dev = Device::ideal();
                let mut machine = Machine::new(CpuCostModel::ideal());
                gpu_sort_rgba(&mut dev, &mut machine, data)
            });
        });
    }
    group.finish();
}

fn bench_cpu_instrumented(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_quicksort_instrumented");
    for n in [4096usize, 65_536] {
        let data = random_vec(n, 2);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                let mut m = Machine::new(CpuCostModel::pentium4_3400());
                let mut copy = data.clone();
                quicksort(&mut copy, &mut m, 0);
                copy
            });
        });
    }
    group.finish();
}

fn bench_network_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("pbsn_schedule_reference");
    let n = 4096usize;
    let schedule = pbsn_schedule(n);
    let data = random_vec(n, 3);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(BenchmarkId::from_parameter(n), |b| {
        b.iter(|| {
            let mut copy = data.clone();
            apply_schedule(&mut copy, &schedule);
            copy
        });
    });
    group.finish();
}

fn bench_std_sort_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("host_std_sort");
    let n = 65_536usize;
    let data = random_vec(n, 4);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(BenchmarkId::from_parameter(n), |b| {
        b.iter(|| {
            let mut copy = data.clone();
            copy.sort_by(f32::total_cmp);
            copy
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gpu_pbsn,
    bench_cpu_instrumented,
    bench_network_reference,
    bench_std_sort_baseline
);
criterion_main!(benches);
