//! Property-based tests over the workspace's core invariants.

use gsm::core::{
    BitPrefixHierarchy, Engine, FrequencyEstimator, HhhEstimator, QuantileEstimator,
    SlidingFrequencyEstimator, SlidingQuantileEstimator,
};
use gsm::cpu::{CpuCostModel, Machine};
use gsm::gpu::Device;
use gsm::sketch::exact::ExactStats;
use gsm::sketch::summary::OpCounter;
use gsm::sketch::{GkSummary, LossyCounting, MisraGries, WindowSummary};
use gsm::sort::gpu_sort_rgba;
use gsm::sort::network::{apply_schedule, bitonic_schedule, pbsn_schedule};
use gsm::stream::F16;
use proptest::collection::vec;
use proptest::prelude::*;

/// Finite, NaN-free f32 values on a bounded range (the estimators' domain).
fn value() -> impl Strategy<Value = f32> {
    (-1.0e6f32..1.0e6).prop_map(|v| v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The GPU batch sorter (PBSN + 4-way merge) agrees with std sort on
    /// arbitrary inputs.
    #[test]
    fn gpu_sort_matches_std_sort(data in vec(value(), 1..700)) {
        let mut dev = Device::ideal();
        let mut machine = Machine::new(CpuCostModel::ideal());
        let sorted = gpu_sort_rgba(&mut dev, &mut machine, &data);
        let mut expect = data.clone();
        expect.sort_by(f32::total_cmp);
        prop_assert_eq!(sorted, expect);
    }

    /// Instrumented quicksort sorts and preserves the multiset.
    #[test]
    fn instrumented_quicksort_sorts(data in vec(value(), 0..2000)) {
        let mut m = Machine::new(CpuCostModel::pentium4_3400());
        let mut sorted = data.clone();
        gsm::sort::cpu::quicksort(&mut sorted, &mut m, 0);
        let mut expect = data;
        expect.sort_by(f32::total_cmp);
        prop_assert_eq!(sorted, expect);
    }

    /// PBSN and bitonic schedules sort arbitrary data at arbitrary
    /// power-of-two sizes (0-1 principle cross-check on real values).
    #[test]
    fn network_schedules_sort(data in vec(value(), 1..260), log_extra in 0u32..2) {
        let n = (data.len().next_power_of_two() << log_extra).max(2);
        let mut padded = data.clone();
        padded.resize(n, f32::INFINITY);
        let mut expect = padded.clone();
        expect.sort_by(f32::total_cmp);

        let mut a = padded.clone();
        apply_schedule(&mut a, &pbsn_schedule(n));
        prop_assert_eq!(&a, &expect);

        let mut b = padded;
        apply_schedule(&mut b, &bitonic_schedule(n));
        prop_assert_eq!(&b, &expect);
    }

    /// GK answers every quantile within eps*n ranks.
    #[test]
    fn gk_rank_error_bounded(data in vec(value(), 10..3000), eps in 0.01f64..0.3) {
        let mut gk = GkSummary::new(eps);
        for &v in &data {
            gk.insert(v);
        }
        prop_assert!(gk.check_invariant());
        let oracle = ExactStats::new(&data);
        for phi in [0.0, 0.3, 0.5, 0.8, 1.0] {
            let err = oracle.quantile_rank_error(phi, gk.query(phi));
            prop_assert!(err <= eps + 1.0 / data.len() as f64,
                "phi={} err={} eps={}", phi, err, eps);
        }
    }

    /// Window summaries: sample → merge → prune keeps every query within
    /// the claimed error bound.
    #[test]
    fn window_summary_pipeline_error_bounded(
        a in vec(value(), 2..400),
        b in vec(value(), 2..400),
        eps in 0.05f64..0.5,
    ) {
        let mut sa = a.clone();
        sa.sort_by(f32::total_cmp);
        let mut sb = b.clone();
        sb.sort_by(f32::total_cmp);
        let mut ops = OpCounter::default();
        let merged = WindowSummary::merge(
            &WindowSummary::from_sorted(&sa, eps),
            &WindowSummary::from_sorted(&sb, eps),
            &mut ops,
        );
        let pruned = merged.prune(16, &mut ops);
        let all: Vec<f32> = a.iter().chain(&b).copied().collect();
        let oracle = ExactStats::new(&all);
        for phi in [0.1, 0.5, 0.9] {
            let err = oracle.quantile_rank_error(phi, pruned.query(phi));
            prop_assert!(err <= pruned.eps() + 2.0 / all.len() as f64,
                "phi={} err={} claimed={}", phi, err, pruned.eps());
        }
    }

    /// Lossy counting never overestimates and never misses a heavy hitter.
    #[test]
    fn lossy_counting_guarantees(
        raw in vec(0u32..30, 200..3000),
        eps in 0.002f64..0.02,
    ) {
        let data: Vec<f32> = raw.iter().map(|&v| v as f32).collect();
        let mut lc = LossyCounting::new(eps);
        for chunk in data.chunks(lc.window()) {
            let mut w = chunk.to_vec();
            w.sort_by(f32::total_cmp);
            lc.push_sorted_window(&w);
        }
        let oracle = ExactStats::new(&data);
        let bound = (eps * data.len() as f64).ceil() as u64;
        for v in 0..30u32 {
            let est = lc.estimate(v as f32);
            let truth = oracle.frequency(v as f32);
            prop_assert!(est <= truth, "overestimate of {}: {} > {}", v, est, truth);
            prop_assert!(truth - est <= bound, "undercount of {}: {}", v, truth - est);
        }
    }

    /// Misra–Gries undercounts by at most n/(k+1).
    #[test]
    fn misra_gries_bound(raw in vec(0u32..50, 100..2000), k in 5usize..40) {
        let data: Vec<f32> = raw.iter().map(|&v| v as f32).collect();
        let mut mg = MisraGries::new(k);
        for &v in &data {
            mg.insert(v);
        }
        let oracle = ExactStats::new(&data);
        for v in 0..50u32 {
            let est = mg.estimate(v as f32);
            let truth = oracle.frequency(v as f32);
            prop_assert!(est <= truth);
            prop_assert!(truth - est <= mg.error_bound());
        }
    }

    /// Every estimator family is *byte-identical* across the four engines
    /// when fed through the shared window→sort→summary pipeline: the GPU
    /// and CPU simulators change only the simulated clock, and the real
    /// worker-pool engine changes only the wall clock — never an answer.
    #[test]
    fn engines_byte_identical_across_estimators(raw in vec(0u32..4000, 200..2500)) {
        // Integer-valued stream: HHH requires integer ids, and integers
        // keep every estimator's arithmetic engine-independent.
        let data: Vec<f32> = raw.iter().map(|&v| v as f32).collect();
        let n = data.len() as u64;

        let run = |engine: Engine| {
            let mut q = QuantileEstimator::builder(0.02).engine(engine).n_hint(n).build();
            q.push_all(data.iter().copied());
            let mut f = FrequencyEstimator::builder(0.005).engine(engine).build();
            f.push_all(data.iter().copied());
            let mut h =
                HhhEstimator::new(0.005, BitPrefixHierarchy::new(vec![4, 8]), engine);
            h.push_all(data.iter().copied());
            let mut sq = SlidingQuantileEstimator::new(0.05, 2000, engine);
            sq.push_all(data.iter().copied());
            let mut sf = SlidingFrequencyEstimator::new(0.05, 2000, engine);
            sf.push_all(data.iter().copied());
            (
                [q.query(0.1).to_bits(), q.query(0.5).to_bits(), q.query(0.9).to_bits()],
                f.heavy_hitters(0.01),
                h.query(0.05),
                [sq.query(0.25).to_bits(), sq.query(0.75).to_bits()],
                sf.heavy_hitters(0.06),
            )
        };

        let gpu = run(Engine::GpuSim);
        let cpu = run(Engine::CpuSim);
        let host = run(Engine::Host);
        let parallel = run(Engine::ParallelHost);
        prop_assert_eq!(&gpu, &cpu);
        prop_assert_eq!(&cpu, &host);
        prop_assert_eq!(&host, &parallel);
    }

    /// Software f16: round-trip exactness for representable values and
    /// monotone ordering for everything.
    #[test]
    fn f16_conversion_properties(x in -70000.0f32..70000.0, y in -70000.0f32..70000.0) {
        let hx = F16::from_f32(x);
        let hy = F16::from_f32(y);
        // Round-trip through f32 is idempotent.
        prop_assert_eq!(F16::from_f32(hx.to_f32()).to_bits(), hx.to_bits());
        // Conversion is monotone: x <= y implies hx <= hy.
        if x <= y {
            prop_assert!(hx.to_f32() <= hy.to_f32(), "{} -> {}, {} -> {}", x, hx, y, hy);
        }
        // Error within half an ulp: for normal range, relative error <= 2^-11.
        if hx.is_finite() && x != 0.0 && x.abs() >= 6.2e-5 {
            let rel = ((hx.to_f32() - x) / x).abs();
            prop_assert!(rel <= 4.9e-4, "rel err {} for {}", rel, x);
        }
    }
}
