//! Two-bit saturating-counter branch prediction.
//!
//! The Pentium IV pays a minimum 17-cycle penalty per mispredicted branch
//! (paper §3.2, citing \[45\]); sorting comparisons are data-dependent and
//! defeat the predictor roughly a third of the time on random inputs, which
//! is a large share of the CPU baseline's cost.

/// A pattern-history table of two-bit saturating counters indexed by branch
/// site ("PC").
///
/// Counter states: 0–1 predict not-taken, 2–3 predict taken. This is the
/// classic bimodal predictor — a reasonable stand-in for the Pentium IV's
/// front end at the fidelity of this model.
pub struct BranchPredictor {
    table: Vec<u8>,
    mask: u64,
    correct: u64,
    mispredicted: u64,
}

impl BranchPredictor {
    /// Builds a predictor with `entries` counters (rounded up to a power of
    /// two), initialized to weakly-not-taken.
    pub fn new(entries: usize) -> Self {
        let n = entries.next_power_of_two().max(2);
        BranchPredictor {
            table: vec![1; n],
            mask: (n - 1) as u64,
            correct: 0,
            mispredicted: 0,
        }
    }

    /// Records the outcome of a branch at site `pc`; returns `true` if it
    /// was predicted correctly.
    #[inline]
    pub fn observe(&mut self, pc: u64, taken: bool) -> bool {
        let ctr = &mut self.table[(pc & self.mask) as usize];
        let predicted_taken = *ctr >= 2;
        // Saturating update toward the outcome.
        if taken {
            if *ctr < 3 {
                *ctr += 1;
            }
        } else if *ctr > 0 {
            *ctr -= 1;
        }
        if predicted_taken == taken {
            self.correct += 1;
            true
        } else {
            self.mispredicted += 1;
            false
        }
    }

    /// Correctly predicted branches so far.
    pub fn correct(&self) -> u64 {
        self.correct
    }

    /// Mispredicted branches so far.
    pub fn mispredicted(&self) -> u64 {
        self.mispredicted
    }

    /// Misprediction rate in `[0, 1]` (0 if no branches observed).
    pub fn miss_rate(&self) -> f64 {
        let total = self.correct + self.mispredicted;
        if total == 0 {
            0.0
        } else {
            self.mispredicted as f64 / total as f64
        }
    }

    /// Clears counters and history.
    pub fn reset(&mut self) {
        self.table.fill(1);
        self.correct = 0;
        self.mispredicted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken_converges() {
        let mut bp = BranchPredictor::new(16);
        // First observation: counter 1 predicts not-taken → mispredict.
        assert!(!bp.observe(7, true));
        // Second: counter 2 predicts taken → correct, and forever after.
        for _ in 0..100 {
            assert!(bp.observe(7, true));
        }
        assert_eq!(bp.mispredicted(), 1);
    }

    #[test]
    fn alternating_pattern_defeats_bimodal() {
        let mut bp = BranchPredictor::new(16);
        let mut taken = false;
        for _ in 0..1000 {
            bp.observe(3, taken);
            taken = !taken;
        }
        // A strict T/NT alternation keeps the counter oscillating between
        // 1 and 2: the prediction is wrong about half the time.
        assert!(bp.miss_rate() > 0.4, "rate = {}", bp.miss_rate());
    }

    #[test]
    fn random_outcomes_mispredict_often() {
        let mut bp = BranchPredictor::new(64);
        // xorshift for determinism.
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..100_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            bp.observe(1, x & 1 == 0);
        }
        let rate = bp.miss_rate();
        assert!((0.3..0.7).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn distinct_sites_do_not_interfere() {
        let mut bp = BranchPredictor::new(16);
        for _ in 0..50 {
            bp.observe(0, true);
            bp.observe(1, false);
        }
        // Both sites converge: only the initial transient mispredicts.
        assert!(bp.mispredicted() <= 2);
    }

    #[test]
    fn reset_zeroes() {
        let mut bp = BranchPredictor::new(16);
        bp.observe(0, true);
        bp.reset();
        assert_eq!(bp.correct() + bp.mispredicted(), 0);
    }
}
