//! Correlated sum aggregates — the paper's §1.2 extension application.
//!
//! Over a stream of (flow duration, bytes) pairs, answer: "how many bytes
//! belong to the shortest φ-fraction of flows?" — `SUM{ bytes : duration ≤
//! Q_φ(duration) }`. Mice-and-elephants traffic makes the answer
//! interesting: most flows are short and tiny, most *bytes* ride a few
//! long flows.
//!
//! ```text
//! cargo run --release --example correlated_aggregate
//! ```

use gsm::core::{CorrelatedSumEstimator, Engine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let flows = 500_000usize;
    let eps = 0.005;
    let mut rng = StdRng::seed_from_u64(7);

    // Mice: 95% of flows, short and small. Elephants: 5%, long and huge.
    let pairs: Vec<(f32, f32)> = (0..flows)
        .map(|_| {
            if rng.random_range(0..100) < 95 {
                (
                    rng.random_range(0.01..1.0f32),
                    rng.random_range(1.0..20.0f32),
                )
            } else {
                (
                    rng.random_range(10.0..300.0f32),
                    rng.random_range(500.0..5000.0f32),
                )
            }
        })
        .collect();

    let mut est = CorrelatedSumEstimator::new(eps, Engine::GpuSim, flows as u64);
    est.push_all(pairs.iter().copied());
    let total = est.total_sum();

    // Exact oracle for comparison.
    let mut by_duration = pairs.clone();
    by_duration.sort_by(|a, b| a.0.total_cmp(&b.0));
    let exact_prefix = |phi: f64| -> f64 {
        let r = ((phi * flows as f64).ceil() as usize).clamp(1, flows);
        by_duration[..r].iter().map(|&(_, y)| y as f64).sum()
    };

    println!("{flows} flows, total bytes {total:.0} (tracked exactly)\n");
    println!(
        "{:>6}  {:>16}  {:>16}  {:>10}",
        "phi", "estimated bytes", "exact bytes", "share"
    );
    for phi in [0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
        let (lo, hi) = est.query_sum(phi);
        let mid = (lo + hi) / 2.0;
        let exact = exact_prefix(phi);
        println!(
            "{phi:>6}  {mid:>16.0}  {exact:>16.0}  {:>9.1}%",
            100.0 * exact / total
        );
        // The bounds interval must contain the truth up to the rank slack.
        let slack = eps * flows as f64 * 5000.0;
        assert!(lo - slack <= exact && exact <= hi + slack, "phi={phi}");
    }

    println!("\nreading: the shortest 95% of flows carry only a fraction of the bytes —");
    println!("the elephants dominate, and the estimator quantifies it in one pass,");
    println!("bounded memory, with the duration sort done on the (simulated) GPU.");
    println!(
        "\nsimulated time: {} | breakdown: {}",
        est.total_time(),
        est.breakdown()
    );
}
