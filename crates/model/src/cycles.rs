use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign};

/// A count of clock cycles on some clock domain.
///
/// Plain `u64` newtype so cycle ledgers cannot be accidentally mixed with
/// byte counts or element counts.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Debug)]
pub struct Cycles(u64);

impl Cycles {
    /// The zero count.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// The raw count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Adds `n` cycles, saturating on overflow.
    #[inline]
    pub fn bump(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_saturation() {
        let mut c = Cycles::new(10);
        c += Cycles::new(5);
        assert_eq!(c.get(), 15);
        c.bump(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
        assert_eq!((Cycles::new(u64::MAX) + Cycles::new(1)).get(), u64::MAX);
    }

    #[test]
    fn sum() {
        let total: Cycles = (1..=4).map(Cycles::new).sum();
        assert_eq!(total.get(), 10);
    }
}
