//! Shard-parallel ingestion: K independent window→sort→summary pipelines
//! behind one façade, merged at query time.
//!
//! The paper's summaries are merge-based — lossy counting folds window
//! histograms into a running summary, the exponential histogram pairwise
//! merges GK brackets — which makes them *partitionable*: split the stream
//! across K pipelines, let each maintain its own running summary over its
//! partition, and answer queries by merging the K summaries
//! ([`gsm_sketch::MergeableSummary`]). This module owns that layer:
//!
//! * [`ShardRouter`] — the deterministic partitioning policy. Routing
//!   depends only on the value (or, for round-robin, the arrival index),
//!   never on timing or engine, so a sharded run replays bit-identically
//!   from its seed.
//! * [`ShardedPipeline`] — K per-shard [`WindowedPipeline`]s (each with its
//!   own `SortBackend` and [`OpLedger`]), one shared
//!   [`WorkerPool`](gsm_sort::pool::WorkerPool) when the engine is
//!   [`Engine::ParallelHost`] (worker count stays the configured width,
//!   not width × shards), and on-demand summary merging with its own
//!   merge-op ledger.
//!
//! With `shards = 1` the façade is structurally a single
//! [`WindowedPipeline`] — same windowing, same batching, same sink — so
//! answers are byte-identical to the unsharded path.

use std::sync::Arc;

use gsm_obs::Recorder;
use gsm_sketch::{MergeableSummary, OpCounter, SummarySink};
use gsm_sort::pool::WorkerPool;

use super::batch::BatchPipeline;
use super::parallel::ParallelHostBackend;
use super::{OpLedger, WindowedPipeline};
use crate::engine::Engine;

/// A deterministic stream-partitioning policy.
///
/// Implementations must be pure functions of the value and their own
/// explicit state (e.g. a round-robin cursor): two replays of the same
/// stream must route every element identically, on any engine.
pub trait ShardRouter: Send {
    /// Picks the shard (`< shards`) for `value`.
    fn route(&mut self, value: f32, shards: usize) -> usize;

    /// Routes a whole batch, appending each value to its shard's staging
    /// buffer.
    ///
    /// The contract is strict equivalence with the scalar path: calling
    /// `route_batch(values, ..)` must leave the router's state and the
    /// staging buffers exactly as `for v in values { staging[route(v)] }`
    /// would — same shard per value, same relative order within each
    /// shard. The default implementation is that loop; implementations
    /// override it to amortize per-element work (one virtual call per
    /// batch instead of per element, run-length `extend_from_slice`,
    /// strided copies).
    fn route_batch(&mut self, values: &[f32], shards: usize, staging: &mut [Vec<f32>]) {
        for &v in values {
            let shard = self.route(v, shards);
            staging[shard].push(v);
        }
    }

    /// A stable name for checkpoints and reports.
    fn name(&self) -> &'static str;
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash partitioning on the value's bit pattern (SplitMix64 finalizer).
///
/// Stateless, so checkpoints need not carry router state; equal bit
/// patterns always land on the same shard, which keeps per-value frequency
/// counts whole within one shard.
#[derive(Clone, Copy, Default, Debug)]
pub struct HashRouter;

impl ShardRouter for HashRouter {
    fn route(&mut self, value: f32, shards: usize) -> usize {
        (splitmix64(u64::from(value.to_bits())) % shards as u64) as usize
    }

    fn route_batch(&mut self, values: &[f32], shards: usize, staging: &mut [Vec<f32>]) {
        if shards == 1 {
            staging[0].extend_from_slice(values);
            return;
        }
        // Monomorphic loop: one virtual dispatch per batch, not per value.
        for &v in values {
            let shard = (splitmix64(u64::from(v.to_bits())) % shards as u64) as usize;
            staging[shard].push(v);
        }
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

/// Round-robin partitioning on the arrival index.
///
/// Spreads load perfectly evenly but splits a value's occurrences across
/// shards (fine for mergeable counting summaries — counts are additive).
#[derive(Clone, Copy, Default, Debug)]
pub struct RoundRobinRouter {
    next: u64,
}

impl ShardRouter for RoundRobinRouter {
    fn route(&mut self, _value: f32, shards: usize) -> usize {
        let shard = (self.next % shards as u64) as usize;
        self.next = self.next.wrapping_add(1);
        shard
    }

    fn route_batch(&mut self, values: &[f32], shards: usize, staging: &mut [Vec<f32>]) {
        if shards == 1 {
            staging[0].extend_from_slice(values);
            self.next = self.next.wrapping_add(values.len() as u64);
            return;
        }
        // Shard assignment is index arithmetic, so each shard's share is a
        // strided view of the batch — one pass per shard, no per-value
        // routing call.
        let start = (self.next % shards as u64) as usize;
        for (s, stage) in staging.iter_mut().enumerate().take(shards) {
            let offset = (s + shards - start) % shards;
            stage.extend(values.iter().skip(offset).step_by(shards));
        }
        self.next = self.next.wrapping_add(values.len() as u64);
    }

    fn name(&self) -> &'static str {
        "round_robin"
    }
}

/// Range partitioning on ascending boundaries: shard `i` takes values in
/// `(boundaries[i-1], boundaries[i]]`, the last shard everything above.
#[derive(Clone, Debug)]
pub struct RangeRouter {
    boundaries: Vec<f32>,
}

impl RangeRouter {
    /// Creates a range router from ascending shard boundaries; with `k`
    /// shards, pass `k - 1` boundaries.
    ///
    /// # Panics
    ///
    /// Panics if the boundaries are not ascending in `total_cmp` order.
    pub fn new(boundaries: Vec<f32>) -> Self {
        assert!(
            boundaries.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()),
            "range boundaries must be ascending"
        );
        RangeRouter { boundaries }
    }
}

impl ShardRouter for RangeRouter {
    fn route(&mut self, value: f32, shards: usize) -> usize {
        let idx = self
            .boundaries
            .partition_point(|b| b.total_cmp(&value).is_lt());
        idx.min(shards - 1)
    }

    fn route_batch(&mut self, values: &[f32], shards: usize, staging: &mut [Vec<f32>]) {
        if shards == 1 {
            staging[0].extend_from_slice(values);
            return;
        }
        // Range-partitioned streams are typically locally clustered, so
        // consecutive values tend to share a shard: binary-search each value
        // once, but copy whole same-shard runs with one `extend_from_slice`.
        let Some(&first) = values.first() else {
            return;
        };
        let mut run_start = 0;
        let mut run_shard = self.route(first, shards);
        for (idx, &v) in values.iter().enumerate().skip(1) {
            let shard = self.route(v, shards);
            if shard != run_shard {
                staging[run_shard].extend_from_slice(&values[run_start..idx]);
                run_start = idx;
                run_shard = shard;
            }
        }
        staging[run_shard].extend_from_slice(&values[run_start..]);
    }

    fn name(&self) -> &'static str {
        "range"
    }
}

/// K per-shard [`WindowedPipeline`]s behind one ingest façade, with
/// queries answered by merging the shard summaries on demand.
///
/// ```
/// use gsm_core::{Engine, ShardedPipeline};
/// use gsm_sketch::LossyCounting;
///
/// let mut p = ShardedPipeline::new(Engine::Host, 100, 4, |_| {
///     LossyCounting::with_window(0.01, 100)
/// });
/// for i in 0..4000 {
///     p.push((i % 4) as f32);
/// }
/// let merged = p.merged_sink();
/// assert_eq!(merged.count(), 4000);
/// ```
pub struct ShardedPipeline<S> {
    shards: Vec<WindowedPipeline<S>>,
    router: Box<dyn ShardRouter>,
    /// The worker pool shared by every shard's `ParallelHost` backend
    /// (`None` on other engines, which have no threads to share).
    pool: Option<Arc<WorkerPool>>,
    obs: Recorder,
    /// Cumulative query-time merge work (never part of the shards' ingest
    /// ledgers).
    merge_ops: OpCounter,
    /// Per-shard staging buffers reused across [`ShardedPipeline::push_batch`]
    /// calls (cleared after each drain, capacity retained).
    staging: Vec<Vec<f32>>,
}

/// One worker per available hardware thread, capped at four — the same
/// policy as [`WorkerPool::with_default_threads`], reproduced here because
/// a recorder-carrying pool must be built in one step.
fn default_pool_width() -> usize {
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .clamp(1, 4)
}

impl<S: SummarySink> ShardedPipeline<S> {
    /// Creates a sharded pipeline with `shards` per-shard pipelines (each
    /// cutting `window`-element windows sorted on `engine`) and the default
    /// [`HashRouter`]. `make_sink(i)` builds shard `i`'s sink; shard sinks
    /// must share one configuration or query-time merging will panic.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `window` is zero.
    pub fn new(
        engine: Engine,
        window: usize,
        shards: usize,
        make_sink: impl FnMut(usize) -> S,
    ) -> Self {
        Self::with_router(engine, window, shards, make_sink, Box::new(HashRouter))
    }

    /// Like [`ShardedPipeline::new`] with an explicit routing policy.
    pub fn with_router(
        engine: Engine,
        window: usize,
        shards: usize,
        mut make_sink: impl FnMut(usize) -> S,
        router: Box<dyn ShardRouter>,
    ) -> Self {
        assert!(shards >= 1, "a sharded pipeline needs at least one shard");
        let sinks: Vec<S> = (0..shards).map(&mut make_sink).collect();
        Self::assemble(engine, window, sinks, router, Recorder::disabled(), None)
    }

    /// Installs an observability recorder. The pipeline hands shard `i` a
    /// handle scoped with a `("shard", "i")` label (see
    /// [`Recorder::scoped`]), so window spans, absorb counters, queue-depth
    /// gauges, and merge ops are attributable per shard while
    /// [`Recorder::counter_total`] still aggregates. With one shard the
    /// unscoped handle is used — a single-owner pipeline keeps its
    /// pre-sharding metric identity.
    ///
    /// Call at build time: the shard pipelines (and the shared worker pool,
    /// whose workers capture the recorder at spawn) are rebuilt around the
    /// recorder.
    ///
    /// # Panics
    ///
    /// Panics if any element was already pushed.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        assert!(
            self.shards
                .iter()
                .all(|s| s.windows_sorted() == 0 && s.unabsorbed() == 0),
            "install the recorder before pushing elements"
        );
        let engine = self.engine();
        let window = self.window();
        let width = self.pool.as_ref().map(|p| p.threads());
        let sinks: Vec<S> = self
            .shards
            .drain(..)
            .map(WindowedPipeline::into_sink)
            .collect();
        Self::assemble(engine, window, sinks, self.router, rec, width)
    }

    /// Builds the shard pipelines (and the shared pool, if the engine needs
    /// one) around `rec`.
    fn assemble(
        engine: Engine,
        window: usize,
        sinks: Vec<S>,
        router: Box<dyn ShardRouter>,
        rec: Recorder,
        pool_width: Option<usize>,
    ) -> Self {
        let pool = (engine == Engine::ParallelHost).then(|| {
            let width = pool_width.unwrap_or_else(default_pool_width);
            WorkerPool::with_recorder(width, rec.clone()).into_shared()
        });
        let shards = sinks.len();
        let shards: Vec<WindowedPipeline<S>> = sinks
            .into_iter()
            .enumerate()
            .map(|(i, sink)| {
                let batch = match &pool {
                    Some(p) => BatchPipeline::with_backend(Box::new(
                        ParallelHostBackend::over_shared(Arc::clone(p)),
                    )),
                    None => BatchPipeline::new(engine),
                };
                let mut wp = WindowedPipeline::over(batch, window, sink);
                if rec.is_enabled() {
                    let handle = if shards > 1 {
                        rec.scoped("shard", &i.to_string())
                    } else {
                        rec.clone()
                    };
                    wp = wp.with_recorder(handle);
                }
                wp
            })
            .collect();
        let staging = (0..shards.len()).map(|_| Vec::new()).collect();
        ShardedPipeline {
            shards,
            router,
            pool,
            obs: rec,
            merge_ops: OpCounter::default(),
            staging,
        }
    }

    /// The engine sorting every shard's windows.
    pub fn engine(&self) -> Engine {
        self.shards[0].engine()
    }

    /// The per-shard window size in elements.
    pub fn window(&self) -> usize {
        self.shards[0].window()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The routing policy's stable name.
    pub fn router_name(&self) -> &'static str {
        self.router.name()
    }

    /// The worker pool shared by the shards' `ParallelHost` backends
    /// (`None` on other engines).
    pub fn pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.as_ref()
    }

    /// The recorder installed via [`ShardedPipeline::with_recorder`]
    /// (disabled otherwise). This is the unscoped handle — use
    /// [`Recorder::counter_total`] to aggregate across shard labels.
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Shard `i`'s pipeline (for per-shard inspection).
    pub fn shard(&self, i: usize) -> &WindowedPipeline<S> {
        &self.shards[i]
    }

    /// Mutable access to shard `i`'s pipeline.
    pub fn shard_mut(&mut self, i: usize) -> &mut WindowedPipeline<S> {
        &mut self.shards[i]
    }

    /// All shard pipelines, in shard order.
    pub fn shards(&self) -> &[WindowedPipeline<S>] {
        &self.shards
    }

    /// Consumes the pipeline, returning every shard's sink in shard order.
    pub fn into_sinks(self) -> Vec<S> {
        self.shards
            .into_iter()
            .map(WindowedPipeline::into_sink)
            .collect()
    }

    /// Windows fully sorted across all shards.
    pub fn windows_sorted(&self) -> u64 {
        self.shards
            .iter()
            .map(WindowedPipeline::windows_sorted)
            .sum()
    }

    /// Elements pushed but not yet folded into a shard sink.
    pub fn unabsorbed(&self) -> u64 {
        self.shards.iter().map(WindowedPipeline::unabsorbed).sum()
    }

    /// Cumulative query-time merge work (see
    /// [`ShardedPipeline::merged_sink`]); disjoint from the per-shard
    /// ingest ledgers.
    pub fn merge_ops(&self) -> OpCounter {
        self.merge_ops
    }

    /// Sums the shard ledgers into one (simulated times, sink ops, and
    /// wall-clock overlap are all additive across shards).
    pub fn ledger(&self) -> OpLedger {
        let mut total = OpLedger::default();
        for s in &self.shards {
            let l = s.ledger();
            total.sort += l.sort;
            total.transfer += l.transfer;
            total.ops.absorb(l.ops);
            total.wall.sorting += l.wall.sorting;
            total.wall.blocked += l.wall.blocked;
        }
        total
    }

    /// Routes one stream element to its shard.
    pub fn push(&mut self, value: f32) {
        let shard = self.router.route(value, self.shards.len());
        self.shards[shard].push(value);
    }

    /// Routes a whole batch: one [`ShardRouter::route_batch`] pass into
    /// per-shard staging buffers, then one slice fill
    /// ([`WindowedPipeline::push_slice`]) per shard.
    ///
    /// Per-shard element order — and therefore every shard's window
    /// contents, seal sequence, and sink state — is identical to pushing
    /// the same values one at a time, because routing is a pure function
    /// of value / arrival index and each shard's pipeline sees its own
    /// subsequence in arrival order. The staging buffers are owned by the
    /// pipeline and reused across calls, so steady-state batches allocate
    /// nothing.
    pub fn push_batch(&mut self, values: &[f32]) {
        if values.is_empty() {
            return;
        }
        if self.shards.len() == 1 {
            self.shards[0].push_slice(values);
            return;
        }
        self.router
            .route_batch(values, self.shards.len(), &mut self.staging);
        for (shard, stage) in self.shards.iter_mut().zip(self.staging.iter_mut()) {
            if !stage.is_empty() {
                shard.push_slice(stage);
                stage.clear();
            }
        }
    }

    /// Forces every shard's buffered data through its pipeline and into
    /// its sink, then samples per-shard queue depth.
    pub fn flush(&mut self) {
        for s in &mut self.shards {
            s.flush();
        }
        self.publish_depth();
    }

    /// Samples each shard's unabsorbed backlog into its scoped
    /// `shard_unabsorbed` gauge (cheap enough for barrier points — flush
    /// and query — not per push).
    fn publish_depth(&self) {
        if !self.obs.is_enabled() {
            return;
        }
        for s in &self.shards {
            let depth = i64::try_from(s.unabsorbed()).unwrap_or(i64::MAX);
            s.recorder().gauge_set("shard_unabsorbed", depth);
        }
    }
}

impl<S: MergeableSummary + Clone> ShardedPipeline<S> {
    /// Flushes every shard and merges the shard summaries into one answer
    /// summary, charging the merge work to [`ShardedPipeline::merge_ops`]
    /// (and a `shard_merge_ops` counter when a recorder is installed).
    ///
    /// With one shard this is a plain clone — no merge runs, so answers
    /// are byte-identical to the unsharded pipeline's sink.
    pub fn merged_sink(&mut self) -> S {
        self.flush();
        let mut merged = self.shards[0].sink().clone();
        if self.shards.len() > 1 {
            let mut ops = OpCounter::default();
            for s in &self.shards[1..] {
                merged.merge_from(s.sink(), &mut ops);
            }
            self.merge_ops.absorb(ops);
            self.obs.count("shard_merges", 1);
            self.obs.count("shard_merge_ops", ops.total());
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_sketch::LossyCounting;

    fn stream(n: usize) -> impl Iterator<Item = f32> {
        (0..n as u64).map(|i| ((i * 2654435761) % 97) as f32)
    }

    fn sink() -> LossyCounting {
        LossyCounting::with_window(0.005, 200)
    }

    #[test]
    fn one_shard_is_byte_identical_to_windowed_pipeline() {
        for engine in [
            Engine::GpuSim,
            Engine::CpuSim,
            Engine::Host,
            Engine::ParallelHost,
        ] {
            let mut plain = WindowedPipeline::new(engine, 200, sink());
            let mut sharded = ShardedPipeline::new(engine, 200, 1, |_| sink());
            for v in stream(5000) {
                plain.push(v);
                sharded.push(v);
            }
            plain.flush();
            let merged = sharded.merged_sink();
            assert_eq!(
                serde_json::to_string(&merged).unwrap(),
                serde_json::to_string(plain.sink()).unwrap(),
                "k=1 must be byte-identical on {engine:?}"
            );
            assert_eq!(sharded.merge_ops().total(), 0, "no merge ran for k=1");
        }
    }

    #[test]
    fn hash_router_is_deterministic_and_value_stable() {
        let mut a = HashRouter;
        let mut b = HashRouter;
        for v in stream(1000) {
            assert_eq!(a.route(v, 4), b.route(v, 4));
        }
        // Equal values always land on one shard.
        let s = a.route(13.0, 4);
        for _ in 0..10 {
            assert_eq!(a.route(13.0, 4), s);
        }
    }

    #[test]
    fn round_robin_cycles_and_range_partitions() {
        let mut rr = RoundRobinRouter::default();
        let hits: Vec<usize> = (0..6).map(|_| rr.route(0.0, 3)).collect();
        assert_eq!(hits, vec![0, 1, 2, 0, 1, 2]);

        let mut range = RangeRouter::new(vec![10.0, 20.0]);
        assert_eq!(range.route(5.0, 3), 0);
        assert_eq!(range.route(10.0, 3), 0, "boundary value stays low");
        assert_eq!(range.route(15.0, 3), 1);
        assert_eq!(range.route(25.0, 3), 2);
    }

    #[test]
    fn merged_answers_cover_the_whole_stream() {
        for router in [
            Box::new(HashRouter) as Box<dyn ShardRouter>,
            Box::<RoundRobinRouter>::default(),
        ] {
            let mut p = ShardedPipeline::with_router(Engine::Host, 200, 4, |_| sink(), router);
            for v in stream(5000) {
                p.push(v);
            }
            let merged = p.merged_sink();
            assert_eq!(merged.count(), 5000);
            assert!(p.merge_ops().total() > 0);
            assert!(
                p.shards().iter().all(|s| s.windows_sorted() > 0),
                "every shard must see data"
            );
            assert_eq!(p.unabsorbed(), 0);
        }
    }

    #[test]
    fn parallel_host_shards_share_one_pool() {
        let mut p = ShardedPipeline::new(Engine::ParallelHost, 100, 4, |_| {
            LossyCounting::with_window(0.01, 100)
        });
        let pool = Arc::clone(p.pool().expect("parallel host builds a pool"));
        // One Arc per shard backend + the pipeline's own + our local clone.
        assert_eq!(Arc::strong_count(&pool), 6);
        assert!(
            pool.threads() <= default_pool_width(),
            "worker count bounded by configured width, not width × shards"
        );
        for v in stream(4000) {
            p.push(v);
        }
        let merged = p.merged_sink();
        assert_eq!(merged.count(), 4000);
    }

    #[test]
    fn recorder_gets_a_per_shard_dimension() {
        let rec = Recorder::enabled();
        let mut p = ShardedPipeline::new(Engine::Host, 100, 2, |_| {
            LossyCounting::with_window(0.01, 100)
        })
        .with_recorder(rec.clone());
        for v in stream(1000) {
            p.push(v);
        }
        let _ = p.merged_sink();
        let total = rec.counter_total("windows_absorbed");
        let s0 = rec.counter_labeled("windows_absorbed", ("shard", "0"));
        let s1 = rec.counter_labeled("windows_absorbed", ("shard", "1"));
        assert!(s0 > 0 && s1 > 0, "both shards must absorb windows");
        assert_eq!(total, s0 + s1, "shard labels partition the total");
        assert_eq!(rec.counter("shard_merges"), 1);
        assert!(rec.counter("shard_merge_ops") > 0);
        assert!(
            rec.gauge_labeled("shard_unabsorbed", ("shard", "0"))
                .is_some(),
            "queue depth sampled per shard"
        );
        assert!(
            rec.histogram_labeled("window_sort", ("shard", "1"))
                .is_some(),
            "sort spans labeled per shard"
        );
    }

    #[test]
    fn single_shard_keeps_unscoped_metrics() {
        let rec = Recorder::enabled();
        let mut p = ShardedPipeline::new(Engine::Host, 100, 1, |_| {
            LossyCounting::with_window(0.01, 100)
        })
        .with_recorder(rec.clone());
        for v in stream(500) {
            p.push(v);
        }
        p.flush();
        assert_eq!(rec.counter("windows_absorbed"), 5);
        assert_eq!(rec.counter_labeled("windows_absorbed", ("shard", "0")), 0);
    }
}
