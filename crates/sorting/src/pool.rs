//! A fixed worker pool sorting window lanes on host threads.
//!
//! The paper's throughput comes from *overlap*: the co-processor sorts
//! window *k* while the CPU ingests window *k+1*, and the four RGBA lanes
//! of one texture sort concurrently. This module is the host-threaded
//! analogue: a fixed set of `std::thread` workers fed over channels, each
//! sorting one PBSN channel lane (see [`crate::layout::split_channels`])
//! with the branchless key sort in [`crate::radix`], while the submitting
//! thread keeps ingesting and later merges the sorted lanes (see
//! [`crate::merge::merge4_plain`]).
//!
//! Threading contract:
//!
//! * the **submitting thread** owns all accounting — workers only return
//!   sorted data plus how long they were busy;
//! * a panic inside a worker task is caught and surfaces as a
//!   [`PoolError::WorkerPanic`] from [`Ticket::wait`], never a hang, and
//!   the worker survives to serve later jobs;
//! * dropping the pool closes the job channel; workers drain any queued
//!   jobs (outstanding tickets still complete) and exit, and the pool's
//!   `Drop` joins them.
//!
//! Observability: a pool built with [`WorkerPool::with_recorder`] publishes
//! a queue-depth gauge (`pool_queue_depth`, with high-water mark), ticket
//! wait and task service latency histograms (`pool_wait` / `pool_service`),
//! per-worker task counters (`pool_worker_tasks{worker=i}`), executed radix
//! pass counts (`pool_radix_passes`), and a panic counter (`pool_panics`).
//! The default recorder is disabled, so an uninstrumented pool pays one
//! branch per event.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gsm_obs::Recorder;

use crate::radix::sort_total;

/// Why a pool submission failed to produce sorted lanes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// A worker task panicked; the payload is the panic message.
    WorkerPanic(String),
    /// Every result sender vanished before the batch completed (the pool
    /// and its queued jobs were dropped).
    Disconnected,
    /// [`Ticket::wait_timeout`] gave up waiting.
    Timeout,
}

impl core::fmt::Display for PoolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PoolError::WorkerPanic(msg) => write!(f, "worker task panicked: {msg}"),
            PoolError::Disconnected => write!(f, "worker pool disconnected before completion"),
            PoolError::Timeout => write!(f, "timed out waiting for sorted lanes"),
        }
    }
}

impl std::error::Error for PoolError {}

/// A unit of work: sort something, return the sorted lane.
pub type Task = Box<dyn FnOnce() -> Vec<f32> + Send + 'static>;

struct Job {
    lane: usize,
    task: Task,
    reply: Sender<LaneDone>,
}

struct LaneDone {
    lane: usize,
    result: Result<Vec<f32>, PoolError>,
    busy: Duration,
}

/// One submitted batch's sorted lanes, in submission order.
#[derive(Debug)]
pub struct SortedLanes {
    /// The sorted lanes, index-aligned with the submitted batch.
    pub lanes: Vec<Vec<f32>>,
    /// The batch's background critical path: the longest single lane's
    /// wall-clock sort time.
    pub busy: Duration,
}

/// A handle to one in-flight batch of lane sorts.
///
/// The ticket is independent of any other batch: waiting on it never
/// consumes another ticket's results, so batches may be collected in any
/// order (the pipeline collects oldest-first to preserve stream order).
pub struct Ticket {
    rx: Receiver<LaneDone>,
    lanes: usize,
    obs: Recorder,
    submitted: Instant,
}

impl Ticket {
    /// Blocks until every lane of the batch is sorted.
    ///
    /// Returns [`PoolError::WorkerPanic`] if any lane's task panicked and
    /// [`PoolError::Disconnected`] if the pool was torn down with this
    /// batch's jobs still queued and then discarded.
    pub fn wait(self) -> Result<SortedLanes, PoolError> {
        self.gather(None)
    }

    /// Like [`Ticket::wait`], but gives up after `timeout` (total across
    /// the whole batch) with [`PoolError::Timeout`].
    pub fn wait_timeout(self, timeout: Duration) -> Result<SortedLanes, PoolError> {
        self.gather(Some(timeout))
    }

    fn gather(self, timeout: Option<Duration>) -> Result<SortedLanes, PoolError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut lanes: Vec<Option<Vec<f32>>> = (0..self.lanes).map(|_| None).collect();
        let mut busy = Duration::ZERO;
        for _ in 0..self.lanes {
            let done = match deadline {
                None => self.rx.recv().map_err(|_| PoolError::Disconnected)?,
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    self.rx.recv_timeout(left).map_err(|e| match e {
                        RecvTimeoutError::Timeout => PoolError::Timeout,
                        RecvTimeoutError::Disconnected => PoolError::Disconnected,
                    })?
                }
            };
            busy = busy.max(done.busy);
            lanes[done.lane] = Some(done.result?);
        }
        let lanes = lanes
            .into_iter()
            .map(|l| l.expect("every lane reported"))
            .collect();
        if self.obs.is_enabled() {
            // Ticket wait latency: submission to full-batch completion
            // (queueing + service + gather), on the submitting thread.
            self.obs.observe_ns(
                "pool_wait",
                u64::try_from(self.submitted.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
        Ok(SortedLanes { lanes, busy })
    }
}

/// A fixed pool of host worker threads sorting lanes submitted over a
/// channel.
///
/// ```
/// use gsm_sort::pool::WorkerPool;
///
/// let pool = WorkerPool::new(2);
/// let ticket = pool.sort_lanes(vec![vec![3.0, 1.0, 2.0], vec![5.0, 4.0]]);
/// let done = ticket.wait().unwrap();
/// assert_eq!(done.lanes, vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0]]);
/// ```
pub struct WorkerPool {
    jobs: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    obs: Recorder,
}

impl WorkerPool {
    /// Spawns a pool of exactly `threads` workers with observability off.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        Self::with_recorder(threads, Recorder::disabled())
    }

    /// Spawns a pool of exactly `threads` workers publishing pool metrics
    /// into `obs` (see the module docs for the metric taxonomy). Workers
    /// capture a clone of the recorder at spawn, so the recorder must be
    /// chosen before the pool is built.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_recorder(threads: usize, obs: Recorder) -> Self {
        assert!(threads >= 1, "a worker pool needs at least one worker");
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let obs = obs.clone();
                std::thread::Builder::new()
                    .name(format!("gsm-sort-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &obs, i))
                    .expect("spawn sort worker")
            })
            .collect();
        WorkerPool {
            jobs: Some(tx),
            workers,
            obs,
        }
    }

    /// Spawns one worker per available hardware thread, capped at four —
    /// one per PBSN channel lane, the widest a single batch fans out.
    pub fn with_default_threads() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self::new(threads.clamp(1, 4))
    }

    /// Wraps the pool in an [`Arc`] so several submitters (e.g. the
    /// per-shard `ParallelHost` backends of a sharded pipeline) can share
    /// one fixed set of workers. Submission takes `&self`, so a shared
    /// pool needs no further locking, and the worker count stays the
    /// configured width — not width × submitters.
    pub fn into_shared(self) -> Arc<WorkerPool> {
        Arc::new(self)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// The recorder this pool publishes metrics into (disabled unless the
    /// pool was built with [`WorkerPool::with_recorder`]).
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Submits one batch of lanes to sort in [`f32::total_cmp`] order,
    /// returning immediately with a [`Ticket`] for the results.
    pub fn sort_lanes(&self, lanes: Vec<Vec<f32>>) -> Ticket {
        let obs = self.obs.clone();
        self.submit(lanes.into_iter().map(move |mut lane| {
            let obs = obs.clone();
            let task: Task = Box::new(move || {
                let passes = sort_total(&mut lane);
                obs.count("pool_radix_passes", u64::from(passes));
                lane
            });
            task
        }))
    }

    /// Submits arbitrary lane tasks (used by tests to inject failures).
    pub fn submit<I: IntoIterator<Item = Task>>(&self, tasks: I) -> Ticket {
        let (reply, rx) = channel::<LaneDone>();
        let jobs = self.jobs.as_ref().expect("job channel lives until drop");
        let mut lanes = 0;
        for (lane, task) in tasks.into_iter().enumerate() {
            jobs.send(Job {
                lane,
                task,
                reply: reply.clone(),
            })
            .expect("workers outlive the pool");
            self.obs.gauge_add("pool_queue_depth", 1);
            lanes += 1;
        }
        Ticket {
            rx,
            lanes,
            obs: self.obs.clone(),
            submitted: Instant::now(),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.jobs.take()); // close the channel; workers drain and exit
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(jobs: &Mutex<Receiver<Job>>, obs: &Recorder, worker: usize) {
    loop {
        // Hold the lock only while waiting for the next job; execution
        // happens with the queue released so other workers can pull work.
        let job = match jobs.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // queue poisoned: pool is tearing down
        };
        let Ok(job) = job else { return };
        obs.gauge_add("pool_queue_depth", -1);
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(job.task)).map_err(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            PoolError::WorkerPanic(msg)
        });
        let busy = start.elapsed();
        if obs.is_enabled() {
            obs.observe_ns(
                "pool_service",
                u64::try_from(busy.as_nanos()).unwrap_or(u64::MAX),
            );
            obs.count_labeled("pool_worker_tasks", ("worker", &worker.to_string()), 1);
            if result.is_err() {
                obs.count("pool_panics", 1);
            }
        }
        // The ticket may already have been dropped; that is not an error.
        let _ = job.reply.send(LaneDone {
            lane: job.lane,
            result,
            busy,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_lanes_in_submission_order() {
        let pool = WorkerPool::new(3);
        let lanes: Vec<Vec<f32>> = (0..7).map(|k| vec![3.0 + k as f32, 1.0, 2.0]).collect();
        let done = pool.sort_lanes(lanes).wait().unwrap();
        assert_eq!(done.lanes.len(), 7);
        for (k, lane) in done.lanes.iter().enumerate() {
            assert_eq!(*lane, vec![1.0, 2.0, 3.0 + k as f32]);
        }
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let pool = WorkerPool::new(1);
        let done = pool.sort_lanes(Vec::new()).wait().unwrap();
        assert!(done.lanes.is_empty());
        assert_eq!(done.busy, Duration::ZERO);
    }

    #[test]
    fn panic_is_an_error_not_a_hang() {
        let pool = WorkerPool::new(2);
        let tasks: Vec<Task> = vec![Box::new(|| vec![1.0]), Box::new(|| panic!("lane exploded"))];
        let err = pool
            .submit(tasks)
            .wait_timeout(Duration::from_secs(10))
            .unwrap_err();
        assert_eq!(err, PoolError::WorkerPanic("lane exploded".to_string()));
        // The worker survives the panic and serves later jobs.
        let done = pool.sort_lanes(vec![vec![2.0, 1.0]]).wait().unwrap();
        assert_eq!(done.lanes, vec![vec![1.0, 2.0]]);
    }

    #[test]
    fn dropping_the_pool_still_completes_outstanding_tickets() {
        let pool = WorkerPool::new(1);
        let ticket = pool.sort_lanes(vec![vec![2.0, 1.0], vec![4.0, 3.0]]);
        drop(pool); // closes the queue; the worker drains it before exiting
        let done = ticket.wait_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(done.lanes, vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
    }
}
