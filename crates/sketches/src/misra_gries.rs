//! The Misra–Gries / Frequent(k) counter summary — the earliest
//! deterministic approximate frequency algorithm (paper §2.1: "One of the
//! earliest sample-based deterministic algorithms for approximate frequency
//! counts was presented by Misra and Gries. Recently, Demaine et al. and
//! Karp et al. re-discovered the same algorithm and reduced its worst case
//! processing time to O(1)").
//!
//! Maintains at most `k` counters; every element with true frequency
//! `> N/(k+1)` is guaranteed to hold a counter, and each counter
//! underestimates its element's frequency by at most `N/(k+1)`.
//!
//! Serves as the per-element baseline for the window-based ablation (A4)
//! and as a building block of the sliding-window frequency sketch.

use std::collections::HashMap;

/// A Misra–Gries summary with up to `k` counters.
#[derive(serde::Serialize, serde::Deserialize)]
pub struct MisraGries {
    k: usize,
    counters: HashMap<u32, u64>,
    n: u64,
}

impl MisraGries {
    /// Creates a summary with `k` counters (error bound `N/(k+1)`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one counter");
        MisraGries {
            k,
            counters: HashMap::with_capacity(k + 1),
            n: 0,
        }
    }

    /// Counter budget.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Elements processed.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Live counters (≤ k).
    pub fn counter_count(&self) -> usize {
        self.counters.len()
    }

    /// Processes one element (amortized O(1)).
    pub fn insert(&mut self, value: f32) {
        debug_assert!(!value.is_nan(), "summaries are NaN-free");
        self.n += 1;
        let key = value.to_bits();
        if let Some(c) = self.counters.get_mut(&key) {
            *c += 1;
        } else if self.counters.len() < self.k {
            self.counters.insert(key, 1);
        } else {
            // Decrement-all: the O(1)-amortized variant removes zeros lazily.
            self.counters.retain(|_, c| {
                *c -= 1;
                *c > 0
            });
        }
    }

    /// The estimated frequency of `value` (underestimate by ≤ `N/(k+1)`).
    pub fn estimate(&self, value: f32) -> u64 {
        self.counters.get(&value.to_bits()).copied().unwrap_or(0)
    }

    /// All candidates with estimated frequency ≥ `threshold`, ascending by
    /// value. Contains every element with true frequency
    /// ≥ `threshold + N/(k+1)`.
    pub fn candidates(&self, threshold: u64) -> Vec<(f32, u64)> {
        let mut out: Vec<(f32, u64)> = self
            .counters
            .iter()
            .filter(|(_, &c)| c >= threshold)
            .map(|(&bits, &c)| (f32::from_bits(bits), c))
            .collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    /// The guaranteed maximum undercount, `N/(k+1)`.
    pub fn error_bound(&self) -> u64 {
        self.n / (self.k as u64 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactStats;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn majority_element_survives() {
        // k=1 is the Boyer–Moore majority vote.
        let mut mg = MisraGries::new(1);
        let data: Vec<f32> = (0..99)
            .map(|i| {
                if i % 3 == 0 || i % 3 == 1 {
                    7.0
                } else {
                    i as f32
                }
            })
            .collect();
        for &v in &data {
            mg.insert(v);
        }
        assert!(mg.estimate(7.0) > 0, "majority element must hold a counter");
    }

    #[test]
    fn undercount_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let k = 99;
        let mut mg = MisraGries::new(k);
        let data: Vec<f32> = (0..50_000)
            .map(|_| {
                // Skewed: half the stream from 10 hot values.
                if rng.random_range(0..2) == 0 {
                    rng.random_range(0..10) as f32
                } else {
                    rng.random_range(10..10_000) as f32
                }
            })
            .collect();
        for &v in &data {
            mg.insert(v);
        }
        let oracle = ExactStats::new(&data);
        let bound = mg.error_bound();
        for hot in 0..10 {
            let v = hot as f32;
            let est = mg.estimate(v);
            let truth = oracle.frequency(v);
            assert!(est <= truth);
            assert!(truth - est <= bound, "undercount {} > {bound}", truth - est);
        }
    }

    #[test]
    fn counter_budget_respected() {
        let mut mg = MisraGries::new(10);
        for i in 0..10_000 {
            mg.insert((i % 1000) as f32);
        }
        assert!(mg.counter_count() <= 10);
    }

    #[test]
    fn all_heavy_elements_are_candidates() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000usize;
        let k = 199;
        let mut mg = MisraGries::new(k);
        let data: Vec<f32> = (0..n)
            .map(|_| {
                if rng.random_range(0..100) < 30 {
                    rng.random_range(0..5) as f32
                } else {
                    rng.random_range(1000..100_000) as f32
                }
            })
            .collect();
        for &v in &data {
            mg.insert(v);
        }
        let oracle = ExactStats::new(&data);
        let support = n as u64 / 50; // 2% support, bound is n/200 = 0.5%
        let candidates = mg.candidates(1);
        let values: Vec<f32> = candidates.iter().map(|&(v, _)| v).collect();
        for (v, _) in oracle.heavy_hitters(support) {
            assert!(values.contains(&v), "heavy element {v} missing");
        }
    }

    #[test]
    fn empty_summary() {
        let mg = MisraGries::new(5);
        assert_eq!(mg.estimate(1.0), 0);
        assert!(mg.candidates(1).is_empty());
        assert_eq!(mg.error_bound(), 0);
    }
}
