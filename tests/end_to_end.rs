//! Cross-crate integration tests: the full estimator pipelines, end to end,
//! on every engine, against exact oracles.

use gsm::core::{
    Engine, FrequencyEstimator, QuantileEstimator, SlidingFrequencyEstimator,
    SlidingQuantileEstimator,
};
use gsm::sketch::exact::ExactStats;
use gsm::stream::{GaussianGen, UniformGen, ZipfGen};

const ENGINES: [Engine; 3] = [Engine::GpuSim, Engine::CpuSim, Engine::Host];

#[test]
fn quantiles_within_eps_on_every_engine_and_distribution() {
    let n = 30_000usize;
    let eps = 0.01;
    let streams: Vec<(&str, Vec<f32>)> = vec![
        ("uniform", UniformGen::unit(1).take(n).collect()),
        (
            "gaussian",
            GaussianGen::new(2, 500.0, 50.0).take(n).collect(),
        ),
        ("zipf", ZipfGen::new(3, 1000, 1.2).take(n).collect()),
        ("ascending", (0..n).map(|i| i as f32).collect()),
        ("descending", (0..n).rev().map(|i| i as f32).collect()),
    ];
    for (name, data) in &streams {
        let oracle = ExactStats::new(data);
        for engine in ENGINES {
            let mut est = QuantileEstimator::builder(eps)
                .engine(engine)
                .n_hint(n as u64)
                .build();
            est.push_all(data.iter().copied());
            for phi in [0.1, 0.5, 0.9] {
                let err = oracle.quantile_rank_error(phi, est.query(phi));
                assert!(
                    err <= eps + 2.0 / n as f64,
                    "{name} {engine:?} phi={phi}: err {err} > eps {eps}"
                );
            }
        }
    }
}

#[test]
fn frequencies_no_false_negatives_on_every_engine() {
    let n = 50_000usize;
    let eps = 0.001;
    let support = 0.01;
    let data: Vec<f32> = ZipfGen::new(9, 5000, 1.1).take(n).collect();
    let oracle = ExactStats::new(&data);
    let truth = oracle.heavy_hitters((support * n as f64).ceil() as u64);
    assert!(!truth.is_empty(), "workload must contain heavy hitters");
    for engine in ENGINES {
        let mut est = FrequencyEstimator::builder(eps).engine(engine).build();
        est.push_all(data.iter().copied());
        let answer: Vec<f32> = est.heavy_hitters(support).iter().map(|&(v, _)| v).collect();
        for (v, c) in &truth {
            assert!(
                answer.contains(v),
                "{engine:?}: heavy hitter {v} ({c}) missed"
            );
        }
        // Estimates never exceed the truth and undercount by <= eps*N.
        let bound = (eps * n as f64).ceil() as u64;
        for &(v, _) in &truth {
            let e = est.estimate(v);
            let t = oracle.frequency(v);
            assert!(
                e <= t && t - e <= bound,
                "{engine:?}: {v} est {e} truth {t}"
            );
        }
    }
}

#[test]
fn gpu_and_cpu_engines_are_functionally_identical() {
    // The co-processor changes *where* sorting happens, never the answer.
    let n = 25_000usize;
    let data: Vec<f32> = UniformGen::new(7, 0.0, 100.0).take(n).collect();

    let mut q_answers = Vec::new();
    let mut f_answers = Vec::new();
    for engine in ENGINES {
        let mut q = QuantileEstimator::builder(0.02)
            .engine(engine)
            .n_hint(n as u64)
            .build();
        q.push_all(data.iter().copied());
        q_answers.push([q.query(0.1), q.query(0.5), q.query(0.9)]);

        let mut f = FrequencyEstimator::builder(0.002).engine(engine).build();
        f.push_all(data.iter().copied());
        f_answers.push(f.heavy_hitters(0.01));
    }
    assert_eq!(q_answers[0], q_answers[1]);
    assert_eq!(q_answers[1], q_answers[2]);
    assert_eq!(f_answers[0], f_answers[1]);
    assert_eq!(f_answers[1], f_answers[2]);
}

#[test]
fn sliding_estimators_track_window_turnover() {
    for engine in ENGINES {
        let mut q = SlidingQuantileEstimator::new(0.05, 2000, engine);
        let mut f = SlidingFrequencyEstimator::new(0.05, 2000, engine);
        // Old regime: values around 0, plus a hot value 5.0.
        for i in 0..4000 {
            let v = if i % 4 == 0 {
                5.0
            } else {
                (i % 100) as f32 / 100.0
            };
            q.push(v);
            f.push(v);
        }
        assert!(f.estimate(5.0) > 0);
        // New regime: values around 1000, hot value gone.
        for i in 0..4000 {
            q.push(1000.0 + (i % 50) as f32);
            f.push(1000.0 + (i % 50) as f32);
        }
        assert!(q.query(0.5) >= 1000.0, "{engine:?}");
        assert_eq!(f.estimate(5.0), 0, "{engine:?}");
    }
}

#[test]
fn simulated_times_have_the_papers_ordering() {
    // On the frequency workload with a large window (fine eps), the GPU
    // engine must beat the CPU engine; on a tiny window it must lose
    // (paper Figure 5's crossover).
    // 512 K elements = exactly four GPU batches of four 32 K windows at the
    // fine eps, so no straggler partial batch skews the comparison.
    let n = 512 * 1024;
    let data: Vec<f32> = UniformGen::unit(17).take(n).collect();

    let time_for = |eps: f64, engine: Engine| {
        let mut est = FrequencyEstimator::builder(eps).engine(engine).build();
        est.push_all(data.iter().copied());
        est.flush();
        est.total_time()
    };

    let fine = 1.0 / 32_768.0; // 32 K windows
    assert!(
        time_for(fine, Engine::GpuSim) < time_for(fine, Engine::CpuSim),
        "GPU must win at large windows"
    );
    let coarse = 1.0 / 1024.0; // 1 K windows
    assert!(
        time_for(coarse, Engine::GpuSim) > time_for(coarse, Engine::CpuSim),
        "CPU must win at small windows"
    );
}

#[test]
fn f16_stream_values_survive_the_gpu_path_bit_exactly() {
    use gsm::stream::F16;
    // Every value is on the f16 grid; the f32 GPU path must return exactly
    // those values (binary16 → binary32 is exact).
    let data: Vec<f32> = UniformGen::unit(23).take(5000).collect();
    let mut est = QuantileEstimator::builder(0.05)
        .engine(Engine::GpuSim)
        .n_hint(5000)
        .build();
    est.push_all(data.iter().copied());
    for phi in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let v = est.query(phi);
        assert_eq!(
            F16::from_f32(v).to_f32(),
            v,
            "answers must sit on the f16 grid"
        );
        assert!(data.contains(&v), "answers must be actual stream values");
    }
}
