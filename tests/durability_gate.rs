//! The crash-recovery gate, end to end through the facade: every
//! adversarial family is ingested durably (segmented WAL + incremental
//! checkpoints), killed at configured crash points, damaged by each fault
//! in the seeded plan taxonomy, and recovered — on every engine at shard
//! counts {1, 2}. Recovered answers must fingerprint byte-identically to
//! an uncrashed durable run over the recovered prefix, and every injected
//! corruption must be detected, never silently replayed. This is the same
//! configuration CI's `fault-matrix` job runs.

use gsm::core::Engine;
use gsm::dsms::{DurableOptions, StreamEngine};
use gsm::durable::{CheckpointPolicy, Fault, FsyncPolicy};
use gsm::verify::{verify_family_recovered, DurableVerifyConfig, Family, StreamSpec, VerifyConfig};

/// Every family survives the full engine × shard × fault grid at smoke
/// size.
#[test]
fn all_families_recover_from_every_fault() {
    let cfg = VerifyConfig::default();
    let dcfg = DurableVerifyConfig::default();
    let cells = cfg.engines.len() * dcfg.shards.len() * Fault::ALL.len();
    for family in Family::ALL {
        // The engine derives its real window (1024 at this n_hint); with
        // n = 4096 the late crash point lands mid-checkpoint-interval, so
        // the grid exercises genuine WAL tail replay, not just restores.
        let spec = StreamSpec {
            family,
            seed: 42,
            n: 4096,
            window: 1024,
        };
        let outcome = verify_family_recovered(&spec, &cfg, &dcfg);
        assert!(
            outcome.passed(),
            "{}: {:?}",
            family.name(),
            outcome.failures()
        );
        assert_eq!(outcome.runs.len(), cells);
        // Non-vacuous: the grid must actually replay WAL tails and
        // actually detect damage, not pass because nothing happened.
        assert!(
            outcome.runs.iter().any(|r| r.replayed_records > 0),
            "{}: no cell replayed a WAL tail",
            family.name()
        );
        assert!(
            outcome
                .runs
                .iter()
                .any(|r| r.corruption_detected || r.torn_tail),
            "{}: no cell detected its injected damage",
            family.name()
        );
    }
}

/// The README quickstart, verbatim shape: ingest durably, kill the
/// process (drop), recover in a fresh engine, and keep streaming.
#[test]
fn recover_after_kill_quickstart() {
    let dir = std::env::temp_dir().join(format!("gsm-durability-gate-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let opts = || {
        DurableOptions::new(&dir)
            .fsync(FsyncPolicy::EverySeal)
            .checkpoint(CheckpointPolicy::EveryWindows(2))
    };
    let mut eng = StreamEngine::new(Engine::Host)
        .with_durability(opts())
        .expect("fresh durable dir");
    let q = eng.register_quantile(0.02);
    eng.push_all((0..5 * 1024).map(|i| (i % 997) as f32));
    drop(eng); // kill -9

    let (mut recovered, report) =
        StreamEngine::recover_from(Engine::Host, opts(), gsm::obs::Recorder::disabled())
            .expect("recovery");
    assert_eq!(report.recovered_count, 5 * 1024, "whole windows survive");
    assert!(!report.damaged());

    // The recovered engine answers and keeps ingesting.
    let before = recovered.quantile(q, 0.5);
    assert!(before.is_finite());
    recovered.push_all((0..1024).map(|i| i as f32));
    assert!(recovered.quantile(q, 0.5).is_finite());

    std::fs::remove_dir_all(&dir).ok();
}
