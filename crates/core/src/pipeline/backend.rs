//! Pluggable sorting backends for the window pipeline.
//!
//! Each [`Engine`] variant maps to one [`SortBackend`] implementation that
//! owns its simulated device and time ledger: the GPU backend drives the
//! simulated GeForce 6800 Ultra through PBSN, the CPU backend runs the
//! instrumented quicksort on the simulated Pentium IV, and the host backend
//! sorts for free (functional testing). The batching policy — how many
//! windows to buffer before a sort launches — also lives here, because it
//! is a property of the device: only the GPU amortizes anything by
//! batching.

use gsm_cpu::{CpuCostModel, CpuStats, Machine};
use gsm_gpu::{Device, GpuCostModel, GpuStats, Surface, TextureFormat, TextureId};
use gsm_model::SimTime;
use gsm_obs::Recorder;
use gsm_sort::cpu::quicksort;
use gsm_sort::layout::{texture_dims, PAD};
use gsm_sort::pbsn::{pbsn_sort_device, pbsn_sort_segments};

use super::parallel::ParallelHostBackend;
use crate::engine::Engine;
use crate::report::WallClock;

/// Windows per GPU batch — one per RGBA channel.
pub const GPU_BATCH: usize = 4;

/// Simulated base address of the CPU engine's window buffer.
const WINDOW_BASE: u64 = 0x100_0000;

/// The outcome of handing a batch to [`SortBackend::submit_batch`].
pub enum Submission {
    /// The backend sorted synchronously; here are the results.
    Sorted(Vec<Vec<f32>>),
    /// The backend queued the batch for background sorting; results arrive
    /// from a later [`SortBackend::collect_batch`] call, oldest first.
    Queued,
}

/// A window-sorting device with its own simulated-time ledger.
///
/// The pipeline's [`super::BatchPipeline`] owns one backend behind this
/// trait and never inspects which engine is active: batching policy,
/// sorting, and time accounting are all dispatched here.
///
/// Backends with real background execution (the host worker pool) override
/// the `submit_batch`/`collect_batch` pair; the defaults make every other
/// backend synchronous with no pipeline-side special casing.
pub trait SortBackend {
    /// The engine this backend implements.
    fn engine(&self) -> Engine;

    /// Whether a buffered batch of `windows` windows totalling `values`
    /// elements should launch now. Backends with nothing to amortize sort
    /// every window immediately (the default).
    fn batch_ready(&self, windows: usize, values: usize) -> bool {
        let _ = (windows, values);
        true
    }

    /// Sorts every window of the batch, preserving order and lengths.
    fn sort_batch(&mut self, windows: Vec<Vec<f32>>) -> Vec<Vec<f32>>;

    /// Submits a batch for sorting. Synchronous backends (the default)
    /// sort immediately and return [`Submission::Sorted`]; overlapping
    /// backends queue the batch in the background and return
    /// [`Submission::Queued`].
    fn submit_batch(&mut self, windows: Vec<Vec<f32>>) -> Submission {
        Submission::Sorted(self.sort_batch(windows))
    }

    /// Blocks until the *oldest* queued batch completes and returns its
    /// sorted windows; `None` when nothing is in flight (always, for
    /// synchronous backends).
    fn collect_batch(&mut self) -> Option<Vec<Vec<f32>>> {
        None
    }

    /// Batches submitted to the background and not yet collected.
    fn inflight_batches(&self) -> usize {
        0
    }

    /// Wall-clock overlap ledger (all zero for synchronous backends).
    fn wall_clock(&self) -> WallClock {
        WallClock::default()
    }

    /// Simulated time spent sorting so far.
    fn sort_time(&self) -> SimTime;

    /// Simulated CPU↔device transfer time so far (zero unless the backend
    /// sits across a bus).
    fn transfer_time(&self) -> SimTime {
        SimTime::ZERO
    }

    /// GPU execution counters, if this backend drives a simulated GPU.
    fn gpu_stats(&self) -> Option<&GpuStats> {
        None
    }

    /// CPU machine counters, if this backend drives a simulated CPU.
    fn cpu_stats(&self) -> Option<&CpuStats> {
        None
    }

    /// Selects the device's texture storage format (no-op off the GPU).
    fn set_texture_format(&mut self, format: TextureFormat) {
        let _ = format;
    }

    /// Installs an observability recorder. Backends publish device-level
    /// counters into it (comparator calls, radix passes, render passes,
    /// merge writes); the default ignores it, and a disabled recorder costs
    /// one branch per event. Instrumentation never changes sort results.
    fn set_recorder(&mut self, rec: Recorder) {
        let _ = rec;
    }
}

/// Builds the calibrated backend for `engine`. A positive
/// `min_batch_values` selects the segmented GPU batching policy (see
/// [`GpuSimBackend::segmented`]); CPU engines ignore it.
pub fn backend_for(engine: Engine, min_batch_values: usize) -> Box<dyn SortBackend> {
    match engine {
        Engine::GpuSim => Box::new(if min_batch_values > 0 {
            GpuSimBackend::segmented(min_batch_values)
        } else {
            GpuSimBackend::new()
        }),
        Engine::CpuSim => Box::new(CpuSimBackend::new()),
        Engine::Host => Box::new(HostBackend::default()),
        Engine::ParallelHost => Box::new(ParallelHostBackend::with_default_threads()),
    }
}

/// Plain `slice::sort` with zero simulated time, for functional testing.
#[derive(Default)]
pub struct HostBackend {
    obs: Recorder,
}

impl SortBackend for HostBackend {
    fn engine(&self) -> Engine {
        Engine::Host
    }

    fn sort_batch(&mut self, windows: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
        windows
            .into_iter()
            .map(|mut w| {
                if self.obs.is_enabled() {
                    // Same sort, same comparator, same result — the closure
                    // only counts how often the comparator runs.
                    let mut calls = 0u64;
                    w.sort_by(|a, b| {
                        calls += 1;
                        f32::total_cmp(a, b)
                    });
                    self.obs.count("host_comparator_calls", calls);
                } else {
                    w.sort_by(f32::total_cmp);
                }
                w
            })
            .collect()
    }

    fn sort_time(&self) -> SimTime {
        SimTime::ZERO
    }

    fn set_recorder(&mut self, rec: Recorder) {
        self.obs = rec;
    }
}

/// Instrumented quicksort on the simulated Pentium IV — the paper's CPU
/// baseline (§5.2 sorts windows "using the qsort() and GPU-based sorting
/// routines", i.e. with a comparator function pointer).
pub struct CpuSimBackend {
    machine: Machine,
    obs: Recorder,
    /// Counters already published to `obs`, so each batch records a delta.
    obs_seen: CpuStats,
}

impl CpuSimBackend {
    /// Creates the backend with the calibrated Pentium IV cost model.
    pub fn new() -> Self {
        CpuSimBackend {
            machine: Machine::new(CpuCostModel::pentium4_3400_qsort()),
            obs: Recorder::disabled(),
            obs_seen: CpuStats::default(),
        }
    }
}

impl Default for CpuSimBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl SortBackend for CpuSimBackend {
    fn engine(&self) -> Engine {
        Engine::CpuSim
    }

    fn sort_batch(&mut self, windows: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
        let sorted: Vec<Vec<f32>> = windows
            .into_iter()
            .map(|mut w| {
                quicksort(&mut w, &mut self.machine, WINDOW_BASE);
                w
            })
            .collect();
        if self.obs.is_enabled() {
            let now = *self.machine.stats();
            now.since(&self.obs_seen).record_into(&self.obs);
            self.obs_seen = now;
        }
        sorted
    }

    fn sort_time(&self) -> SimTime {
        self.machine.time()
    }

    fn cpu_stats(&self) -> Option<&CpuStats> {
        Some(self.machine.stats())
    }

    fn set_recorder(&mut self, rec: Recorder) {
        self.obs = rec;
    }
}

/// PBSN window sorting on the simulated GeForce 6800 Ultra, batching four
/// windows per texture (one per RGBA channel) and reusing one texture slot
/// across batches (paper §4.1: one upload + one readback per batch).
pub struct GpuSimBackend {
    dev: Device,
    tex: Option<(TextureId, usize)>,
    format: TextureFormat,
    /// Minimum buffered values before a batch launches (0 = plain
    /// 4-window batching).
    min_batch_values: usize,
    obs: Recorder,
    /// Counters already published to `obs`, so each batch records a delta.
    obs_seen: GpuStats,
}

impl GpuSimBackend {
    /// Creates the backend with plain 4-window batching.
    pub fn new() -> Self {
        GpuSimBackend {
            dev: Device::new(GpuCostModel::geforce_6800_ultra()),
            tex: None,
            format: TextureFormat::Rgba32F,
            min_batch_values: 0,
            obs: Recorder::disabled(),
            obs_seen: GpuStats::default(),
        }
    }

    /// Creates a backend with the *segmented* batching policy: windows
    /// accumulate until at least `min_batch_values` elements are buffered,
    /// then all of them sort in one segmented PBSN run (many aligned
    /// segments per channel, the schedule capped at the segment size).
    /// This amortizes the per-pass overhead that makes tiny sorts
    /// GPU-hostile (§4.5) and is what makes sliding windows — whose blocks
    /// are only `Θ(εW)` elements — viable on the co-processor.
    pub fn segmented(min_batch_values: usize) -> Self {
        let mut b = Self::new();
        b.min_batch_values = min_batch_values;
        b
    }

    /// Sorts up to four windows, one per channel. Windows may have unequal
    /// lengths (the stream tail); every channel pads to the longest
    /// window's power-of-two length with `+∞`, which sorts to the tail and
    /// is stripped on extraction.
    fn sort_channels(&mut self, windows: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert!(!windows.is_empty() && windows.len() <= GPU_BATCH);
        let longest = windows.iter().map(Vec::len).max().expect("non-empty batch");
        let padded = longest.next_power_of_two().max(2);

        let mut channels: [Vec<f32>; 4] = core::array::from_fn(|_| vec![PAD; padded]);
        for (k, w) in windows.iter().enumerate() {
            debug_assert!(
                w.iter().all(|v| v.is_finite()),
                "stream values must be finite"
            );
            channels[k][..w.len()].copy_from_slice(w);
        }
        let (width, _) = texture_dims(padded);
        let surface = Surface::from_channels(
            width,
            [&channels[0], &channels[1], &channels[2], &channels[3]],
        );

        let tex = self.upload(surface, padded);
        pbsn_sort_device(&mut self.dev, tex);
        let sorted = self.dev.readback_texture(tex);

        windows
            .iter()
            .enumerate()
            .map(|(k, w)| {
                let ch = sorted.channel(gsm_gpu::Channel::ALL[k]);
                ch[..w.len()].to_vec()
            })
            .collect()
    }

    /// Sorts any number of windows in one segmented PBSN run: window `i`
    /// occupies segment `i / 4` of channel `i % 4`; every segment is padded
    /// to the common power-of-two length and sorted independently.
    fn sort_segmented(&mut self, windows: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert!(!windows.is_empty());
        if windows.len() <= GPU_BATCH {
            return self.sort_channels(windows);
        }
        let longest = windows.iter().map(Vec::len).max().expect("non-empty batch");
        let segment = longest.next_power_of_two().max(2);
        let segments_per_channel = windows.len().div_ceil(GPU_BATCH);
        // The texture's texel count must be a power of two for the PBSN
        // layout, and a multiple of the segment size.
        let channel_len = (segments_per_channel * segment).next_power_of_two();

        let mut channels: [Vec<f32>; 4] = core::array::from_fn(|_| vec![PAD; channel_len]);
        for (i, w) in windows.iter().enumerate() {
            debug_assert!(
                w.iter().all(|v| v.is_finite()),
                "stream values must be finite"
            );
            let start = (i / GPU_BATCH) * segment;
            channels[i % GPU_BATCH][start..start + w.len()].copy_from_slice(w);
        }
        let (width, _) = texture_dims(channel_len);
        let surface = Surface::from_channels(
            width,
            [&channels[0], &channels[1], &channels[2], &channels[3]],
        );

        let tex = self.upload(surface, channel_len);
        pbsn_sort_segments(&mut self.dev, tex, segment);
        let sorted = self.dev.readback_texture(tex);

        windows
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let ch = sorted.channel(gsm_gpu::Channel::ALL[i % GPU_BATCH]);
                let start = (i / GPU_BATCH) * segment;
                ch[start..start + w.len()].to_vec()
            })
            .collect()
    }

    /// Reuses the cached texture slot when the padded length matches
    /// (update = no allocation churn), otherwise uploads a fresh texture.
    fn upload(&mut self, surface: Surface, padded_len: usize) -> TextureId {
        match self.tex {
            Some((id, len)) if len == padded_len => {
                self.dev.update_texture(id, surface);
                id
            }
            _ => {
                let id = self.dev.upload_texture_fmt(surface, self.format);
                self.tex = Some((id, padded_len));
                id
            }
        }
    }
}

impl Default for GpuSimBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl SortBackend for GpuSimBackend {
    fn engine(&self) -> Engine {
        Engine::GpuSim
    }

    fn batch_ready(&self, windows: usize, values: usize) -> bool {
        if self.min_batch_values > 0 {
            values >= self.min_batch_values
        } else {
            windows >= GPU_BATCH
        }
    }

    fn sort_batch(&mut self, windows: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
        let sorted = if self.min_batch_values > 0 {
            self.sort_segmented(&windows)
        } else {
            self.sort_channels(&windows)
        };
        if self.obs.is_enabled() {
            let now = self.dev.stats().clone();
            now.since(&self.obs_seen).record_into(&self.obs);
            self.obs_seen = now;
        }
        sorted
    }

    fn sort_time(&self) -> SimTime {
        self.dev.stats().gpu_only_time()
    }

    fn transfer_time(&self) -> SimTime {
        self.dev.stats().transfer_time
    }

    fn gpu_stats(&self) -> Option<&GpuStats> {
        Some(self.dev.stats())
    }

    fn set_texture_format(&mut self, format: TextureFormat) {
        self.format = format;
    }

    fn set_recorder(&mut self, rec: Recorder) {
        self.obs = rec;
    }
}
