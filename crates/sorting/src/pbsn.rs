//! The paper's GPU sorter: the periodic balanced sorting network executed as
//! rasterization (paper §4.4, Routines 4.3–4.4, Figure 2).
//!
//! Each PBSN step compares, within every block of `B` consecutive values,
//! the value at local position `i` with the one at `B−1−i`, storing the
//! minimum in the lower half. On the GPU this is exactly two render passes:
//!
//! 1. a **min pass** over the lower half of every block, with mirrored
//!    texture coordinates and `MIN` blending, and
//! 2. a **max pass** over the upper half with the same mirror and `MAX`
//!    blending,
//!
//! followed by a framebuffer→texture blit so the next step reads the updated
//! values (Routine 4.3 line 8).
//!
//! Figure 2's two cases fall out of the row-major layout:
//!
//! * **`B ≤ W`** — every block is a run within one row; one quad of width
//!   `B/2` and full height `H` covers the lower halves of that block column
//!   across *all* rows (`W/B` quads per pass).
//! * **`B > W`** — every block is a band of `B/W` full rows; the mirror
//!   reverses both axes within the band (`H·W/B` quads per pass).

use gsm_gpu::{BlendOp, Device, Quad, Rect, Surface, TextureId};

/// The min-pass and max-pass quads of one `SortStep` (Routine 4.4).
///
/// `w`/`h` are the texture dimensions, `block` the current block size in
/// values. Exposed for testing and for the ablation that disables the
/// row-block optimization.
pub fn sort_step_quads(w: u32, h: u32, block: usize) -> (Vec<Quad>, Vec<Quad>) {
    let wu = w as usize;
    let mut min_quads = Vec::new();
    let mut max_quads = Vec::new();

    if block <= wu {
        // Row-block case: blocks of `block` values within each row. One quad
        // per block column, full texture height.
        let half = (block / 2) as u32;
        let b = block as u32;
        for off in (0..w).step_by(block) {
            // Mirror within the block: u(x) = (2·off + B) − x.
            let c = (2 * off + b) as f32;
            min_quads.push(Quad::mapped(
                Rect::new(off, 0, off + half, h),
                c - off as f32,
                c - (off + half) as f32,
                0.0,
                h as f32,
            ));
            max_quads.push(Quad::mapped(
                Rect::new(off + half, 0, off + b, h),
                c - (off + half) as f32,
                c - (off + b) as f32,
                0.0,
                h as f32,
            ));
        }
    } else {
        // Column-block case: blocks of `block/W` full rows. The mirror of
        // flat index i within the block reverses x across the row and y
        // within the band.
        let bh = (block / wu) as u32;
        let half = bh / 2;
        debug_assert!(bh >= 2 && h.is_multiple_of(bh));
        for s in (0..h).step_by(bh as usize) {
            let c = (2 * s + bh) as f32;
            min_quads.push(Quad::mapped(
                Rect::new(0, s, w, s + half),
                w as f32,
                0.0,
                c - s as f32,
                c - (s + half) as f32,
            ));
            max_quads.push(Quad::mapped(
                Rect::new(0, s + half, w, s + bh),
                w as f32,
                0.0,
                c - (s + half) as f32,
                c - (s + bh) as f32,
            ));
        }
    }
    (min_quads, max_quads)
}

/// Executes one PBSN step on the device: min pass, max pass, blit.
pub fn sort_step(dev: &mut Device, tex: TextureId, w: u32, h: u32, block: usize) {
    let (min_quads, max_quads) = sort_step_quads(w, h, block);
    dev.draw_quads(tex, &min_quads, BlendOp::Min);
    dev.draw_quads(tex, &max_quads, BlendOp::Max);
    dev.copy_framebuffer_to_texture(tex);
}

/// Ablation A2: the `SortStep` quads *without* the row-block optimization.
///
/// Figure 2's insight is that for `B ≤ W` one quad of height `H` covers a
/// block column across every row. The naive alternative issues one quad per
/// block per row — identical fragments, `H×` the quads, so the per-quad
/// vertex overhead is exposed. Functionally equivalent to
/// [`sort_step_quads`].
pub fn sort_step_quads_naive(w: u32, h: u32, block: usize) -> (Vec<Quad>, Vec<Quad>) {
    let wu = w as usize;
    if block > wu {
        // The column-block case has no row optimization to disable.
        return sort_step_quads(w, h, block);
    }
    let half = (block / 2) as u32;
    let b = block as u32;
    let mut min_quads = Vec::new();
    let mut max_quads = Vec::new();
    for y in 0..h {
        for off in (0..w).step_by(block) {
            let c = (2 * off + b) as f32;
            min_quads.push(Quad::mapped(
                Rect::new(off, y, off + half, y + 1),
                c - off as f32,
                c - (off + half) as f32,
                y as f32,
                (y + 1) as f32,
            ));
            max_quads.push(Quad::mapped(
                Rect::new(off + half, y, off + b, y + 1),
                c - (off + half) as f32,
                c - (off + b) as f32,
                y as f32,
                (y + 1) as f32,
            ));
        }
    }
    (min_quads, max_quads)
}

/// Runs the full PBSN schedule with the naive (per-row quad) `SortStep` —
/// the A2 ablation counterpart of [`pbsn_sort_device`].
pub fn pbsn_sort_device_naive(dev: &mut Device, tex: TextureId) {
    let (w, h) = (dev.texture(tex).width(), dev.texture(tex).height());
    assert!(w.is_power_of_two() && h.is_power_of_two());
    let m = w as usize * h as usize;
    dev.resize_framebuffer(w, h);
    dev.draw_quads(tex, &[Quad::copy(Rect::new(0, 0, w, h))], BlendOp::Replace);
    let stages = m.trailing_zeros();
    for _stage in 0..stages {
        let mut block = m;
        while block >= 2 {
            let (min_quads, max_quads) = sort_step_quads_naive(w, h, block);
            dev.draw_quads(tex, &min_quads, BlendOp::Min);
            dev.draw_quads(tex, &max_quads, BlendOp::Max);
            dev.copy_framebuffer_to_texture(tex);
            block /= 2;
        }
    }
}

/// Runs the full PBSN schedule on a texture already resident on the device
/// (Routine 4.3 without the transfers): initial `Copy` pass, then `log² m`
/// sort steps, where `m = W·H` is the per-channel element count.
///
/// All four channels sort simultaneously — blending is a vector operation
/// (paper §4.2.2) — so a W×H RGBA texture sorts four sequences of `m`
/// values in one run.
///
/// On return both the texture and the framebuffer hold the sorted data.
pub fn pbsn_sort_device(dev: &mut Device, tex: TextureId) {
    let (w, h) = (dev.texture(tex).width(), dev.texture(tex).height());
    assert!(
        w.is_power_of_two() && h.is_power_of_two(),
        "PBSN requires power-of-two texture dimensions, got {w}x{h}"
    );
    let m = w as usize * h as usize;
    dev.resize_framebuffer(w, h);
    dev.draw_quads(tex, &[Quad::copy(Rect::new(0, 0, w, h))], BlendOp::Replace);

    let stages = m.trailing_zeros();
    for _stage in 0..stages {
        let mut block = m;
        while block >= 2 {
            sort_step(dev, tex, w, h, block);
            block /= 2;
        }
    }
}

/// Sorts every channel of `surface` ascending (in row-major order) on the
/// device, including the upload and readback transfers — the full Routine
/// 4.3 pipeline. Returns the sorted surface.
pub fn pbsn_sort_surface(dev: &mut Device, surface: Surface) -> Surface {
    let tex = dev.upload_texture(surface);
    pbsn_sort_device(dev, tex);
    dev.readback_texture(tex)
}

/// Sorts every aligned `segment`-texel run of each channel *independently*
/// in one PBSN schedule — the batching extension for workloads whose units
/// are much smaller than a worthwhile texture (the sliding-window blocks of
/// §5.3).
///
/// PBSN's steps only ever compare within blocks of the current size, so
/// capping the schedule's largest block at `segment` sorts each aligned
/// segment in isolation while every render pass still covers the whole
/// texture: the per-pass overhead (the paper's small-`n` penalty, §4.5)
/// amortizes over all segments at once.
///
/// # Panics
///
/// Panics if `segment` is not a power of two dividing the texel count.
pub fn pbsn_sort_segments(dev: &mut Device, tex: TextureId, segment: usize) {
    let (w, h) = (dev.texture(tex).width(), dev.texture(tex).height());
    assert!(
        w.is_power_of_two() && h.is_power_of_two(),
        "PBSN requires power-of-two texture dimensions, got {w}x{h}"
    );
    let m = w as usize * h as usize;
    assert!(
        segment.is_power_of_two() && segment <= m && m.is_multiple_of(segment),
        "segment {segment} must be a power of two dividing {m}"
    );
    dev.resize_framebuffer(w, h);
    dev.draw_quads(tex, &[Quad::copy(Rect::new(0, 0, w, h))], BlendOp::Replace);

    let stages = segment.trailing_zeros();
    for _stage in 0..stages {
        let mut block = segment;
        while block >= 2 {
            sort_step(dev, tex, w, h, block);
            block /= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{pad_pow2, texture_dims};
    use crate::network::{apply_step, pbsn_step};
    use gsm_gpu::Channel;

    fn surface_from_flat(values: &[f32]) -> Surface {
        let (w, _) = texture_dims(values.len());
        let padded = values.to_vec();
        assert!(padded.len().is_power_of_two());
        Surface::from_channels(w, [&padded, &padded, &padded, &padded])
    }

    fn pseudo_random(n: usize, seed: u64) -> Vec<f32> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 100_000) as f32
            })
            .collect()
    }

    #[test]
    fn quads_cover_each_half_exactly_once() {
        for (w, h, block) in [
            (8u32, 4u32, 2usize),
            (8, 4, 8),
            (8, 4, 16),
            (8, 4, 32),
            (4, 4, 4),
        ] {
            let (min_quads, max_quads) = sort_step_quads(w, h, block);
            let area: u64 = min_quads
                .iter()
                .chain(&max_quads)
                .map(|q| q.dst.area())
                .sum();
            assert_eq!(area, (w * h) as u64, "w={w} h={h} block={block}");
        }
    }

    #[test]
    fn single_step_matches_network_reference() {
        // Execute one GPU SortStep and compare against the abstract
        // comparator step, for both layout cases.
        for block in [2usize, 4, 8, 16, 32] {
            let n = 32;
            let data = pseudo_random(n, 99);
            let (w, h) = texture_dims(n); // 8x4
            let surface = Surface::from_channels(w, [&data, &data, &data, &data]);

            let mut dev = Device::ideal();
            let tex = dev.upload_texture(surface);
            dev.resize_framebuffer(w, h);
            dev.draw_quads(tex, &[Quad::copy(Rect::new(0, 0, w, h))], BlendOp::Replace);
            sort_step(&mut dev, tex, w, h, block);
            let gpu = dev.texture(tex).channel(Channel::R);

            let mut reference = data.clone();
            apply_step(&mut reference, &pbsn_step(n, block));
            assert_eq!(gpu, reference, "block={block}");
        }
    }

    #[test]
    fn sorts_all_channels() {
        let n = 64;
        let chans: [Vec<f32>; 4] = core::array::from_fn(|k| pseudo_random(n, 7 + k as u64));
        let (w, _) = texture_dims(n);
        let surface = Surface::from_channels(w, [&chans[0], &chans[1], &chans[2], &chans[3]]);
        let mut dev = Device::ideal();
        let sorted = pbsn_sort_surface(&mut dev, surface);
        for (k, ch) in Channel::ALL.iter().enumerate() {
            let mut expect = chans[k].clone();
            expect.sort_by(f32::total_cmp);
            assert_eq!(sorted.channel(*ch), expect, "channel {k}");
        }
    }

    #[test]
    fn sorts_many_sizes_and_seeds() {
        for n in [2usize, 4, 16, 128, 1024, 4096] {
            for seed in [1u64, 2, 3] {
                let data = pseudo_random(n, seed);
                let surface = surface_from_flat(&data);
                let mut dev = Device::ideal();
                let sorted = pbsn_sort_surface(&mut dev, surface).channel(Channel::R);
                let mut expect = data.clone();
                expect.sort_by(f32::total_cmp);
                assert_eq!(sorted, expect, "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn sorts_with_padding() {
        let data = pseudo_random(100, 5);
        let padded = pad_pow2(&data);
        let surface = surface_from_flat(&padded);
        let mut dev = Device::ideal();
        let sorted = pbsn_sort_surface(&mut dev, surface).channel(Channel::R);
        let mut expect = data.clone();
        expect.sort_by(f32::total_cmp);
        assert_eq!(&sorted[..100], &expect[..]);
        assert!(sorted[100..].iter().all(|v| *v == f32::INFINITY));
    }

    #[test]
    fn already_sorted_and_reversed() {
        let asc: Vec<f32> = (0..256).map(|i| i as f32).collect();
        let desc: Vec<f32> = (0..256).rev().map(|i| i as f32).collect();
        for data in [asc.clone(), desc] {
            let surface = surface_from_flat(&data);
            let mut dev = Device::ideal();
            let sorted = pbsn_sort_surface(&mut dev, surface).channel(Channel::R);
            assert_eq!(sorted, asc);
        }
    }

    #[test]
    fn duplicates_preserved() {
        let data = vec![2.0f32; 64];
        let surface = surface_from_flat(&data);
        let mut dev = Device::ideal();
        let sorted = pbsn_sort_surface(&mut dev, surface).channel(Channel::R);
        assert_eq!(sorted, data);
    }

    #[test]
    fn segmented_sort_sorts_each_segment_independently() {
        let segment = 64usize;
        let nseg = 8usize;
        let data = pseudo_random(segment * nseg, 33);
        let surface = surface_from_flat(&data);
        let mut dev = Device::ideal();
        let tex = dev.upload_texture(surface);
        pbsn_sort_segments(&mut dev, tex, segment);
        let out = dev.texture(tex).channel(Channel::R);
        for s in 0..nseg {
            let got = &out[s * segment..(s + 1) * segment];
            let mut expect = data[s * segment..(s + 1) * segment].to_vec();
            expect.sort_by(f32::total_cmp);
            assert_eq!(got, &expect[..], "segment {s}");
        }
        // Segments must NOT have been merged into one sorted run.
        assert!(
            out.windows(2).any(|p| p[0] > p[1]),
            "segments must stay independent"
        );
    }

    #[test]
    fn segmented_with_full_length_segment_equals_plain_sort() {
        let data = pseudo_random(256, 44);
        let surface = surface_from_flat(&data);
        let mut dev = Device::ideal();
        let tex = dev.upload_texture(surface);
        pbsn_sort_segments(&mut dev, tex, 256);
        let mut expect = data.clone();
        expect.sort_by(f32::total_cmp);
        assert_eq!(dev.texture(tex).channel(Channel::R), expect);
    }

    #[test]
    fn segmented_amortizes_pass_overhead() {
        // 64 segments of 256 in one texture must cost far fewer passes than
        // 64 separate sorts of 256.
        let segment = 256usize;
        let nseg = 64usize;
        let data = pseudo_random(segment * nseg, 55);
        let surface = surface_from_flat(&data);
        let mut dev = Device::new(gsm_gpu::GpuCostModel::geforce_6800_ultra());
        let tex = dev.upload_texture(surface);
        pbsn_sort_segments(&mut dev, tex, segment);
        let batched_passes = dev.stats().passes;
        // A separate sort of one 256-value texture costs 1 + 3·log²(256)
        // passes; 64 of them would be 64x that.
        let separate = 64 * (1 + 3 * 8 * 8);
        assert!(
            batched_passes < separate as u64 / 10,
            "{batched_passes} vs {separate} separate passes"
        );
    }

    #[test]
    fn naive_sort_step_is_functionally_identical() {
        let n = 256usize;
        let data = pseudo_random(n, 21);
        let surface = surface_from_flat(&data);
        let mut dev = Device::ideal();
        let tex = dev.upload_texture(surface);
        pbsn_sort_device_naive(&mut dev, tex);
        let sorted = dev.texture(tex).channel(Channel::R);
        let mut expect = data.clone();
        expect.sort_by(f32::total_cmp);
        assert_eq!(sorted, expect);
    }

    #[test]
    fn naive_sort_step_issues_more_quads() {
        let (w, h, block) = (8u32, 8u32, 4usize);
        let (opt_min, _) = sort_step_quads(w, h, block);
        let (naive_min, _) = sort_step_quads_naive(w, h, block);
        assert_eq!(naive_min.len(), opt_min.len() * h as usize);
        // Same coverage either way.
        let a: u64 = opt_min.iter().map(|q| q.dst.area()).sum();
        let b: u64 = naive_min.iter().map(|q| q.dst.area()).sum();
        assert_eq!(a, b);
    }

    #[test]
    fn pass_count_matches_routine_4_3() {
        // For m per-channel values: 1 copy pass + log²m steps × (min pass +
        // max pass + blit).
        let m = 64usize;
        let data = pseudo_random(m, 11);
        let surface = surface_from_flat(&data);
        let mut dev = Device::new(gsm_gpu::GpuCostModel::geforce_6800_ultra());
        let _ = pbsn_sort_surface(&mut dev, surface);
        let log = m.trailing_zeros() as u64;
        assert_eq!(dev.stats().passes, 1 + log * log * 3);
        // Blend texels: every step touches every texel exactly once
        // (min half + max half).
        assert_eq!(dev.stats().blend_ops, log * log * m as u64);
    }
}
