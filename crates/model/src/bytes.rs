use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign};

use crate::SimTime;

/// A volume of data moved over a memory interface or bus.
///
/// ```
/// use gsm_model::Bytes;
///
/// let upload = Bytes::new(32 << 20); // 8 M f32 values
/// let t = upload.time_at_bandwidth(800e6); // ~800 MB/s effective AGP 8X
/// assert!((t.as_millis() - 41.943).abs() < 0.01);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Debug)]
pub struct Bytes(u64);

impl Bytes {
    /// The zero volume.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a byte count.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Bytes(n)
    }

    /// Byte volume of `n` 32-bit floats.
    #[inline]
    pub const fn of_f32s(n: u64) -> Self {
        Bytes(n * 4)
    }

    /// The raw count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Adds `n` bytes, saturating on overflow.
    #[inline]
    pub fn bump(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Time to move this volume at `bytes_per_sec`.
    #[inline]
    pub fn time_at_bandwidth(self, bytes_per_sec: f64) -> SimTime {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        SimTime::from_secs(self.0 as f64 / bytes_per_sec)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl fmt::Display for Bytes {
    /// Formats with binary units: `512 B`, `64.0 KiB`, `32.0 MiB`, `1.5 GiB`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if b >= (1u64 << 30) as f64 {
            write!(f, "{:.1} GiB", b / (1u64 << 30) as f64)
        } else if b >= (1 << 20) as f64 {
            write!(f, "{:.1} MiB", b / (1 << 20) as f64)
        } else if b >= 1024.0 {
            write!(f, "{:.1} KiB", b / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_volume() {
        assert_eq!(Bytes::of_f32s(1024).get(), 4096);
    }

    #[test]
    fn bandwidth_time() {
        let t = Bytes::new(800).time_at_bandwidth(800.0);
        assert!((t.as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Bytes::new(100)), "100 B");
        assert_eq!(format!("{}", Bytes::new(2048)), "2.0 KiB");
        assert_eq!(format!("{}", Bytes::new(3 << 20)), "3.0 MiB");
        assert_eq!(format!("{}", Bytes::new(3 << 30)), "3.0 GiB");
    }

    #[test]
    fn accumulation() {
        let mut b = Bytes::ZERO;
        b += Bytes::new(10);
        b.bump(5);
        assert_eq!(b.get(), 15);
        let total: Bytes = (0..3).map(|_| Bytes::new(7)).sum();
        assert_eq!(total.get(), 21);
    }
}
