//! The instrumented CPU-side merge of the four sorted channel runs.
//!
//! Paper §4.4: *"The sorted sequences of length n/4 are read back by the CPU
//! and a merge operation is performed in software. The merge routine
//! performs O(n) comparisons and is very efficient."* Selecting the minimum
//! of four run heads costs three comparisons per emitted element; the scan
//! is sequential in all five arrays, so it is cache-friendly — exactly why
//! the paper can afford it on the CPU.

use gsm_cpu::Machine;

/// Branch-site id for the head-selection comparisons.
const MERGE_SITE: u64 = 10;

/// Merges four ascending runs into one ascending vector, charging `m` for
/// every element read, head comparison, and output write.
///
/// `bases` are the runs' simulated base addresses and `out_base` the output
/// array's; pass disjoint ranges so cache contention is modeled faithfully.
pub fn merge4(
    runs: [&[f32]; 4],
    m: &mut Machine,
    bases: [u64; 4],
    out_base: u64,
) -> Vec<f32> {
    debug_assert!(
        runs.iter().all(|r| r.windows(2).all(|w| w[0] <= w[1])),
        "merge4 inputs must be sorted"
    );
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut idx = [0usize; 4];

    // Cached head values: a real implementation keeps them in registers and
    // re-reads memory only when a run advances.
    let mut heads: [Option<f32>; 4] = core::array::from_fn(|k| {
        if runs[k].is_empty() {
            None
        } else {
            m.read(bases[k]);
            Some(runs[k][0])
        }
    });

    while out.len() < total {
        // Tournament over up to four heads: three comparisons.
        let mut best: Option<(usize, f32)> = None;
        for (k, head) in heads.iter().enumerate() {
            if let Some(v) = *head {
                match best {
                    None => best = Some((k, v)),
                    Some((_, bv)) => {
                        let take = v < bv;
                        m.branch(MERGE_SITE + k as u64, take);
                        m.alu(1);
                        if take {
                            best = Some((k, v));
                        }
                    }
                }
            }
        }
        let (k, v) = best.expect("at least one run non-empty");
        m.write(out_base + 4 * out.len() as u64);
        m.alu(2);
        out.push(v);
        idx[k] += 1;
        heads[k] = if idx[k] < runs[k].len() {
            m.read(bases[k] + 4 * idx[k] as u64);
            Some(runs[k][idx[k]])
        } else {
            None
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_cpu::CpuCostModel;

    fn machine() -> Machine {
        Machine::new(CpuCostModel::pentium4_3400())
    }

    fn check(runs: [&[f32]; 4]) {
        let mut expect: Vec<f32> = runs.iter().flat_map(|r| r.iter().copied()).collect();
        expect.sort_by(f32::total_cmp);
        let out = merge4(runs, &mut machine(), [0, 1 << 20, 2 << 20, 3 << 20], 4 << 20);
        assert_eq!(out, expect);
    }

    #[test]
    fn merges_equal_length_runs() {
        check([
            &[1.0, 5.0, 9.0],
            &[2.0, 6.0, 10.0],
            &[3.0, 7.0, 11.0],
            &[4.0, 8.0, 12.0],
        ]);
    }

    #[test]
    fn merges_ragged_and_empty_runs() {
        check([&[], &[1.0], &[0.5, 0.6, 0.7, 0.8], &[]]);
        check([&[], &[], &[], &[]]);
    }

    #[test]
    fn merges_with_duplicates_and_infinities() {
        check([
            &[1.0, 1.0, f32::INFINITY],
            &[1.0, 2.0],
            &[0.0, 1.0, 1.0],
            &[f32::INFINITY],
        ]);
    }

    #[test]
    fn merge_is_linear_in_comparisons() {
        let a: Vec<f32> = (0..1000).map(|i| (4 * i) as f32).collect();
        let b: Vec<f32> = (0..1000).map(|i| (4 * i + 1) as f32).collect();
        let c: Vec<f32> = (0..1000).map(|i| (4 * i + 2) as f32).collect();
        let d: Vec<f32> = (0..1000).map(|i| (4 * i + 3) as f32).collect();
        let mut m = machine();
        let out = merge4([&a, &b, &c, &d], &mut m, [0, 1 << 20, 2 << 20, 3 << 20], 4 << 20);
        assert_eq!(out.len(), 4000);
        // At most 3 head comparisons per output element.
        assert!(m.stats().branches <= 3 * 4000);
        // Reads: one per element consumed (plus 4 initial heads).
        assert!(m.stats().reads <= 4004);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "sorted")]
    fn rejects_unsorted_input_in_debug() {
        let bad = [3.0f32, 1.0];
        let _ = merge4([&bad, &[], &[], &[]], &mut machine(), [0; 4], 1 << 20);
    }
}
