#!/usr/bin/env bash
# Compare CI-produced bench artifacts (results/BENCH_*_ci.json) against the
# committed baselines (results/BENCH_*.json) and annotate regressions.
#
# Two kinds of check, with different severities:
#
# * Schema/provenance mismatches (missing "schema": 1 envelope, wrong
#   created_by, absent throughput fields) FAIL the job: those are code
#   bugs in the harness or a stale baseline, and are deterministic.
#
# * Throughput drops are WARN-ONLY (a ::warning:: annotation on >25%
#   regression, exit 0), and so is a missing committed baseline — a new
#   bench lane necessarily lands one commit before its first baseline
#   does. Rationale: the committed baselines were produced
#   on a developer box; shared CI runners are slower, differently shaped
#   (core count, cache sizes), and noisy run-to-run. A hard gate on a
#   wall-clock ratio would flake on runner weather rather than catch real
#   regressions. The annotation keeps the signal visible on every run —
#   and the nightly soak uploads full-size artifacts so a genuine drop
#   shows up as a trend, not a single noisy point.
#
# Usage: scripts/bench_diff.sh [results_dir]   (default: results)
set -euo pipefail

RESULTS_DIR="${1:-results}"

python3 - "$RESULTS_DIR" <<'PY'
import json
import sys
from pathlib import Path

results = Path(sys.argv[1])
THRESHOLD = 0.25  # warn when CI throughput drops >25% below baseline
failures = 0
warnings = 0


def load(path):
    """Load one artifact and hard-check the shared envelope."""
    global failures
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != 1:
        print(f"::error file={path}::schema != 1 (got {doc.get('schema')!r})")
        failures += 1
    if not str(doc.get("created_by", "")).startswith("gsm-bench/"):
        print(f"::error file={path}::created_by is not a gsm-bench harness")
        failures += 1
    return doc


def throughputs(name, doc):
    """Flatten one bench document to {metric_label: elements_per_sec}."""
    global failures
    out = {}
    try:
        if name == "overlap":
            for eng in doc["engines"]:
                out[f"{eng['engine']} ingest"] = float(eng["throughput_eps"])
        elif name == "shard":
            for run in doc["runs"]:
                out[f"k={run['shards']} ingest"] = float(run["throughput_eps"])
        elif name == "serve":
            out["server-off ingest"] = float(doc["ingest_off_eps"])
            out["server-on ingest"] = float(doc["ingest_on_eps"])
        elif name == "obs_overhead":
            out["recorder-off ingest"] = float(doc["ingest_off_eps"])
            out["recorder-on ingest"] = float(doc["ingest_on_eps"])
            out["recorder-traced ingest"] = float(doc["ingest_traced_eps"])
        elif name == "recovery":
            out["plain ingest"] = float(doc["ingest_plain_eps"])
            out["wal-off ingest"] = float(doc["ingest_wal_off_eps"])
            out["wal-fsync ingest"] = float(doc["ingest_wal_fsync_eps"])
            out["recovery replay"] = float(doc["recovery_eps"])
        elif name == "ingest":
            for run in doc["runs"]:
                mode = "scalar" if run["batch"] == 0 else f"batch={run['batch']}"
                out[f"k={run['shards']} {mode}"] = float(run["throughput_eps"])
    except (KeyError, TypeError, ValueError) as exc:
        print(f"::error::BENCH_{name}: malformed throughput fields ({exc})")
        failures += 1
    return out


for name in ("overlap", "shard", "serve", "obs_overhead", "recovery", "ingest"):
    base_path = results / f"BENCH_{name}.json"
    ci_path = results / f"BENCH_{name}_ci.json"
    if not ci_path.exists():
        print(f"bench_diff: {ci_path} absent, skipping {name}")
        continue
    if not base_path.exists():
        # A missing baseline is a bootstrap gap (a new lane lands before
        # its first committed baseline), not a harness bug — surface it
        # without failing the job.
        print(f"::warning file={ci_path}::no committed baseline {base_path}")
        warnings += 1
        continue
    base = throughputs(name, load(base_path))
    ci = throughputs(name, load(ci_path))
    for label, base_eps in sorted(base.items()):
        if label not in ci:
            # CI runs at smoke size; a baseline config absent from the CI
            # sweep (e.g. higher shard counts) is expected, not an error.
            print(f"bench_diff: {name}/{label}: not in CI artifact, skipped")
            continue
        ratio = ci[label] / base_eps if base_eps > 0 else float("inf")
        line = (
            f"{name}/{label}: baseline {base_eps:,.0f}/s, "
            f"ci {ci[label]:,.0f}/s (x{ratio:.2f})"
        )
        if ratio < 1.0 - THRESHOLD:
            print(f"::warning file={ci_path}::{line} — below the {THRESHOLD:.0%} floor")
            warnings += 1
        else:
            print(f"bench_diff: {line}")

print(f"bench_diff: {warnings} warning(s), {failures} schema failure(s)")
sys.exit(1 if failures else 0)
PY
