//! Fixed-width sliding-window summaries (paper §5.3).
//!
//! Queries over the *last `W` elements* of the stream. Both structures keep
//! a deque of per-block summaries; blocks are small enough (`Θ(εW)`) that
//! the one partially-expired block at the tail of the window costs at most
//! half the error budget, and the per-block summarization costs the other
//! half:
//!
//! * [`SlidingQuantile`] — blocks of `⌈εW/2⌉` elements, each summarized by a
//!   GK04 [`WindowSummary`] at ε/2; queries merge the live blocks. Rank
//!   error ≤ `εW`.
//! * [`SlidingFrequency`] — blocks of `⌈εW/4⌉` elements, each reduced to a
//!   pruned histogram (entries with count > `⌊εw/2⌋` survive); estimates
//!   sum the live blocks. Frequency error ≤ `εW`.
//!
//! As everywhere in this crate, blocks arrive *sorted* — the sorting engine
//! (the GPU co-processor in the paper) lives upstream.

use std::collections::VecDeque;

use crate::gk_window::WindowSummary;
use crate::histogram::histogram;
use crate::summary::OpCounter;

/// ε-approximate quantiles over a sliding window of the last `width`
/// elements.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct SlidingQuantile {
    eps: f64,
    width: usize,
    block: usize,
    deque: VecDeque<WindowSummary>,
    covered: u64,
    ops: OpCounter,
}

impl SlidingQuantile {
    /// Creates a sliding summary with rank error ≤ `eps · width`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1` and `width ≥ 2/eps` (smaller windows can
    /// simply be stored exactly).
    pub fn new(eps: f64, width: usize) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1), got {eps}");
        assert!(
            width as f64 >= 2.0 / eps,
            "width {width} too small for eps {eps}; store the window exactly instead"
        );
        let block = ((eps * width as f64) / 2.0).ceil() as usize;
        SlidingQuantile {
            eps,
            width,
            block: block.max(1),
            deque: VecDeque::new(),
            covered: 0,
            ops: OpCounter::default(),
        }
    }

    /// Error bound.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Window width in elements.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The block size callers must deliver (the final block of a stream may
    /// be shorter).
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Elements currently covered by live blocks (∈ `[width, width+block)`
    /// once the stream is long enough).
    pub fn covered(&self) -> u64 {
        self.covered
    }

    /// Operation counters for the merge work.
    pub fn ops(&self) -> OpCounter {
        self.ops
    }

    /// Stored entries across all blocks (memory footprint).
    pub fn entry_count(&self) -> usize {
        self.deque.iter().map(|s| s.entries().len()).sum()
    }

    /// Pushes one sorted block of up to [`Self::block_size`] elements.
    ///
    /// # Panics
    ///
    /// Panics if the block is empty or oversized.
    pub fn push_sorted_block(&mut self, sorted: &[f32]) {
        assert!(!sorted.is_empty(), "block must be non-empty");
        assert!(
            sorted.len() <= self.block,
            "block of {} exceeds {}",
            sorted.len(),
            self.block
        );
        self.deque
            .push_back(WindowSummary::from_sorted(sorted, self.eps / 2.0));
        self.covered += sorted.len() as u64;
        // Expire whole blocks no longer intersecting the window.
        while let Some(front) = self.deque.front() {
            if self.covered - front.count() >= self.width as u64 {
                self.covered -= front.count();
                self.deque.pop_front();
            } else {
                break;
            }
        }
    }

    /// Merges another sliding summary into this one by treating `other`'s
    /// blocks as the *continuation* of this stream: they are appended in
    /// order and expiry re-runs, so `merge(a, b)` is byte-identical to
    /// pushing `b`'s blocks into `a`. A sharded sliding window is therefore
    /// a window over the shard-concatenated tail, not an interleaving —
    /// callers that need true arrival order should route sliding sketches
    /// to a single shard.
    ///
    /// # Panics
    ///
    /// Panics if the two summaries have different `eps`, width, or block
    /// size.
    pub fn merge_from(&mut self, other: &Self, ops: &mut OpCounter) {
        assert!(
            self.eps == other.eps && self.width == other.width && self.block == other.block,
            "cannot merge sliding summaries with different configurations"
        );
        for s in &other.deque {
            self.deque.push_back(s.clone());
            self.covered += s.count();
            ops.moves += 1;
            while let Some(front) = self.deque.front() {
                ops.comparisons += 1;
                if self.covered - front.count() >= self.width as u64 {
                    self.covered -= front.count();
                    self.deque.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    /// Answers a φ-quantile query over (approximately) the last `width`
    /// elements.
    ///
    /// Merges the live blocks as a balanced tree: a sequential fold would
    /// re-copy the accumulated summary once per block (quadratic in the
    /// block count); the tree costs `O(total entries · log blocks)`.
    ///
    /// # Panics
    ///
    /// Panics if no block has been pushed.
    pub fn query(&mut self, phi: f64) -> f32 {
        let mut ops = self.ops;
        let answer = self.query_with(phi, &mut ops);
        self.ops = ops;
        answer
    }

    /// Answers a φ-quantile query **without mutating the summary** — the
    /// merge work is charged to a throwaway counter instead of
    /// [`Self::ops`]. This is the *frozen* form used by immutable published
    /// snapshots (the serving layer answers many concurrent reads against
    /// one shared summary): the returned value is byte-identical to
    /// [`Self::query`] on the same state.
    ///
    /// # Panics
    ///
    /// Panics if no block has been pushed.
    pub fn query_frozen(&self, phi: f64) -> f32 {
        self.query_with(phi, &mut OpCounter::default())
    }

    /// The shared query path: balanced-tree merge of the live blocks,
    /// charging merge work to `ops`.
    fn query_with(&self, phi: f64, ops: &mut OpCounter) -> f32 {
        assert!(
            !self.deque.is_empty(),
            "cannot query an empty sliding window"
        );
        let mut layer: Vec<WindowSummary> = self.deque.iter().cloned().collect();
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|pair| match pair {
                    [a, b] => WindowSummary::merge(a, b, ops),
                    [a] => a.clone(),
                    _ => unreachable!("chunks(2)"),
                })
                .collect();
        }
        layer[0].query(phi)
    }
}

/// One frequency block: the block's element count and its pruned histogram.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct FreqBlock {
    total: u64,
    entries: Vec<(f32, u64)>,
}

/// ε-approximate frequencies over a sliding window of the last `width`
/// elements.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct SlidingFrequency {
    eps: f64,
    width: usize,
    block: usize,
    deque: VecDeque<FreqBlock>,
    covered: u64,
}

impl SlidingFrequency {
    /// Creates a sliding frequency summary with error ≤ `eps · width`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1` and `width ≥ 4/eps`.
    pub fn new(eps: f64, width: usize) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1), got {eps}");
        assert!(
            width as f64 >= 4.0 / eps,
            "width {width} too small for eps {eps}; store the window exactly instead"
        );
        let block = ((eps * width as f64) / 4.0).ceil() as usize;
        SlidingFrequency {
            eps,
            width,
            block: block.max(1),
            deque: VecDeque::new(),
            covered: 0,
        }
    }

    /// Error bound.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Window width in elements.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The block size callers must deliver.
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Elements currently covered by live blocks.
    pub fn covered(&self) -> u64 {
        self.covered
    }

    /// Stored histogram entries across blocks (memory footprint).
    pub fn entry_count(&self) -> usize {
        self.deque.iter().map(|b| b.entries.len()).sum()
    }

    /// Pushes one sorted block of up to [`Self::block_size`] elements.
    ///
    /// # Panics
    ///
    /// Panics if the block is empty or oversized.
    pub fn push_sorted_block(&mut self, sorted: &[f32]) {
        assert!(!sorted.is_empty(), "block must be non-empty");
        assert!(
            sorted.len() <= self.block,
            "block of {} exceeds {}",
            sorted.len(),
            self.block
        );
        // Histogram, pruned: entries with count ≤ ⌊εw/2⌋ are dropped, so a
        // value loses at most εw/2 counts per block.
        let drop = ((self.eps * self.block as f64) / 2.0).floor() as u64;
        let entries: Vec<(f32, u64)> = histogram(sorted)
            .into_iter()
            .filter(|&(_, c)| c > drop)
            .collect();
        self.deque.push_back(FreqBlock {
            total: sorted.len() as u64,
            entries,
        });
        self.covered += sorted.len() as u64;
        while let Some(front) = self.deque.front() {
            if self.covered - front.total >= self.width as u64 {
                self.covered -= front.total;
                self.deque.pop_front();
            } else {
                break;
            }
        }
    }

    /// Merges another sliding frequency summary into this one by appending
    /// `other`'s blocks as the continuation of this stream and re-running
    /// expiry — byte-identical to pushing `other`'s blocks here (see
    /// [`SlidingQuantile::merge_from`] for the ordering caveat).
    ///
    /// # Panics
    ///
    /// Panics if the two summaries have different `eps`, width, or block
    /// size.
    pub fn merge_from(&mut self, other: &Self, ops: &mut OpCounter) {
        assert!(
            self.eps == other.eps && self.width == other.width && self.block == other.block,
            "cannot merge sliding summaries with different configurations"
        );
        for b in &other.deque {
            self.deque.push_back(b.clone());
            self.covered += b.total;
            ops.moves += 1;
            while let Some(front) = self.deque.front() {
                ops.comparisons += 1;
                if self.covered - front.total >= self.width as u64 {
                    self.covered -= front.total;
                    self.deque.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    /// The estimated frequency of `value` in (approximately) the last
    /// `width` elements. Error ≤ `eps · width` in either direction.
    pub fn estimate(&self, value: f32) -> u64 {
        self.deque
            .iter()
            .map(|b| {
                b.entries
                    .binary_search_by(|e| e.0.total_cmp(&value))
                    .map(|i| b.entries[i].1)
                    .unwrap_or(0)
            })
            .sum()
    }

    /// All values with estimated frequency ≥ `(s − eps) · width`, ascending.
    /// Contains every value with true window frequency ≥ `s · width`.
    ///
    /// # Panics
    ///
    /// Panics unless `eps < s ≤ 1`.
    pub fn heavy_hitters(&self, s: f64) -> Vec<(f32, u64)> {
        assert!(
            s > self.eps && s <= 1.0,
            "support must satisfy eps < s <= 1"
        );
        let mut totals: Vec<(f32, u64)> = Vec::new();
        let mut values: Vec<f32> = self
            .deque
            .iter()
            .flat_map(|b| b.entries.iter().map(|&(v, _)| v))
            .collect();
        values.sort_by(f32::total_cmp);
        values.dedup();
        let threshold = (s - self.eps) * self.width as f64;
        for v in values {
            let c = self.estimate(v);
            if c as f64 >= threshold {
                totals.push((v, c));
            }
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactStats;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Pushes `data` in sorted blocks; returns the sliding structures.
    fn feed_quantile(sq: &mut SlidingQuantile, data: &[f32]) {
        for chunk in data.chunks(sq.block_size()) {
            let mut b = chunk.to_vec();
            b.sort_by(f32::total_cmp);
            sq.push_sorted_block(&b);
        }
    }

    #[test]
    fn quantiles_track_the_recent_window() {
        let eps = 0.05;
        let width = 2000;
        let mut sq = SlidingQuantile::new(eps, width);
        // Phase 1: values near 0; phase 2: values near 100. After phase 2
        // fills the window, the median must be near 100, not 50.
        let mut rng = StdRng::seed_from_u64(1);
        let phase1: Vec<f32> = (0..5000).map(|_| rng.random_range(0.0..1.0)).collect();
        let phase2: Vec<f32> = (0..5000).map(|_| rng.random_range(100.0..101.0)).collect();
        feed_quantile(&mut sq, &phase1);
        assert!(sq.query(0.5) < 1.0);
        feed_quantile(&mut sq, &phase2);
        assert!(sq.query(0.5) > 100.0, "window must have fully turned over");
    }

    #[test]
    fn query_frozen_matches_query_and_leaves_state_untouched() {
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<f32> = (0..8_000).map(|_| rng.random_range(0.0..1.0)).collect();
        let mut sq = SlidingQuantile::new(0.05, 3000);
        feed_quantile(&mut sq, &data);
        let before = serde_json::to_string(&sq).unwrap();
        for phi in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let frozen = sq.query_frozen(phi);
            assert_eq!(
                frozen.to_bits(),
                sq.clone().query(phi).to_bits(),
                "frozen answer must be byte-identical at phi={phi}"
            );
        }
        assert_eq!(
            serde_json::to_string(&sq).unwrap(),
            before,
            "query_frozen must not mutate the summary"
        );
    }

    #[test]
    fn quantile_error_within_eps_of_window() {
        let eps = 0.02;
        let width = 5000;
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<f32> = (0..20_000).map(|_| rng.random_range(0.0..1.0)).collect();
        let mut sq = SlidingQuantile::new(eps, width);
        feed_quantile(&mut sq, &data);
        // Oracle over the elements the deque actually covers (within one
        // block of the ideal window).
        let covered = sq.covered() as usize;
        assert!(covered >= width && covered < width + sq.block_size());
        let oracle = ExactStats::new(&data[data.len() - width..]);
        for phi in [0.1, 0.5, 0.9] {
            let err = oracle.quantile_rank_error(phi, sq.query(phi));
            assert!(err <= eps + 1e-9, "phi={phi} err={err}");
        }
    }

    #[test]
    fn quantile_memory_depends_on_eps_not_width() {
        // The deque holds ~(2/ε) blocks of ~(2/ε) entries: Θ(1/ε²)
        // regardless of the window width.
        let eps = 0.02;
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = Vec::new();
        for width in [50_000usize, 200_000] {
            let data: Vec<f32> = (0..2 * width).map(|_| rng.random_range(0.0..1.0)).collect();
            let mut sq = SlidingQuantile::new(eps, width);
            feed_quantile(&mut sq, &data);
            counts.push(sq.entry_count());
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!(
            (0.6..1.7).contains(&ratio),
            "counts {counts:?} must not scale with width"
        );
        assert!(
            counts[1] < (8.0 / (eps * eps)) as usize,
            "counts {counts:?} exceed Θ(1/ε²)"
        );
    }

    #[test]
    fn query_before_window_fills() {
        let mut sq = SlidingQuantile::new(0.1, 1000);
        let block: Vec<f32> = (0..sq.block_size()).map(|i| i as f32).collect();
        sq.push_sorted_block(&block);
        // Queries work over whatever has arrived.
        let q = sq.query(0.5);
        assert!((0.0..block.len() as f32).contains(&q));
    }

    fn feed_frequency(sf: &mut SlidingFrequency, data: &[f32]) {
        for chunk in data.chunks(sf.block_size()) {
            let mut b = chunk.to_vec();
            b.sort_by(f32::total_cmp);
            sf.push_sorted_block(&b);
        }
    }

    #[test]
    fn frequency_error_within_eps_of_window() {
        let eps = 0.02;
        let width = 10_000;
        let mut rng = StdRng::seed_from_u64(4);
        // Skewed stream over a small domain so frequencies are meaningful.
        let data: Vec<f32> = (0..40_000)
            .map(|_| {
                if rng.random_range(0..4) == 0 {
                    rng.random_range(0..5) as f32
                } else {
                    rng.random_range(0..200) as f32
                }
            })
            .collect();
        let mut sf = SlidingFrequency::new(eps, width);
        feed_frequency(&mut sf, &data);
        let oracle = ExactStats::new(&data[data.len() - width..]);
        let bound = (eps * width as f64).ceil() as i64 + sf.block_size() as i64;
        for v in 0..10 {
            let v = v as f32;
            let est = sf.estimate(v) as i64;
            let truth = oracle.frequency(v) as i64;
            assert!(
                (est - truth).abs() <= bound,
                "value {v}: est {est} truth {truth}"
            );
        }
    }

    #[test]
    fn frequency_heavy_hitters_no_false_negatives() {
        let eps = 0.01;
        let width = 20_000;
        let s = 0.05;
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<f32> = (0..60_000)
            .map(|_| {
                if rng.random_range(0..10) < 4 {
                    rng.random_range(0..5) as f32 // hot values: ~8% each
                } else {
                    rng.random_range(100..50_000) as f32
                }
            })
            .collect();
        let mut sf = SlidingFrequency::new(eps, width);
        feed_frequency(&mut sf, &data);
        let oracle = ExactStats::new(&data[data.len() - width..]);
        let truth = oracle.heavy_hitters((s * width as f64) as u64);
        let answer: Vec<f32> = sf.heavy_hitters(s).iter().map(|&(v, _)| v).collect();
        for (v, _) in truth {
            assert!(answer.contains(&v), "missing heavy hitter {v}");
        }
    }

    #[test]
    fn frequency_window_turnover() {
        let eps = 0.05;
        let width = 2000;
        let mut sf = SlidingFrequency::new(eps, width);
        let hot_then_gone: Vec<f32> = vec![7.0; 3000];
        let cold: Vec<f32> = (0..3000).map(|i| (100 + i % 500) as f32).collect();
        feed_frequency(&mut sf, &hot_then_gone);
        assert!(sf.estimate(7.0) as usize >= width - sf.block_size());
        feed_frequency(&mut sf, &cold);
        assert_eq!(sf.estimate(7.0), 0, "expired value must vanish");
    }

    #[test]
    fn frequency_memory_depends_on_eps_not_width() {
        // ~(4/ε) blocks each pruned to ≤ 2/ε surviving entries: Θ(1/ε²)
        // regardless of width (once blocks are large enough to prune).
        let eps = 0.02;
        let mut rng = StdRng::seed_from_u64(6);
        let mut counts = Vec::new();
        for width in [100_000usize, 400_000] {
            // Skewed stream: hot values survive pruning, the uniform tail
            // is dropped block-by-block.
            let data: Vec<f32> = (0..2 * width)
                .map(|_| {
                    if rng.random_range(0..10) < 3 {
                        rng.random_range(0..20) as f32
                    } else {
                        rng.random_range(100..100_000) as f32
                    }
                })
                .collect();
            let mut sf = SlidingFrequency::new(eps, width);
            feed_frequency(&mut sf, &data);
            counts.push(sf.entry_count());
        }
        assert!(counts[0] > 0, "hot values must survive pruning");
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "counts {counts:?} must not scale with width"
        );
        assert!(
            counts[1] < (16.0 / (eps * eps)) as usize,
            "counts {counts:?} exceed Θ(1/ε²)"
        );
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_window_rejected() {
        let _ = SlidingQuantile::new(0.001, 100);
    }

    #[test]
    fn quantile_merge_equals_sequential_push() {
        let (eps, width) = (0.05, 2000);
        let mut rng = StdRng::seed_from_u64(7);
        let first: Vec<f32> = (0..3000).map(|_| rng.random_range(0.0..1.0)).collect();
        let second: Vec<f32> = (0..3000).map(|_| rng.random_range(5.0..6.0)).collect();

        let mut sequential = SlidingQuantile::new(eps, width);
        feed_quantile(&mut sequential, &first);
        feed_quantile(&mut sequential, &second);

        let mut merged = SlidingQuantile::new(eps, width);
        feed_quantile(&mut merged, &first);
        let mut tail = SlidingQuantile::new(eps, width);
        feed_quantile(&mut tail, &second);
        let mut ops = OpCounter::default();
        merged.merge_from(&tail, &mut ops);

        assert!(ops.total() > 0);
        assert_eq!(merged.covered(), sequential.covered());
        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&sequential).unwrap(),
            "merge must be byte-identical to sequential pushes"
        );
        for phi in [0.1, 0.5, 0.9] {
            assert_eq!(merged.query(phi), sequential.query(phi));
        }
    }

    #[test]
    fn frequency_merge_equals_sequential_push() {
        let (eps, width) = (0.05, 2000);
        let mut rng = StdRng::seed_from_u64(8);
        let first: Vec<f32> = (0..3000).map(|_| rng.random_range(0..20) as f32).collect();
        let second: Vec<f32> = (0..3000).map(|_| rng.random_range(0..20) as f32).collect();

        let mut sequential = SlidingFrequency::new(eps, width);
        feed_frequency(&mut sequential, &first);
        feed_frequency(&mut sequential, &second);

        let mut merged = SlidingFrequency::new(eps, width);
        feed_frequency(&mut merged, &first);
        let mut tail = SlidingFrequency::new(eps, width);
        feed_frequency(&mut tail, &second);
        merged.merge_from(&tail, &mut OpCounter::default());

        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&sequential).unwrap(),
            "merge must be byte-identical to sequential pushes"
        );
        for v in 0..20 {
            assert_eq!(merged.estimate(v as f32), sequential.estimate(v as f32));
        }
    }

    #[test]
    #[should_panic(expected = "different configurations")]
    fn sliding_merge_rejects_mismatched_widths() {
        let mut a = SlidingQuantile::new(0.05, 2000);
        let b = SlidingQuantile::new(0.05, 4000);
        a.merge_from(&b, &mut OpCounter::default());
    }
}
