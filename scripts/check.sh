#!/usr/bin/env bash
# Tier-1 gate: everything that must stay green on every commit.
# Run from the repository root (or any subdirectory; cargo finds the
# workspace).
set -euo pipefail

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

echo "tier-1 gate: OK"
