//! The GPU cost model: translates executed render passes into simulated time
//! on a calibrated device.
//!
//! # Calibration (GeForce 6800 Ultra, paper §3.3 and §4.5)
//!
//! | Resource | Paper figure | Model parameter |
//! |---|---|---|
//! | Fragment pipes | 16, each 4-wide vector ⇒ 64 ops/clock | `fragment_pipes`, `vector_width` |
//! | Core clock | 400 MHz | `core_clock` |
//! | Video memory bandwidth | 35.2 GB/s (256-bit @ 1.2 GHz) | `mem_bandwidth` |
//! | Blend cost | 6–7 cycles per blending operation (measured in §4.5) | emerges from `blend_cycles = 5.0` plus the per-step framebuffer→texture blit |
//! | Pass setup | constant overhead that dominates for n < 16 K (§4.5) | `pass_overhead` |
//!
//! The paper *derives* its 6–7 cycles/blend figure by dividing observed total
//! sort time by the number of blend operations, so it folds in the per-step
//! copy pass (Routine 4.3, line 8). We therefore set the raw blend cost to
//! 5.0 cycles and model the blit separately; the E6 harness checks that the
//! *effective* figure computed the paper's way lands in the 6–7 band.
//!
//! A render pass is limited by the slower of its compute pipeline and its
//! DRAM traffic; texture and framebuffer caches filter most of the raw fetch
//! traffic (the sorter's mirrored access pattern is highly local), modeled as
//! constant miss rates. With the defaults the PBSN workload is
//! **compute-bound**, matching the paper's blend-throughput analysis.

use gsm_model::{Hertz, SimTime};

/// Byte size of one RGBA-f32 texel.
pub(crate) const TEXEL_BYTES: u64 = 16;

/// Calibrated performance parameters for the simulated GPU.
///
/// Construct via a preset ([`GpuCostModel::geforce_6800_ultra`] for the
/// paper's device, [`GpuCostModel::ideal`] for functional testing) and
/// override fields as needed for sensitivity studies.
#[derive(Clone, Debug)]
pub struct GpuCostModel {
    /// Core (computational) clock.
    pub core_clock: Hertz,
    /// Number of parallel fragment pipelines.
    pub fragment_pipes: u32,
    /// SIMD width of each pipeline (RGBA lanes).
    pub vector_width: u32,
    /// Effective cycles per *texel* for a fixed-function blended fragment
    /// (covers fetch + blend + write issue; the paper measures 6–7).
    pub blend_cycles: f64,
    /// Effective cycles per texel for a `Replace` (copy) fragment.
    pub replace_cycles: f64,
    /// Video-memory bandwidth in bytes/second.
    pub mem_bandwidth: f64,
    /// Fraction of texture-fetch bytes that miss the texture cache and hit
    /// DRAM.
    pub tex_cache_miss_rate: f64,
    /// Fraction of framebuffer-read bytes that miss the ROP cache and hit
    /// DRAM.
    pub fb_cache_miss_rate: f64,
    /// Effective cycles per fragment for a depth-only (color-write-off)
    /// pass. NV40-class hardware runs z-only rendering at double rate.
    pub depth_cycles: f64,
    /// Effective cycles per texel for a framebuffer→texture blit
    /// (`glCopyTexSubImage`).
    pub blit_cycles: f64,
    /// Modeled DRAM traffic per blitted texel, in bytes (color compression
    /// keeps this below the raw 32 B read+write).
    pub blit_dram_bytes_per_texel: f64,
    /// Driver + state-change + submit cost per render pass (charged once per
    /// pass, on the CPU side of the fence).
    pub pass_overhead: SimTime,
    /// Vertex-processing cost per quad within a pass.
    pub quad_overhead: SimTime,
}

impl GpuCostModel {
    /// The paper's device: NVIDIA GeForce 6800 Ultra.
    ///
    /// 16 fragment pipes × 4-wide vectors @ 400 MHz; 35.2 GB/s video memory;
    /// raw blend at 4.75 cycles/texel so that the *effective* figure —
    /// total sort cycles divided by blend count, the way §4.5 measures it —
    /// lands at 6–7 once the per-step blit is folded in; pass overhead set
    /// so that GPU sorting is ~3× slower than CPU quicksort below n ≈ 16 K,
    /// as observed in §4.5.
    pub fn geforce_6800_ultra() -> Self {
        GpuCostModel {
            core_clock: Hertz::from_mhz(400.0),
            fragment_pipes: 16,
            vector_width: 4,
            blend_cycles: 4.75,
            replace_cycles: 2.0,
            mem_bandwidth: 35.2e9,
            tex_cache_miss_rate: 0.10,
            fb_cache_miss_rate: 0.25,
            depth_cycles: 0.5,
            blit_cycles: 1.5,
            blit_dram_bytes_per_texel: 8.0,
            pass_overhead: SimTime::from_micros(3.0),
            quad_overhead: SimTime::from_nanos(100.0),
        }
    }

    /// The next shipped generation: NVIDIA GeForce 7800 GTX (mid-2005).
    ///
    /// 24 fragment pipes @ 430 MHz, 54.4 GB/s video memory. Used by the
    /// E10 harness to reproduce §4.5's claim that GPU rasterization
    /// throughput grows faster than CPU clocks.
    pub fn geforce_7800_gtx() -> Self {
        GpuCostModel {
            core_clock: Hertz::from_mhz(430.0),
            fragment_pipes: 24,
            mem_bandwidth: 54.4e9,
            ..Self::geforce_6800_ultra()
        }
    }

    /// A zero-cost model for functional tests: every operation takes zero
    /// simulated time.
    pub fn ideal() -> Self {
        GpuCostModel {
            core_clock: Hertz::from_ghz(1.0),
            fragment_pipes: 1,
            vector_width: 4,
            blend_cycles: 0.0,
            replace_cycles: 0.0,
            mem_bandwidth: 1e18,
            tex_cache_miss_rate: 0.0,
            fb_cache_miss_rate: 0.0,
            depth_cycles: 0.0,
            blit_cycles: 0.0,
            blit_dram_bytes_per_texel: 0.0,
            pass_overhead: SimTime::ZERO,
            quad_overhead: SimTime::ZERO,
        }
    }

    /// Time for the compute pipeline to process `texels` fragments at
    /// `cycles_per_texel`, spread over all fragment pipes.
    ///
    /// One texel carries all four vector lanes, so the per-pipe rate is one
    /// texel per `cycles_per_texel` cycles regardless of `vector_width`.
    #[inline]
    pub fn compute_time(&self, texels: u64, cycles_per_texel: f64) -> SimTime {
        let cycles = texels as f64 * cycles_per_texel / self.fragment_pipes as f64;
        self.core_clock.time_for_f64(cycles)
    }

    /// Time for `dram_bytes` of DRAM traffic.
    #[inline]
    pub fn memory_time(&self, dram_bytes: f64) -> SimTime {
        SimTime::from_secs(dram_bytes.max(0.0) / self.mem_bandwidth)
    }

    /// DRAM traffic generated by one fixed-function fragment, in bytes.
    ///
    /// `reads_dst` distinguishes blending ops (which read the framebuffer)
    /// from `Replace`.
    #[inline]
    pub fn fragment_dram_bytes(&self, reads_dst: bool) -> f64 {
        let tex = TEXEL_BYTES as f64 * self.tex_cache_miss_rate;
        let fb_read = if reads_dst {
            TEXEL_BYTES as f64 * self.fb_cache_miss_rate
        } else {
            0.0
        };
        let fb_write = TEXEL_BYTES as f64;
        tex + fb_read + fb_write
    }

    /// Total simulated time for one render pass: per-pass and per-quad
    /// overheads, plus the larger of the compute and memory components.
    pub fn pass_time(
        &self,
        quads: u64,
        texels: u64,
        cycles_per_texel: f64,
        dram_bytes: f64,
    ) -> PassTime {
        let overhead = self.pass_overhead + self.quad_overhead * quads as f64;
        let compute = self.compute_time(texels, cycles_per_texel);
        let memory = self.memory_time(dram_bytes);
        PassTime {
            overhead,
            compute,
            memory,
        }
    }
}

/// The time breakdown of a single render pass.
#[derive(Clone, Copy, Debug)]
pub struct PassTime {
    /// Driver/vertex overhead (serial with rendering).
    pub overhead: SimTime,
    /// Compute-pipeline time.
    pub compute: SimTime,
    /// DRAM-traffic time.
    pub memory: SimTime,
}

impl PassTime {
    /// Wall time of the pass: overhead plus the binding resource.
    #[inline]
    pub fn total(&self) -> SimTime {
        self.overhead + self.compute.max(self.memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_matches_published_numbers() {
        let m = GpuCostModel::geforce_6800_ultra();
        assert_eq!(m.core_clock.as_hz(), 4e8);
        assert_eq!(m.fragment_pipes, 16);
        assert_eq!(m.vector_width, 4);
        assert_eq!(m.mem_bandwidth, 35.2e9);
        // Raw blend below the paper's 6–7 band; the blit makes up the rest
        // (checked end-to-end in gsm-sort and the fig4 harness).
        assert!(m.blend_cycles > 0.0 && m.blend_cycles <= 7.0);
    }

    #[test]
    fn compute_time_hand_check() {
        let m = GpuCostModel::geforce_6800_ultra();
        // 16 M texels at 4.75 cycles over 16 pipes at 400 MHz:
        // 16e6 * 4.75 / 16 / 4e8 = 11.875 ms.
        let t = m.compute_time(16_000_000, m.blend_cycles);
        assert!((t.as_millis() - 11.875).abs() < 1e-9);
    }

    #[test]
    fn memory_time_hand_check() {
        let m = GpuCostModel::geforce_6800_ultra();
        // 35.2 GB at 35.2 GB/s = 1 s.
        let t = m.memory_time(35.2e9);
        assert!((t.as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn blend_fragment_traffic_exceeds_replace() {
        let m = GpuCostModel::geforce_6800_ultra();
        assert!(m.fragment_dram_bytes(true) > m.fragment_dram_bytes(false));
        // Write traffic is always at least one texel.
        assert!(m.fragment_dram_bytes(false) >= TEXEL_BYTES as f64);
    }

    #[test]
    fn pass_time_takes_max_of_compute_and_memory() {
        let m = GpuCostModel::geforce_6800_ultra();
        let p = m.pass_time(1, 1_000_000, m.blend_cycles, 1e12);
        // 1 TB of traffic dwarfs compute: pass must be memory-bound.
        assert_eq!(p.total(), p.overhead + p.memory);
        let p2 = m.pass_time(1, 1_000_000, m.blend_cycles, 16.0);
        assert_eq!(p2.total(), p2.overhead + p2.compute);
    }

    #[test]
    fn pbsn_workload_is_compute_bound_on_default_model() {
        // Sanity-pin the calibration: a blended texel's DRAM traffic at
        // default miss rates must take less time than its 6.5/16 cycles of
        // compute, otherwise the reproduced figures would be bandwidth-bound,
        // contradicting the paper's blend-throughput analysis.
        let m = GpuCostModel::geforce_6800_ultra();
        let per_texel_compute = m.compute_time(1, m.blend_cycles);
        let per_texel_memory = m.memory_time(m.fragment_dram_bytes(true));
        assert!(per_texel_memory < per_texel_compute);
    }

    #[test]
    fn next_generation_preset_is_strictly_faster() {
        let old = GpuCostModel::geforce_6800_ultra();
        let new = GpuCostModel::geforce_7800_gtx();
        let texels = 1 << 24;
        assert!(
            new.compute_time(texels, new.blend_cycles) < old.compute_time(texels, old.blend_cycles)
        );
        assert!(new.memory_time(1e9) < old.memory_time(1e9));
        // ~1.6x compute throughput: 24*430 / (16*400).
        let ratio = old.compute_time(texels, old.blend_cycles).as_secs()
            / new.compute_time(texels, new.blend_cycles).as_secs();
        assert!((1.5..1.75).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn ideal_model_is_free() {
        let m = GpuCostModel::ideal();
        let p = m.pass_time(100, 1 << 20, m.blend_cycles, 0.0);
        assert!(p.total().is_zero());
    }
}
