#!/usr/bin/env bash
# Tier-1 gate: everything that must stay green on every commit.
# Run from the repository root (or any subdirectory; cargo finds the
# workspace). CI runs exactly this script (see .github/workflows/ci.yml),
# so passing locally means passing the gate.
#
# Each step prints its wall-clock time as it finishes and a summary table
# closes the run, so CI logs show where the time goes.
set -euo pipefail

STEP_NAMES=()
STEP_SECS=()

run_step() {
  local name="$1"
  shift
  echo "==> ${name}: $*"
  local start end
  start=$(date +%s)
  "$@"
  end=$(date +%s)
  local secs=$((end - start))
  echo "==> ${name}: done in ${secs}s"
  STEP_NAMES+=("${name}")
  STEP_SECS+=("${secs}")
}

run_step build cargo build --release
run_step test cargo test -q
run_step clippy cargo clippy --all-targets -- -D warnings
run_step fmt cargo fmt --all --check
run_step doc env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo
printf '%-10s %8s\n' step seconds
printf '%-10s %8s\n' ---- -------
total=0
for i in "${!STEP_NAMES[@]}"; do
  printf '%-10s %8s\n' "${STEP_NAMES[$i]}" "${STEP_SECS[$i]}"
  total=$((total + STEP_SECS[i]))
done
printf '%-10s %8s\n' total "${total}"

echo "tier-1 gate: OK"
