//! **Durability bench** — WAL ingest overhead and crash-recovery speed →
//! `results/BENCH_recovery.json`.
//!
//! Three ingest runs over the same stream on the host engine: no
//! durability (baseline), WAL with `FsyncPolicy::Off` (log writes and
//! incremental checkpoints, no log fsyncs), and WAL with
//! `FsyncPolicy::EverySeal` (one fsync per sealed window — the
//! bounded-loss configuration). The overhead percentages therefore price
//! the *whole* durable configuration, checkpointing included. The
//! fully-durable run is then killed (dropped) and recovered, timing
//! checkpoint restore + WAL tail replay, and the recovered answers are
//! byte-compared against the baseline run over the same elements.
//!
//! ```text
//! cargo run --release -p gsm-bench --bin bench_recovery [-- --elements 262144
//!     --checkpoint-every 24 --out results/BENCH_recovery.json]
//! ```

use std::time::Instant;

use gsm_bench::{envelope_json, write_result, Args, Table};
use gsm_core::Engine;
use gsm_dsms::{DurableOptions, StreamEngine};
use gsm_durable::{CheckpointPolicy, FsyncPolicy};
use gsm_obs::Recorder;

#[derive(serde::Serialize)]
struct Report {
    elements: u64,
    window: u64,
    checkpoint_every: u64,
    ingest_plain_eps: f64,
    ingest_wal_off_eps: f64,
    ingest_wal_fsync_eps: f64,
    wal_overhead_off_pct: f64,
    wal_overhead_fsync_pct: f64,
    wal_bytes: u64,
    wal_segments: u64,
    wal_appends: u64,
    wal_fsyncs: u64,
    checkpoints: u64,
    recovery_secs: f64,
    recovery_eps: f64,
    recovered_count: u64,
    replayed_records: u64,
    byte_identical: bool,
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("gsm-bench-recovery-{}-{tag}", std::process::id()))
}

fn stream(elements: usize) -> Vec<f32> {
    // Deterministic skewed mix: frequent small ids over a wide tail.
    (0..elements)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
            if h % 5 == 0 {
                (h % 16) as f32
            } else {
                (h % 65_536) as f32
            }
        })
        .collect()
}

fn build(
    durable: Option<DurableOptions>,
    rec: Recorder,
    n_hint: u64,
) -> (StreamEngine, gsm_dsms::QueryId, gsm_dsms::QueryId) {
    let mut eng = StreamEngine::new(Engine::Host)
        .with_n_hint(n_hint)
        .with_recorder(rec);
    if let Some(opts) = durable {
        eng = eng.with_durability(opts).expect("scratch durable dir");
    }
    let q = eng.register_quantile(0.02);
    let f = eng.register_frequency(0.005);
    (eng, q, f)
}

fn main() {
    let args = Args::parse();
    let window = 1024usize;
    // Round down to whole windows so the full stream is sealed and logged
    // (recovery then answers over every pushed element).
    let elements: usize = (args.get_num::<usize>("elements", 262_144) / window) * window;
    // 24 does not divide the default 256-window stream, so the crash lands
    // mid-interval and recovery exercises both the checkpoint restore and
    // a genuine WAL tail replay, the way a real crash would.
    let checkpoint_every: u64 = args.get_num("checkpoint-every", 24);
    let out = args
        .get("out")
        .unwrap_or("results/BENCH_recovery.json")
        .to_string();
    let data = stream(elements);
    let opts = |dir: &std::path::Path, fsync| {
        DurableOptions::new(dir)
            .fsync(fsync)
            .checkpoint(CheckpointPolicy::EveryWindows(checkpoint_every))
    };

    println!("# bench_recovery: {elements} elements, window {window}, checkpoint every {checkpoint_every} windows");

    // Baseline: no durability. Kept alive as the byte-identity reference
    // (k = 1, so checkpoint-time flushes in the durable runs are no-ops
    // and the plain run chunks windows identically).
    let (mut plain, q, f) = build(None, Recorder::disabled(), elements as u64);
    let t = Instant::now();
    plain.push_all(data.iter().copied());
    let plain_secs = t.elapsed().as_secs_f64();

    // WAL, no fsync: the log-write cost alone.
    let off_dir = scratch_dir("off");
    std::fs::remove_dir_all(&off_dir).ok();
    let (mut wal_off, _, _) = build(
        Some(opts(&off_dir, FsyncPolicy::Off)),
        Recorder::disabled(),
        elements as u64,
    );
    let t = Instant::now();
    wal_off.push_all(data.iter().copied());
    let off_secs = t.elapsed().as_secs_f64();
    drop(wal_off);

    // WAL, fsync every seal: the bounded-loss configuration.
    let fsync_dir = scratch_dir("fsync");
    std::fs::remove_dir_all(&fsync_dir).ok();
    let rec = Recorder::enabled();
    let (mut wal_fsync, _, _) = build(
        Some(opts(&fsync_dir, FsyncPolicy::EverySeal)),
        rec.clone(),
        elements as u64,
    );
    let t = Instant::now();
    wal_fsync.push_all(data.iter().copied());
    let fsync_secs = t.elapsed().as_secs_f64();
    drop(wal_fsync); // the kill

    let mut wal_bytes = 0u64;
    let mut wal_segments = 0u64;
    for entry in std::fs::read_dir(&fsync_dir).expect("wal dir") {
        let entry = entry.expect("dir entry");
        if entry.file_name().to_string_lossy().ends_with(".seg") {
            wal_segments += 1;
            wal_bytes += entry.metadata().expect("metadata").len();
        }
    }

    let t = Instant::now();
    let (mut recovered, report) = StreamEngine::recover_from(
        Engine::Host,
        opts(&fsync_dir, FsyncPolicy::EverySeal),
        Recorder::disabled(),
    )
    .expect("recovery");
    let recovery_secs = t.elapsed().as_secs_f64();

    assert_eq!(
        report.recovered_count, elements as u64,
        "whole-window stream: nothing may be lost"
    );
    // QueryIds are registration indices, stable across checkpoint/restore,
    // so the plain engine's handles address the recovered engine too.
    let mut byte_identical = true;
    for phi in [0.01, 0.25, 0.5, 0.75, 0.99] {
        byte_identical &= recovered.quantile(q, phi).to_bits() == plain.quantile(q, phi).to_bits();
    }
    byte_identical &= recovered.heavy_hitters(f, 0.01) == plain.heavy_hitters(f, 0.01);

    let report = Report {
        elements: elements as u64,
        window: window as u64,
        checkpoint_every,
        ingest_plain_eps: elements as f64 / plain_secs,
        ingest_wal_off_eps: elements as f64 / off_secs,
        ingest_wal_fsync_eps: elements as f64 / fsync_secs,
        wal_overhead_off_pct: 100.0 * (off_secs - plain_secs) / plain_secs,
        wal_overhead_fsync_pct: 100.0 * (fsync_secs - plain_secs) / plain_secs,
        wal_bytes,
        wal_segments,
        wal_appends: rec.counter("wal_appends"),
        wal_fsyncs: rec.counter("wal_fsyncs"),
        checkpoints: rec.counter("wal_checkpoints"),
        recovery_secs,
        recovery_eps: report.recovered_count as f64 / recovery_secs,
        recovered_count: report.recovered_count,
        replayed_records: report.replayed_records,
        byte_identical,
    };
    assert!(
        report.byte_identical,
        "recovered answers must match the live run"
    );

    let mut table = Table::new(["lane", "elements/s", "overhead vs plain"]);
    table.row([
        "ingest plain".to_string(),
        format!("{:.0}", report.ingest_plain_eps),
        "-".to_string(),
    ]);
    table.row([
        "ingest wal(off)".to_string(),
        format!("{:.0}", report.ingest_wal_off_eps),
        format!("{:+.1}%", report.wal_overhead_off_pct),
    ]);
    table.row([
        "ingest wal(fsync)".to_string(),
        format!("{:.0}", report.ingest_wal_fsync_eps),
        format!("{:+.1}%", report.wal_overhead_fsync_pct),
    ]);
    table.row([
        "recovery".to_string(),
        format!("{:.0}", report.recovery_eps),
        format!(
            "{} records replayed in {:.3}s",
            report.replayed_records, report.recovery_secs
        ),
    ]);
    table.print(args.flag("csv"));

    let payload = serde_json::to_string(&report).expect("report serializes infallibly");
    write_result(&out, &envelope_json("gsm-bench/bench_recovery", &payload));
    println!("wrote {out}");

    std::fs::remove_dir_all(&off_dir).ok();
    std::fs::remove_dir_all(&fsync_dir).ok();
}
