//! **E9 (extension)** — k-th-largest selection: occlusion-query binary
//! search vs CPU quickselect vs full sorting.
//!
//! The paper cites its predecessor \[20\] for "range queries and kth largest
//! numbers" on GPUs. That system never sorts: values live in the depth
//! buffer, and a 32-pass binary search over the value bits — one occlusion
//! query per bit, each a double-rate z-only pass — pins the answer exactly.
//! This harness compares it against instrumented CPU quickselect (expected
//! `O(n)`) and against the heavyweight alternative of fully sorting with
//! PBSN.
//!
//! ```text
//! cargo run --release -p gsm-bench --bin selection [-- --max 4194304 --csv]
//! ```

use gsm_bench::{human_n, Args, Table};
use gsm_cpu::{CpuCostModel, Machine};
use gsm_gpu::{Device, GpuCostModel};
use gsm_sort::select::{cpu_quickselect, gpu_kth_largest, load_values_as_depth};
use gsm_sort::{SortEngine, Sorter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args = Args::parse();
    let csv = args.flag("csv");
    let max: usize = args.get_num("max", 4 << 20);

    println!(
        "# E9: k-th largest (k = n/100) — occlusion-query selection vs quickselect vs full sort\n"
    );
    let mut table = Table::new([
        "n",
        "GPU occlusion ms",
        "(load / queries)",
        "CPU quickselect ms",
        "GPU full sort ms",
    ]);

    let mut n = 64 << 10;
    while n <= max {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let data: Vec<f32> = (0..n).map(|_| rng.random_range(0.0..1.0e6)).collect();
        let k = (n as u64 / 100).max(1);

        // GPU occlusion path.
        let mut dev = Device::new(GpuCostModel::geforce_6800_ultra());
        load_values_as_depth(&mut dev, &data);
        let load_time = dev.stats().total_time();
        let gpu_answer = gpu_kth_largest(&mut dev, data.len(), k);
        let total = dev.stats().total_time();

        // CPU quickselect.
        let mut m = Machine::new(CpuCostModel::pentium4_3400());
        let mut copy = data.clone();
        let cpu_answer = cpu_quickselect(&mut copy, k, &mut m, 0);

        // Full GPU sort (what you would do without the occlusion trick).
        let sort_report = Sorter::new(SortEngine::GpuPbsn).sort(&data);
        let sorted_answer = sort_report.sorted[n - k as usize];

        assert_eq!(gpu_answer.to_bits(), cpu_answer.to_bits());
        assert_eq!(gpu_answer.to_bits(), sorted_answer.to_bits());

        table.row([
            human_n(n),
            format!("{:.3}", total.as_millis()),
            format!(
                "({:.3} / {:.3})",
                load_time.as_millis(),
                (total - load_time).as_millis()
            ),
            format!("{:.3}", m.time().as_millis()),
            format!("{:.3}", sort_report.total_time.as_millis()),
        ]);
        n *= 4;
    }
    table.print(csv);
    println!(
        "\n# one-off selection favors the linear CPU scan; but once values are resident in the"
    );
    println!(
        "# depth plane, each additional query costs only the 32 z-only passes — the amortized"
    );
    println!(
        "# regime [20] exploited. Full sorting is the wrong tool for a single order statistic."
    );
}
