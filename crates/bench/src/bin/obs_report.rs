//! **Observability report** — runs an instrumented workload across every
//! engine and exports the collected metrics.
//!
//! One shared [`gsm_obs::Recorder`] watches the full stack: the window
//! pipeline on all four engines (GpuSim / CpuSim / Host / ParallelHost),
//! the host worker pool behind `ParallelHost`, and a DSMS run answering
//! continuous queries. Two artifacts land under `results/`:
//!
//! * `OBS_metrics.prom` — every counter, gauge, and latency histogram in
//!   the Prometheus text exposition format;
//! * `OBS_trace.json` — the span ring as Chrome `trace_event` JSON (open in
//!   `about:tracing` or Perfetto), wrapped in the shared versioned result
//!   envelope.
//!
//! Before writing anything, the harness reconciles the recorder's
//! simulated-phase counters (`sim_*_ns`) against the pipelines' own
//! [`OpLedger`](gsm_core::OpLedger) breakdowns and aborts on disagreement,
//! so a dumped report is guaranteed to match the ledger the paper's figures
//! are priced from.
//!
//! ```text
//! cargo run --release -p gsm-bench --bin obs_report [-- --elements 65536
//!     --window 4096 --prom-out results/OBS_metrics.prom
//!     --trace-out results/OBS_trace.json]
//! ```

use gsm_bench::{envelope_json, write_result, Args, RESULT_SCHEMA};
use gsm_core::{Engine, TimeBreakdown, WindowedPipeline};
use gsm_dsms::StreamEngine;
use gsm_obs::Recorder;
use gsm_sketch::LossyCounting;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn stream(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(0.0..65_536.0f32)).collect()
}

/// Sums `next` into the running per-phase totals.
fn accumulate(totals: &mut [f64; 4], next: TimeBreakdown) {
    totals[0] += next.sort.as_secs();
    totals[1] += next.transfer.as_secs();
    totals[2] += next.merge.as_secs();
    totals[3] += next.compress.as_secs();
}

fn main() {
    let args = Args::parse();
    let elements: usize = args.get_num("elements", 64 * 1024);
    let window: usize = args.get_num("window", 4096);
    let prom_out = args
        .get("prom-out")
        .unwrap_or("results/OBS_metrics.prom")
        .to_string();
    let trace_out = args
        .get("trace-out")
        .unwrap_or("results/OBS_trace.json")
        .to_string();

    let data = stream(elements, 42);
    let rec = Recorder::enabled();
    // Ledger totals accumulated alongside the recorder, for the
    // reconciliation check: [sort, transfer, merge, compress] in seconds.
    let mut ledger = [0f64; 4];

    println!("# obs report: {elements} elements, window {window}\n");
    for engine in [
        Engine::GpuSim,
        Engine::CpuSim,
        Engine::Host,
        Engine::ParallelHost,
    ] {
        let mut p = WindowedPipeline::new(engine, window, LossyCounting::with_window(0.01, window))
            .with_recorder(rec.clone());
        for &v in &data {
            p.push(v);
        }
        p.flush();
        let b = p.breakdown();
        accumulate(&mut ledger, b);
        println!(
            "{engine:>14?}: {} windows, sim total {:.3} ms",
            p.windows_sorted(),
            b.total().as_millis()
        );
    }

    // A DSMS pass exercises the answer-latency spans and the shared fan-out
    // sink; two shards so the exported series include per-shard labels
    // (`shard="0"` / `shard="1"`), plus a snapshot publish so the epoch
    // gauge and the flight recorder's seal/publish events are live.
    let mut eng = StreamEngine::new(Engine::Host)
        .with_n_hint(elements as u64)
        .with_shards(2)
        .with_recorder(rec.clone());
    let q = eng.register_quantile(0.02);
    let f = eng.register_frequency(0.005);
    let registry = eng.serve();
    eng.push_all(data.iter().copied());
    let median = eng.quantile(q, 0.5);
    let hot = eng.heavy_hitters(f, 0.01).len();
    eng.publish_now();
    accumulate(&mut ledger, eng.breakdown());
    println!(
        "{:>14}: median {median:.1}, {hot} heavy hitters, epoch {}",
        "DSMS",
        registry.epoch()
    );

    // Reconcile: each counter is a sum of per-absorption deltas rounded to
    // whole nanoseconds, so it must match the ledger total to within one
    // nanosecond per absorption (plus float slack). The sharded DSMS run
    // reports under per-shard labels, so totals are summed across labels.
    let absorptions = rec.counter_total("windows_absorbed") as f64;
    let counted = [
        rec.counter_total("sim_sort_ns"),
        rec.counter_total("sim_transfer_ns"),
        rec.counter_total("sim_merge_ns"),
        rec.counter_total("sim_compress_ns"),
    ];
    println!("\n{:>10} {:>14} {:>14}", "phase", "ledger(s)", "counted(s)");
    for (name, (total, ns)) in ["sort", "transfer", "merge", "compress"]
        .into_iter()
        .zip(ledger.into_iter().zip(counted))
    {
        let counted_secs = ns as f64 * 1e-9;
        println!("{name:>10} {total:>14.9} {counted_secs:>14.9}");
        let tolerance = 1e-9 * absorptions + 1e-6 * total.max(1e-3);
        assert!(
            (counted_secs - total).abs() <= tolerance,
            "phase {name} diverged: ledger {total}s vs counters {counted_secs}s"
        );
    }
    println!("\nper-phase counters reconcile with the OpLedger breakdown");

    let prom = format!(
        "# gsm obs_report (schema {RESULT_SCHEMA})\n{}",
        rec.prometheus_text()
    );
    write_result(&prom_out, &prom);
    let trace = envelope_json("gsm-bench/obs_report", &rec.chrome_trace_json());
    write_result(&trace_out, &trace);
    println!(
        "wrote {prom_out} ({} bytes) and {trace_out} ({} spans, {} dropped)",
        prom.len(),
        rec.spans().len(),
        rec.dropped_spans()
    );
}
