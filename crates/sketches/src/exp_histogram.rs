//! The exponential histogram of summaries that lifts GK04 from a fixed
//! dataset to an unbounded stream (paper §5.2).
//!
//! *"The exponential histogram has log N buckets and each bucket is
//! associated with a bucket id. … Initially, we set all the buckets as
//! empty. Next, we compute an ε′-approximate summary for each new window of
//! elements and assign it a bucket id of one and add it to the exponential
//! histogram. If there are two buckets with same bucket id, we combine the
//! two into one larger bucket and increment their bucket id by one. The
//! combine operation involves a merge and prune operation performed using an
//! error parameter for (bucket id + 1)."*
//!
//! # Error budget
//!
//! Level-1 buckets are built at `ε/2`. Each combine's prune is allotted
//! `δ = ε / (2·L)` where `L` is the number of levels implied by the stream
//! length hint, so a bucket that climbed through all `L` levels carries at
//! most `ε/2 + L·δ = ε`. Querying merges all live buckets (merge adds no
//! error), so every answer is `ε`-approximate.

use crate::gk_window::WindowSummary;
use crate::summary::OpCounter;

/// Streaming ε-approximate quantile summary: an exponential histogram of
/// GK04 window summaries.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct ExpHistogram {
    eps: f64,
    window: usize,
    /// `levels[k]` holds the bucket of id `k+1`, covering `2^k` windows.
    levels: Vec<Option<WindowSummary>>,
    /// Prune target: each combine prunes to `prune_b + 1` entries.
    prune_b: usize,
    count: u64,
    merge_ops: OpCounter,
    prune_ops: OpCounter,
}

impl ExpHistogram {
    /// Creates an empty histogram.
    ///
    /// * `eps` — total error bound for queries.
    /// * `window` — elements per level-1 window (the paper uses
    ///   `⌈1/(2ε)⌉`-ish windows; any positive size works).
    /// * `n_hint` — expected stream length, used to size the level count
    ///   and per-level prune budgets. Streams longer than the hint keep
    ///   working; the error bound degrades gracefully as extra levels
    ///   appear.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1`, `window > 0`, and `n_hint ≥ window`.
    pub fn new(eps: f64, window: usize, n_hint: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1), got {eps}");
        assert!(window > 0, "window must be positive");
        assert!(
            n_hint >= window as u64,
            "n_hint must cover at least one window"
        );
        let max_levels = ((n_hint as f64 / window as f64).log2().ceil() as usize).max(1) + 1;
        let delta = eps / (2.0 * max_levels as f64);
        let prune_b = (1.0 / (2.0 * delta)).ceil() as usize;
        ExpHistogram {
            eps,
            window,
            levels: Vec::new(),
            prune_b,
            count: 0,
            merge_ops: OpCounter::default(),
            prune_ops: OpCounter::default(),
        }
    }

    /// Target error bound.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Elements per level-1 window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Elements summarized so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Combined operation counters for merge + prune work.
    pub fn ops(&self) -> OpCounter {
        let mut o = self.merge_ops;
        o.absorb(self.prune_ops);
        o
    }

    /// Operation counters for the merge phase only.
    pub fn merge_ops(&self) -> OpCounter {
        self.merge_ops
    }

    /// Operation counters for the prune (compress) phase only.
    pub fn prune_ops(&self) -> OpCounter {
        self.prune_ops
    }

    /// Total stored entries across all buckets (memory footprint).
    pub fn entry_count(&self) -> usize {
        self.levels
            .iter()
            .flatten()
            .map(|s| s.entries().len())
            .sum()
    }

    /// Live (non-empty) buckets.
    pub fn live_buckets(&self) -> usize {
        self.levels.iter().flatten().count()
    }

    /// The worst tracked error bound across the live buckets — what a
    /// query is actually guaranteed right now, as opposed to the target
    /// [`Self::eps`]. Since merging adds no error, a snapshot's answers are
    /// within this bound; an auditor can assert it never exceeds the
    /// target even when the stream outruns its `n_hint`.
    pub fn tracked_eps(&self) -> f64 {
        self.levels
            .iter()
            .flatten()
            .map(WindowSummary::eps)
            .fold(0.0, f64::max)
    }

    /// Folds in one sorted window. Windows should be built at `ε/2`
    /// ([`Self::window_eps`]); this method samples the run itself.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or (debug) unsorted.
    pub fn push_sorted_window(&mut self, sorted: &[f32]) {
        let summary = WindowSummary::from_sorted(sorted, self.window_eps());
        self.push_summary(summary);
    }

    /// The sampling error at which level-1 window summaries are built.
    pub fn window_eps(&self) -> f64 {
        self.eps / 2.0
    }

    /// Folds in a pre-built level-1 window summary (the GPU path builds the
    /// summary from an already-sorted readback).
    pub fn push_summary(&mut self, summary: WindowSummary) {
        self.insert_at_level(summary, 0);
    }

    /// Inserts a bucket at `start_level`, carry-propagating like binary
    /// addition: a full level combines into the next. Level-1 windows enter
    /// at level 0; [`Self::merge_from`] re-inserts foreign buckets at the
    /// level they had already climbed to, so their spent prune budget is
    /// respected.
    fn insert_at_level(&mut self, summary: WindowSummary, start_level: usize) {
        self.count += summary.count();
        while self.levels.len() < start_level {
            self.levels.push(None);
        }
        let mut carry = summary;
        let mut level = start_level;
        loop {
            if level == self.levels.len() {
                self.levels.push(Some(carry));
                return;
            }
            match self.levels[level].take() {
                None => {
                    self.levels[level] = Some(carry);
                    return;
                }
                Some(existing) => {
                    let merged = WindowSummary::merge(&existing, &carry, &mut self.merge_ops);
                    // Prune only when it would actually shrink the summary;
                    // skipping adds no error (the 1/(2B) budget is only
                    // spent when a prune happens).
                    carry = if merged.entries().len() > self.prune_b + 1 {
                        merged.prune(self.prune_b, &mut self.prune_ops)
                    } else {
                        merged
                    };
                    level += 1;
                }
            }
        }
    }

    /// Merges a histogram built over a *disjoint* substream into this one
    /// (shard-parallel ingestion).
    ///
    /// Each of `other`'s live buckets is re-inserted at the level it had
    /// already climbed to, carry-propagating from there, so a bucket never
    /// spends more prune budget than a same-level bucket in a single-owner
    /// stream. GK merges add no error (`ε_merge = max εᵢ`), so the merged
    /// guarantee stays surfaced by [`Self::tracked_eps`]: as long as the
    /// combined stream stays within the `n_hint` the histograms were sized
    /// for, `tracked_eps() ≤ eps` after any number of merges.
    ///
    /// Merge and prune work is charged to both this summary's ledgers and
    /// the caller's `ops`.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms were built with different `eps`,
    /// window, or prune budgets (different `n_hint` level sizing).
    pub fn merge_from(&mut self, other: &Self, ops: &mut OpCounter) {
        assert!(
            self.eps == other.eps && self.window == other.window && self.prune_b == other.prune_b,
            "cannot merge exp-histograms with different configurations \
             (eps {} vs {}, window {} vs {}, prune_b {} vs {})",
            self.eps,
            other.eps,
            self.window,
            other.window,
            self.prune_b,
            other.prune_b
        );
        let before = self.ops();
        for (level, bucket) in other.levels.iter().enumerate() {
            if let Some(s) = bucket {
                self.insert_at_level(s.clone(), level);
            }
        }
        let mut delta = self.ops();
        delta.comparisons -= before.comparisons;
        delta.moves -= before.moves;
        ops.absorb(delta);
    }

    /// Answers a φ-quantile query over everything pushed so far.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been pushed.
    pub fn query(&self, phi: f64) -> f32 {
        self.snapshot().query(phi)
    }

    /// Merges all live buckets into one summary (no pruning — no extra
    /// error), e.g. for multiple queries at one point in the stream.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been pushed.
    pub fn snapshot(&self) -> WindowSummary {
        let mut ops = OpCounter::default();
        let mut acc: Option<WindowSummary> = None;
        for s in self.levels.iter().flatten() {
            acc = Some(match acc {
                None => s.clone(),
                Some(a) => WindowSummary::merge(&a, s, &mut ops),
            });
        }
        acc.expect("cannot query an empty histogram")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactStats;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn run_stream(n: usize, window: usize, eps: f64, seed: u64) -> (ExpHistogram, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..n).map(|_| rng.random_range(0.0..1.0)).collect();
        let mut eh = ExpHistogram::new(eps, window, n as u64);
        for chunk in data.chunks(window) {
            let mut w = chunk.to_vec();
            w.sort_by(f32::total_cmp);
            eh.push_sorted_window(&w);
        }
        (eh, data)
    }

    fn assert_within_eps(eh: &ExpHistogram, data: &[f32]) {
        let oracle = ExactStats::new(data);
        let snap = eh.snapshot();
        for phi in [0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let err = oracle.quantile_rank_error(phi, snap.query(phi));
            assert!(
                err <= eh.eps() + 2.0 / data.len() as f64,
                "phi={phi} err={err} eps={}",
                eh.eps()
            );
        }
    }

    #[test]
    fn stream_queries_within_eps() {
        let (eh, data) = run_stream(40_000, 512, 0.02, 1);
        assert_eq!(eh.count(), 40_000);
        assert_within_eps(&eh, &data);
    }

    #[test]
    fn coarse_eps_small_windows() {
        let (eh, data) = run_stream(5_000, 100, 0.1, 2);
        assert_within_eps(&eh, &data);
    }

    #[test]
    fn tight_eps() {
        let (eh, data) = run_stream(100_000, 2048, 0.005, 3);
        assert_within_eps(&eh, &data);
    }

    #[test]
    fn partial_final_window_handled() {
        let mut rng = StdRng::seed_from_u64(4);
        let data: Vec<f32> = (0..1030).map(|_| rng.random_range(0.0..1.0)).collect();
        let mut eh = ExpHistogram::new(0.05, 256, 1030);
        for chunk in data.chunks(256) {
            let mut w = chunk.to_vec();
            w.sort_by(f32::total_cmp);
            eh.push_sorted_window(&w);
        }
        assert_eq!(eh.count(), 1030);
        assert_within_eps(&eh, &data);
    }

    #[test]
    fn bucket_count_is_logarithmic() {
        let (eh, _) = run_stream(64 * 512, 512, 0.05, 5);
        // 64 windows → levels used ≤ log2(64)+1 = 7.
        assert!(eh.levels.len() <= 7, "levels = {}", eh.levels.len());
        // 64 = 2^6: exactly one bucket alive at the top level.
        let live = eh.levels.iter().flatten().count();
        assert_eq!(live, 1);
    }

    #[test]
    fn memory_stays_sublinear() {
        let (eh, data) = run_stream(100_000, 500, 0.02, 6);
        // Footprint must be far below the stream length.
        assert!(
            eh.entry_count() < data.len() / 10,
            "entry_count = {}",
            eh.entry_count()
        );
    }

    #[test]
    fn sorted_input_stream() {
        let data: Vec<f32> = (0..10_000).map(|i| i as f32).collect();
        let mut eh = ExpHistogram::new(0.02, 500, 10_000);
        for chunk in data.chunks(500) {
            eh.push_sorted_window(chunk);
        }
        assert_within_eps(&eh, &data);
    }

    #[test]
    fn ops_accumulate_on_combines() {
        let (eh, _) = run_stream(8 * 256, 256, 0.05, 7);
        assert!(eh.ops().total() > 0, "combines must be counted");
    }

    #[test]
    fn merged_shards_stay_within_eps() {
        let n = 40_000usize;
        let window = 512usize;
        let eps = 0.02;
        let mut rng = StdRng::seed_from_u64(21);
        let data: Vec<f32> = (0..n).map(|_| rng.random_range(0.0..1.0)).collect();
        for k in [2usize, 4] {
            // Every shard is sized for the *total* stream, as the sharded
            // pipeline does, so merging never outruns the level budget.
            let mut shards: Vec<ExpHistogram> = (0..k)
                .map(|_| ExpHistogram::new(eps, window, n as u64))
                .collect();
            for (i, chunk) in data.chunks(n.div_ceil(k)).enumerate() {
                for w in chunk.chunks(window) {
                    let mut w = w.to_vec();
                    w.sort_by(f32::total_cmp);
                    shards[i].push_sorted_window(&w);
                }
            }
            let mut merged = shards.remove(0);
            let mut ops = OpCounter::default();
            for s in &shards {
                merged.merge_from(s, &mut ops);
            }
            assert_eq!(merged.count(), n as u64);
            assert!(ops.total() > 0, "merge work must be counted");
            assert!(
                merged.tracked_eps() <= eps,
                "merged tracked eps {} exceeds target {eps}",
                merged.tracked_eps()
            );
            assert_within_eps(&merged, &data);
        }
    }

    #[test]
    #[should_panic(expected = "different configurations")]
    fn merge_rejects_mismatched_windows() {
        let mut a = ExpHistogram::new(0.05, 256, 10_000);
        let b = ExpHistogram::new(0.05, 512, 10_000);
        a.merge_from(&b, &mut OpCounter::default());
    }
}
