//! Hierarchical heavy hitters with engine-offloaded window sorting
//! (paper §1.2's first extension application).
//!
//! One GPU sort per window serves *every* hierarchy level: prefix truncation
//! is monotone, so the leaf-sorted window is already sorted at each ancestor
//! level after mapping (see [`gsm_sketch::hhh`]).

use gsm_model::SimTime;
use gsm_sketch::{BitPrefixHierarchy, HhhEntry, HhhSummary};

use crate::engine::Engine;
use crate::pipeline::WindowedPipeline;
use crate::report::TimeBreakdown;

/// Streaming ε-approximate hierarchical heavy hitters.
pub struct HhhEstimator {
    pipeline: WindowedPipeline<HhhSummary>,
}

impl HhhEstimator {
    /// Creates an estimator over the given hierarchy with error bound
    /// `eps` per level.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1`.
    pub fn new(eps: f64, hierarchy: BitPrefixHierarchy, engine: Engine) -> Self {
        let sketch = HhhSummary::new(eps, hierarchy);
        let window = sketch.window();
        HhhEstimator {
            pipeline: WindowedPipeline::new(engine, window, sketch),
        }
    }

    /// The error bound.
    pub fn eps(&self) -> f64 {
        self.pipeline.sink().eps()
    }

    /// The window size `⌈1/ε⌉`.
    pub fn window(&self) -> usize {
        self.pipeline.window()
    }

    /// The engine sorting the windows.
    pub fn engine(&self) -> Engine {
        self.pipeline.engine()
    }

    /// Elements pushed so far.
    pub fn count(&self) -> u64 {
        self.pipeline.sink().count() + self.pipeline.unabsorbed()
    }

    /// Total summary entries across hierarchy levels.
    pub fn entry_count(&self) -> usize {
        self.pipeline.sink().entry_count()
    }

    /// Pushes one element (a non-negative integer id stored as `f32`).
    pub fn push(&mut self, value: f32) {
        debug_assert!(
            value >= 0.0 && value.fract() == 0.0,
            "hierarchy values are integer ids"
        );
        self.pipeline.push(value);
    }

    /// Pushes every element of an iterator.
    pub fn push_all<I: IntoIterator<Item = f32>>(&mut self, values: I) {
        for v in values {
            self.push(v);
        }
    }

    /// Forces buffered data into the sketch.
    pub fn flush(&mut self) {
        self.pipeline.flush();
    }

    /// The hierarchical heavy hitters at support `s` (see
    /// [`HhhSummary::query`]). Flushes first.
    pub fn query(&mut self, s: f64) -> Vec<HhhEntry> {
        self.flush();
        self.pipeline.sink().query(s)
    }

    /// Where the simulated time went. One sort serves all levels; the
    /// per-level histogram/merge/compress costs land in their phases (the
    /// sink folds every level's counters, see [`gsm_sketch::sink`]).
    pub fn breakdown(&self) -> TimeBreakdown {
        self.pipeline.breakdown()
    }

    /// Total simulated time.
    pub fn total_time(&self) -> SimTime {
        self.breakdown().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn workload(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                match rng.random_range(0..10) {
                    // 30%: one hot leaf.
                    0..=2 => 0x1234 as f32,
                    // 30%: diffuse siblings under prefix 0x5600.
                    3..=5 => (0x5600 + rng.random_range(0..256)) as f32,
                    // 40%: background noise.
                    _ => rng.random_range(0x10000..0x100000) as f32,
                }
            })
            .collect()
    }

    #[test]
    fn finds_leaf_and_prefix_hitters_on_every_engine() {
        let hierarchy = || BitPrefixHierarchy::new(vec![8, 16]);
        let data = workload(40_000, 1);
        let mut answers = Vec::new();
        for engine in [Engine::GpuSim, Engine::CpuSim, Engine::Host] {
            let mut est = HhhEstimator::new(0.001, hierarchy(), engine);
            est.push_all(data.iter().copied());
            let result = est.query(0.1);
            assert!(
                result
                    .iter()
                    .any(|e| e.level == 0 && e.prefix == 0x1234 as f32),
                "{engine:?}: hot leaf missing: {result:?}"
            );
            assert!(
                result
                    .iter()
                    .any(|e| e.level == 1 && e.prefix == 0x5600 as f32),
                "{engine:?}: diffuse prefix missing: {result:?}"
            );
            assert!(est.total_time() >= SimTime::ZERO);
            answers.push(result);
        }
        assert_eq!(answers[0], answers[1], "engines must agree");
        assert_eq!(answers[1], answers[2], "engines must agree");
    }

    #[test]
    fn sort_dominates_hhh_breakdown() {
        let data = workload(60_000, 2);
        let mut est =
            HhhEstimator::new(0.0005, BitPrefixHierarchy::new(vec![8, 16]), Engine::CpuSim);
        est.push_all(data.iter().copied());
        est.flush();
        let b = est.breakdown();
        assert!(b.sort_fraction() > 0.6, "{b}");
    }

    #[test]
    fn count_and_footprint() {
        let mut est = HhhEstimator::new(0.01, BitPrefixHierarchy::new(vec![4]), Engine::Host);
        est.push_all((0..350).map(|i| (i % 30) as f32));
        assert_eq!(est.count(), 350);
        est.flush();
        assert!(est.entry_count() > 0);
    }
}
