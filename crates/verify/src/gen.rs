//! Deterministic adversarial stream generators.
//!
//! Every family is seeded and fully reproducible: the same
//! [`StreamSpec`] always yields the same stream, on every platform (the
//! generator uses its own splitmix64/xorshift core rather than an external
//! RNG so the byte sequence is pinned by this crate alone). Tests, the
//! verify gate, and the `verify_report` fuzz driver all draw from this one
//! taxonomy, so a CI failure is reproducible from `(family, seed, n)`
//! alone.
//!
//! The families target the places where window-based summaries historically
//! break: presortedness (merge paths that never exercise one branch),
//! heavy duplication (rank ranges wider than the sampling stride), skew
//! (compress passes that must not evict true heavy hitters),
//! window-boundary alignment (epoch bursts and ±1 off-by-one lengths), and
//! totalOrder edge values (±0.0, subnormals, extremes).

/// One adversarial stream family.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Family {
    /// Uniform pseudo-random values in `[0, 1)` — the control case.
    Uniform,
    /// Already ascending: every merge takes the same branch.
    Sorted,
    /// Strictly descending: the mirror-image merge path.
    Reversed,
    /// Ascend to a peak, then descend (organ pipe): sorted runs in both
    /// directions inside one stream.
    OrganPipe,
    /// A handful of distinct values, so duplicate runs dwarf the sampling
    /// stride and rank ranges are wide.
    HeavyDuplicate,
    /// Zipf-like skew: element `k` drawn with weight `1/(k+1)`.
    ZipfSkew,
    /// Bursts whose regime flips exactly at window boundaries, so every
    /// window is internally homogeneous but adjacent windows disagree.
    EpochBursts,
    /// totalOrder edge values: ±0.0, subnormals, `f32::MIN_POSITIVE`,
    /// ±`f32::MAX`, and tiny/huge magnitudes, shuffled.
    TotalOrderEdges,
    /// Uniform values, but the stream is one element *longer* than a whole
    /// number of windows (a lone straggler window at flush).
    WindowPlusOne,
    /// Uniform values, one element *shorter* than a whole number of windows
    /// (the final full window never closes on its own).
    WindowMinusOne,
}

impl Family {
    /// Every family, in a fixed audit order.
    pub const ALL: [Family; 10] = [
        Family::Uniform,
        Family::Sorted,
        Family::Reversed,
        Family::OrganPipe,
        Family::HeavyDuplicate,
        Family::ZipfSkew,
        Family::EpochBursts,
        Family::TotalOrderEdges,
        Family::WindowPlusOne,
        Family::WindowMinusOne,
    ];

    /// Stable identifier used in reports and repro seeds.
    pub fn name(self) -> &'static str {
        match self {
            Family::Uniform => "uniform",
            Family::Sorted => "sorted",
            Family::Reversed => "reversed",
            Family::OrganPipe => "organ_pipe",
            Family::HeavyDuplicate => "heavy_duplicate",
            Family::ZipfSkew => "zipf_skew",
            Family::EpochBursts => "epoch_bursts",
            Family::TotalOrderEdges => "total_order_edges",
            Family::WindowPlusOne => "window_plus_one",
            Family::WindowMinusOne => "window_minus_one",
        }
    }

    /// Looks a family up by its [`Family::name`].
    pub fn from_name(name: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// A fully reproducible stream: family + seed + target length + the window
/// size the consuming pipeline will cut (used by the boundary-aligned
/// families).
#[derive(Clone, Copy, Debug)]
pub struct StreamSpec {
    /// The adversarial family.
    pub family: Family,
    /// Deterministic seed.
    pub seed: u64,
    /// Target stream length (the off-by-one families deliberately return
    /// `±1` around the nearest whole number of windows).
    pub n: usize,
    /// The window size the consumer will cut the stream into.
    pub window: usize,
}

impl StreamSpec {
    /// Generates the stream. Deterministic in the spec alone.
    ///
    /// All values are finite (the pipeline's domain); ±0.0 and subnormals
    /// appear only in [`Family::TotalOrderEdges`].
    ///
    /// # Panics
    ///
    /// Panics if `n` or `window` is zero.
    pub fn generate(&self) -> Vec<f32> {
        assert!(
            self.n > 0 && self.window > 0,
            "n and window must be positive"
        );
        let mut rng = SplitMix::new(self.seed ^ hash_name(self.family.name()));
        let n = self.len();
        match self.family {
            Family::Uniform | Family::WindowPlusOne | Family::WindowMinusOne => {
                (0..n).map(|_| rng.unit_f32()).collect()
            }
            Family::Sorted => {
                let mut v: Vec<f32> = (0..n).map(|_| rng.unit_f32()).collect();
                v.sort_by(f32::total_cmp);
                v
            }
            Family::Reversed => {
                let mut v: Vec<f32> = (0..n).map(|_| rng.unit_f32()).collect();
                v.sort_by(|a, b| b.total_cmp(a));
                v
            }
            Family::OrganPipe => {
                let mut v: Vec<f32> = (0..n).map(|_| rng.unit_f32()).collect();
                v.sort_by(f32::total_cmp);
                let (up, down) = v.split_at(n / 2);
                let mut out = up.to_vec();
                out.extend(down.iter().rev());
                out
            }
            Family::HeavyDuplicate => {
                // 5 hot values carry ~80% of the stream; 16 cold values the
                // rest — duplicate runs far wider than any sampling stride.
                (0..n)
                    .map(|_| {
                        if rng.below(10) < 8 {
                            rng.below(5) as f32
                        } else {
                            (100 + rng.below(16)) as f32
                        }
                    })
                    .collect()
            }
            Family::ZipfSkew => {
                // Element k with weight 1/(k+1) over a 256-element domain.
                let weights: Vec<f64> = (0..256u32).map(|k| 1.0 / (k + 1) as f64).collect();
                let total: f64 = weights.iter().sum();
                (0..n)
                    .map(|_| {
                        let mut u = rng.unit_f64() * total;
                        for (k, w) in weights.iter().enumerate() {
                            if u < *w {
                                return k as f32;
                            }
                            u -= w;
                        }
                        255.0
                    })
                    .collect()
            }
            Family::EpochBursts => {
                // Each window-aligned epoch draws from its own narrow band;
                // the band jumps discontinuously at every boundary.
                (0..n)
                    .map(|i| {
                        let epoch = (i / self.window) as u64;
                        let base = (SplitMix::new(self.seed ^ epoch).below(1000)) as f32;
                        base + rng.unit_f32()
                    })
                    .collect()
            }
            Family::TotalOrderEdges => {
                const EDGES: [f32; 12] = [
                    0.0,
                    -0.0,
                    f32::MIN_POSITIVE, // smallest normal
                    1.0e-42,           // subnormal
                    -1.0e-42,
                    f32::MAX,
                    f32::MIN, // == -MAX
                    1.0,
                    -1.0,
                    1.5e-45, // smallest positive subnormal
                    6.0e4,   // f16-grid extreme
                    -6.0e4,
                ];
                (0..n)
                    .map(|_| {
                        if rng.below(4) == 0 {
                            EDGES[rng.below(EDGES.len() as u64) as usize]
                        } else {
                            rng.unit_f32() * 2.0 - 1.0
                        }
                    })
                    .collect()
            }
        }
    }

    /// The actual stream length: `n` rounded to the off-by-one targets for
    /// the boundary families, unchanged otherwise.
    pub fn len(&self) -> usize {
        let whole = (self.n / self.window).max(1) * self.window;
        match self.family {
            Family::WindowPlusOne => whole + 1,
            Family::WindowMinusOne => (whole - 1).max(1),
            _ => self.n,
        }
    }

    /// Whether the spec expands to an empty stream (only when `n == 0` on a
    /// non-boundary family — the window-boundary families always emit at
    /// least one element).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The stream re-keyed as non-negative *integer-valued* ids — the
    /// domain the frequency-class estimators (lossy counting, HHH) require.
    /// Equal floats map to equal ids, so the duplicate structure (and with
    /// it every frequency bound) carries over; the mapping is deterministic
    /// in the spec.
    pub fn integer_ids(&self) -> Vec<f32> {
        self.generate()
            .into_iter()
            .map(|v| {
                // Canonicalize -0.0 → +0.0 first: frequency summaries key by
                // value equality, and mixed zero signs would split one id.
                let v = if v == 0.0 { 0.0 } else { v };
                (v.to_bits() % (1 << 16)) as f32
            })
            .collect()
    }
}

/// splitmix64 — the standard 64-bit mixer, plus float helpers.
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// FNV-1a over a name, to decorrelate family streams sharing one seed.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(family: Family) -> StreamSpec {
        StreamSpec {
            family,
            seed: 42,
            n: 4096,
            window: 512,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for family in Family::ALL {
            let a = spec(family).generate();
            let b = spec(family).generate();
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{family:?} must be reproducible"
            );
        }
    }

    #[test]
    fn seeds_change_the_stream() {
        let a = spec(Family::Uniform).generate();
        let b = StreamSpec {
            seed: 43,
            ..spec(Family::Uniform)
        }
        .generate();
        assert_ne!(a, b);
    }

    #[test]
    fn all_values_are_finite() {
        for family in Family::ALL {
            assert!(
                spec(family).generate().iter().all(|v| v.is_finite()),
                "{family:?} must stay in the pipeline's finite domain"
            );
        }
    }

    #[test]
    fn off_by_one_lengths() {
        assert_eq!(spec(Family::WindowPlusOne).generate().len(), 4096 + 1);
        assert_eq!(spec(Family::WindowMinusOne).generate().len(), 4096 - 1);
        assert_eq!(spec(Family::Uniform).generate().len(), 4096);
    }

    #[test]
    fn sorted_families_are_sorted() {
        let s = spec(Family::Sorted).generate();
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        let r = spec(Family::Reversed).generate();
        assert!(r.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn organ_pipe_rises_then_falls() {
        let v = spec(Family::OrganPipe).generate();
        let peak = v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty")
            .0;
        assert!(v[..=peak].windows(2).all(|w| w[0] <= w[1]));
        assert!(v[peak..].windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn edge_family_contains_signed_zeros_and_subnormals() {
        let v = StreamSpec {
            n: 20_000,
            ..spec(Family::TotalOrderEdges)
        }
        .generate();
        assert!(v.iter().any(|x| x.to_bits() == (-0.0f32).to_bits()));
        assert!(v.iter().any(|x| x.to_bits() == 0.0f32.to_bits()));
        assert!(v.iter().any(|x| x.is_subnormal()));
        assert!(v.iter().any(|x| *x == f32::MAX));
    }

    #[test]
    fn integer_ids_are_canonical_non_negative_integers() {
        for family in Family::ALL {
            let ids = spec(family).integer_ids();
            assert!(
                ids.iter().all(|v| *v >= 0.0 && v.fract() == 0.0),
                "{family:?} ids must be non-negative integers"
            );
            // -0.0 must have been canonicalized away.
            assert!(ids.iter().all(|v| v.to_bits() != (-0.0f32).to_bits()));
        }
    }

    #[test]
    fn integer_ids_preserve_duplicate_structure() {
        let s = spec(Family::HeavyDuplicate);
        let raw = s.generate();
        let ids = s.integer_ids();
        // Equal values map to equal ids at the same positions.
        for i in 0..raw.len() {
            for j in (i + 1)..raw.len().min(i + 50) {
                if raw[i] == raw[j] {
                    assert_eq!(ids[i], ids[j]);
                }
            }
        }
    }

    #[test]
    fn epoch_bursts_align_to_windows() {
        let s = spec(Family::EpochBursts);
        let v = s.generate();
        // Within one window all values share one integer base band.
        for w in v.chunks(s.window) {
            let base = w[0].floor();
            assert!(w.iter().all(|x| (x.floor() - base).abs() <= 1.0));
        }
    }
}
