//! Value↔texture packing (paper §4.1).
//!
//! A sequence of `n` values is stored row-major in a 2-D texture whose
//! power-of-two dimensions are as square as possible (`W ≥ H`). Non-power-
//! of-two lengths are padded with `+∞`, which every `MIN`/`MAX` comparator
//! pushes to the tail, so dropping the padding after the sort recovers the
//! answer. Four independent sequences ride in the R, G, B, A channels.

use gsm_gpu::{Channel, Surface};

/// The padding value appended to reach a power-of-two length.
///
/// `+∞` is absorbing for `MAX` and identity for `MIN`, so padded slots sort
/// to the end of each channel.
pub const PAD: f32 = f32::INFINITY;

/// Texture dimensions `(width, height)` for `texels` texels: both powers of
/// two, `width ≥ height`, `width·height = texels.next_power_of_two()`.
pub fn texture_dims(texels: usize) -> (u32, u32) {
    assert!(texels > 0, "cannot lay out an empty texture");
    let total = texels.next_power_of_two();
    let bits = total.trailing_zeros();
    let w_bits = bits.div_ceil(2);
    let w = 1u32 << w_bits;
    let h = (total >> w_bits) as u32;
    (w, h)
}

/// Pads `values` with [`PAD`] to the next power of two (at least 2) and
/// returns the padded buffer.
pub fn pad_pow2(values: &[f32]) -> Vec<f32> {
    let target = values.len().next_power_of_two().max(2);
    let mut out = Vec::with_capacity(target);
    out.extend_from_slice(values);
    out.resize(target, PAD);
    out
}

/// Splits `values` into four nearly equal channel slices (the four windows
/// the paper buffers before each GPU batch), each padded to the *same*
/// power-of-two length.
///
/// Returns the channel buffers and the common padded per-channel length.
pub fn split_channels(values: &[f32]) -> ([Vec<f32>; 4], usize) {
    assert!(!values.is_empty(), "cannot split an empty input");
    let per = values.len().div_ceil(4);
    let padded = per.next_power_of_two().max(2);
    let mut channels: [Vec<f32>; 4] = core::array::from_fn(|_| Vec::with_capacity(padded));
    for (i, chunk) in values.chunks(per).enumerate() {
        channels[i].extend_from_slice(chunk);
    }
    for c in &mut channels {
        c.resize(padded, PAD);
    }
    (channels, padded)
}

/// Builds the RGBA surface holding four equal-length channels.
///
/// # Panics
///
/// Panics if lengths differ or are not a power of two.
pub fn surface_from_channels(channels: &[Vec<f32>; 4]) -> Surface {
    let len = channels[0].len();
    assert!(
        channels.iter().all(|c| c.len() == len),
        "channel lengths must match"
    );
    assert!(
        len.is_power_of_two(),
        "channel length must be a power of two"
    );
    let (w, _h) = texture_dims(len);
    Surface::from_channels(w, [&channels[0], &channels[1], &channels[2], &channels[3]])
}

/// Extracts the four channels of a surface back into flat vectors.
pub fn channels_from_surface(surface: &Surface) -> [Vec<f32>; 4] {
    [
        surface.channel(Channel::R),
        surface.channel(Channel::G),
        surface.channel(Channel::B),
        surface.channel(Channel::A),
    ]
}

/// Removes trailing [`PAD`] entries from a sorted buffer.
pub fn strip_padding(sorted: &mut Vec<f32>) {
    while sorted.last() == Some(&PAD) {
        sorted.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_are_square_ish_powers_of_two() {
        assert_eq!(texture_dims(1), (1, 1));
        assert_eq!(texture_dims(2), (2, 1));
        assert_eq!(texture_dims(4), (2, 2));
        assert_eq!(texture_dims(8), (4, 2));
        assert_eq!(texture_dims(1024), (32, 32));
        assert_eq!(texture_dims(2048), (64, 32));
        // Non-power-of-two rounds up.
        assert_eq!(texture_dims(1000), (32, 32));
    }

    #[test]
    fn dims_cover_input() {
        for n in [1usize, 3, 17, 100, 4097] {
            let (w, h) = texture_dims(n);
            assert!(w as usize * h as usize >= n);
            assert!(w >= h);
            assert!(w.is_power_of_two() && h.is_power_of_two());
        }
    }

    #[test]
    fn padding_reaches_pow2_and_preserves_prefix() {
        let p = pad_pow2(&[3.0, 1.0, 2.0]);
        assert_eq!(p.len(), 4);
        assert_eq!(&p[..3], &[3.0, 1.0, 2.0]);
        assert_eq!(p[3], PAD);
        // Already power-of-two: unchanged.
        assert_eq!(pad_pow2(&[1.0, 2.0]).len(), 2);
        // Single element still pads to 2 (a 1-element "network" is degenerate).
        assert_eq!(pad_pow2(&[5.0]).len(), 2);
    }

    #[test]
    fn split_channels_round_trips() {
        let values: Vec<f32> = (0..37).map(|i| i as f32).collect();
        let (channels, padded) = split_channels(&values);
        assert_eq!(padded, 16); // ceil(37/4) = 10 → 16
        let mut recovered: Vec<f32> = channels
            .iter()
            .flat_map(|c| c.iter().copied().filter(|v| *v != PAD))
            .collect();
        recovered.sort_by(f32::total_cmp);
        let mut expect = values.clone();
        expect.sort_by(f32::total_cmp);
        assert_eq!(recovered, expect);
    }

    #[test]
    fn split_channels_balanced() {
        let values: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let (channels, padded) = split_channels(&values);
        assert_eq!(padded, 16);
        assert!(channels.iter().all(|c| c.len() == 16));
        assert!(channels.iter().all(|c| !c.contains(&PAD)));
    }

    #[test]
    fn surface_round_trip() {
        let values: Vec<f32> = (0..64).map(|i| (i * 7 % 64) as f32).collect();
        let (channels, _) = split_channels(&values);
        let s = surface_from_channels(&channels);
        assert_eq!(channels_from_surface(&s), channels);
    }

    #[test]
    fn strip_padding_removes_only_tail() {
        let mut v = vec![1.0, PAD, 2.0, PAD, PAD];
        strip_padding(&mut v);
        assert_eq!(v, vec![1.0, PAD, 2.0]);
    }
}
