//! Programmable fragment shading — the model for the paper's *baseline*, not
//! its contribution.
//!
//! The prior GPU sorters the paper compares against (Purcell et al. bitonic
//! merge sort, paper §2.3 and §4.5) run a *fragment program* per pixel per
//! stage: the shader computes its comparator partner's address, performs a
//! dependent texture fetch, compares, and selects. The paper counts ≥ 53
//! instructions per pixel for that program versus ~6–7 cycles for its own
//! blend-based comparator — the source of the order-of-magnitude gap.

use crate::raster::Fragment;
use crate::surface::{Surface, Texel};

/// A user fragment program with an instruction-count cost.
///
/// The shader is a host closure — the simulation is functional, the cost is
/// `instructions` cycles per fragment charged by the device.
pub struct FragmentProgram<'a> {
    /// Modeled instruction count per fragment (53 for the Purcell-style
    /// bitonic comparator).
    pub instructions: u32,
    /// The shader body. Receives a fetch context and the fragment; returns
    /// the output color.
    #[allow(clippy::type_complexity)]
    pub shader: &'a dyn Fn(&mut ShaderCtx<'_>, &Fragment) -> Texel,
}

/// Texture-fetch context handed to a fragment program.
///
/// Counts dependent fetches so the device can charge texture bandwidth.
pub struct ShaderCtx<'a> {
    surface: &'a Surface,
    fetches: u64,
}

impl<'a> ShaderCtx<'a> {
    pub(crate) fn new(surface: &'a Surface) -> Self {
        ShaderCtx {
            surface,
            fetches: 0,
        }
    }

    /// Fetches a texel (clamped nearest-neighbour), counting the access.
    #[inline]
    pub fn fetch(&mut self, x: i64, y: i64) -> Texel {
        self.fetches += 1;
        self.surface.get_clamped(x, y)
    }

    /// Texture width in texels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.surface.width()
    }

    /// Texture height in texels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.surface.height()
    }

    /// Number of fetches performed so far.
    #[inline]
    pub fn fetches(&self) -> u64 {
        self.fetches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_counts_and_clamps() {
        let mut s = Surface::new(2, 2);
        s.set(1, 1, [4.0; 4]);
        let mut ctx = ShaderCtx::new(&s);
        assert_eq!(ctx.fetch(1, 1)[0], 4.0);
        assert_eq!(ctx.fetch(100, 100)[0], 4.0);
        assert_eq!(ctx.fetches(), 2);
        assert_eq!(ctx.width(), 2);
        assert_eq!(ctx.height(), 2);
    }
}
