//! Offline stand-in for `proptest`.
//!
//! Implements the slice of proptest's surface this workspace uses: the
//! `proptest!` macro with an optional `#![proptest_config(...)]` header,
//! `prop_assert!`/`prop_assert_eq!`, range and tuple strategies,
//! `prop_map`, and `collection::vec`. Cases are generated from a
//! deterministic per-test seed (derived from the test's module path and
//! name), so failures reproduce; there is no shrinking — the failing
//! inputs are printed instead.

#![allow(clippy::all)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategies: composable random-value generators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: core::fmt::Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: core::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: core::fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (0 A, 1 B);
        (0 A, 1 B, 2 C);
        (0 A, 1 B, 2 C, 3 D);
        (0 A, 1 B, 2 C, 3 D, 4 E);
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F);
    }

    /// A strategy yielding `value` every time.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + core::fmt::Debug>(pub T);

    impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The [`vec()`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.random_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Mirrors `proptest::test_runner::Config` for the fields in use.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::collection::vec;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Deterministic per-test RNG: the seed is a hash of the test's fully
/// qualified name, so each property sees a stable stream across runs.
pub fn rng_for(test_path: &str) -> StdRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Asserts inside a `proptest!` body; failures abort the case with the
/// generated inputs printed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)+);
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

/// The property-test macro: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `body` over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::Config::default());
            $($rest)*
        }
    };
}

/// Internal recursion for [`proptest!`] — one test item per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng =
                $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // Render the inputs before the body runs — it takes them
                // by value, exactly like upstream proptest.
                let __inputs = ::std::string::String::new()
                    $(+ "\n  " + stringify!($arg) + " = "
                        + &::std::format!("{:?}", $arg))+;
                let __result: ::core::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__msg) = __result {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs:{}",
                        __case + 1,
                        __cfg.cases,
                        __msg,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_per_name() {
        use rand::Rng;
        let a: Vec<u64> = {
            let mut r = crate::rng_for("x::y");
            (0..4).map(|_| r.random_range(0u64..1000)).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::rng_for("x::y");
            (0..4).map(|_| r.random_range(0u64..1000)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges, vec, tuples, and prop_map all stay in bounds.
        #[test]
        fn strategies_stay_in_bounds(
            xs in vec((0.5f32..2.0).prop_map(|v| v * 2.0), 1..20),
            bounds in (0u32..10, 10u32..20),
            k in 3usize..9,
        ) {
            let (lo, hi) = bounds;
            prop_assert!(xs.len() >= 1 && xs.len() < 20);
            for &x in &xs {
                prop_assert!((1.0..4.0).contains(&x), "x = {}", x);
            }
            prop_assert!(lo < hi);
            prop_assert!((3..9).contains(&k));
            prop_assert_eq!(k, k);
            prop_assert_ne!(lo, hi);
        }
    }

    proptest! {
        /// The default config applies when no header is given.
        #[test]
        fn default_config_works(v in 0u8..5) {
            prop_assert!(v < 5);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(v in 0u8..5) {
                prop_assert!(v > 100, "v was {}", v);
            }
        }
        always_fails();
    }
}
