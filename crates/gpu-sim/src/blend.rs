//! The blend unit: per-channel conditional assignment against the
//! framebuffer.
//!
//! Paper §4.2.2: *"The conditional assignment is a vector operation and can
//! perform comparisons between the four color components (i.e. RGBA) of the
//! two inputs at each fragment simultaneously. The conditional assignment
//! stores either the minimum or the maximum of these color components in the
//! frame buffer."* This is GL's `glBlendEquation(GL_MIN / GL_MAX)` path —
//! fixed-function, no fragment program, and the reason the paper's sorter is
//! an order of magnitude cheaper per comparator than shader-based bitonic
//! sort.

use crate::surface::Texel;

/// A blend equation combining an incoming fragment color (`src`) with the
/// color already in the framebuffer (`dst`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlendOp {
    /// `out = src` — plain write; used by the `Copy` routine. Does not read
    /// the framebuffer.
    Replace,
    /// `out = min(src, dst)` per channel — the comparator's "keep the
    /// smaller" half.
    Min,
    /// `out = max(src, dst)` per channel — the comparator's "keep the
    /// larger" half.
    Max,
    /// `out = src + dst` per channel — used for histogram-style counting
    /// experiments.
    Add,
}

impl BlendOp {
    /// Applies the blend equation to one texel pair.
    ///
    /// NaN inputs are rejected in debug builds: GL `MIN`/`MAX` blending has
    /// unspecified NaN behaviour and the sorting layers guarantee NaN-free
    /// data.
    #[inline]
    pub fn apply(self, src: Texel, dst: Texel) -> Texel {
        debug_assert!(
            src.iter().chain(dst.iter()).all(|c| !c.is_nan()),
            "NaN reached the blend unit"
        );
        match self {
            BlendOp::Replace => src,
            BlendOp::Min => [
                src[0].min(dst[0]),
                src[1].min(dst[1]),
                src[2].min(dst[2]),
                src[3].min(dst[3]),
            ],
            BlendOp::Max => [
                src[0].max(dst[0]),
                src[1].max(dst[1]),
                src[2].max(dst[2]),
                src[3].max(dst[3]),
            ],
            BlendOp::Add => [
                src[0] + dst[0],
                src[1] + dst[1],
                src[2] + dst[2],
                src[3] + dst[3],
            ],
        }
    }

    /// Whether this equation reads the destination (framebuffer) value.
    ///
    /// `Replace` is write-only; the cost model charges no framebuffer-read
    /// bandwidth for it.
    #[inline]
    pub fn reads_dst(self) -> bool {
        !matches!(self, BlendOp::Replace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: Texel = [1.0, 5.0, -2.0, 0.0];
    const D: Texel = [2.0, 4.0, -3.0, 0.0];

    #[test]
    fn replace_ignores_dst() {
        assert_eq!(BlendOp::Replace.apply(S, D), S);
        assert!(!BlendOp::Replace.reads_dst());
    }

    #[test]
    fn min_per_channel() {
        assert_eq!(BlendOp::Min.apply(S, D), [1.0, 4.0, -3.0, 0.0]);
        assert!(BlendOp::Min.reads_dst());
    }

    #[test]
    fn max_per_channel() {
        assert_eq!(BlendOp::Max.apply(S, D), [2.0, 5.0, -2.0, 0.0]);
    }

    #[test]
    fn add_per_channel() {
        assert_eq!(BlendOp::Add.apply(S, D), [3.0, 9.0, -5.0, 0.0]);
    }

    #[test]
    fn min_max_are_commutative_and_idempotent() {
        for op in [BlendOp::Min, BlendOp::Max] {
            assert_eq!(op.apply(S, D), op.apply(D, S));
            assert_eq!(op.apply(S, S), S);
        }
    }

    #[test]
    fn infinity_is_absorbing_for_min_padding() {
        // The sorter pads non-power-of-two inputs with +∞; MIN must never
        // pick the padding over real data.
        let pad: Texel = [f32::INFINITY; 4];
        assert_eq!(BlendOp::Min.apply(pad, D), D);
        assert_eq!(BlendOp::Max.apply(pad, D), pad);
    }
}
