//! A line-delimited TCP front over [`Client`] — the out-of-process path.
//!
//! One request per line, one reply line per request, plain ASCII — the
//! protocol is meant to be driven by `nc` as easily as by the bench load
//! generator. Every connection funnels into the same bounded admission
//! queue as in-process callers, so a TCP client sees the same structured
//! `overloaded` / `expired` vocabulary under saturation.
//!
//! ## Protocol
//!
//! Requests (`<query>` is the registration index; `timeout_ms` optional;
//! any query request may end with a `trace=<hex>` token to supply the
//! request's trace id — otherwise the front generates one):
//!
//! ```text
//! quantile <query> <phi> [timeout_ms] [trace=<hex>]
//! hh       <query> <support> [timeout_ms] [trace=<hex>]
//! hhh      <query> <support> [timeout_ms] [trace=<hex>]
//! squant   <query> <phi> [timeout_ms] [trace=<hex>]
//! shh      <query> <support> [timeout_ms] [trace=<hex>]
//! epoch
//! quit
//! ```
//!
//! Replies (every query reply echoes the trace id that admission,
//! dequeue, and execution spans recorded — grep it in `chrome_trace_json`
//! or the flight recorder to follow one request through the server):
//!
//! ```text
//! answer <epoch> quantile <value> trace=<hex>
//! answer <epoch> hh <n> <value>:<count> ... trace=<hex>
//! answer <epoch> hhh <n> <level>:<value>:<count> ... trace=<hex>
//! overloaded <queue_depth> trace=<hex>
//! expired trace=<hex>
//! notready trace=<hex>
//! badquery <message> trace=<hex>
//! epoch <n>
//! err <message>          (malformed request line)
//! ```

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use gsm_dsms::{QueryAnswer, QueryRequest};
use gsm_obs::TraceCtx;

use crate::server::{Client, Reply, Request};

/// How often blocked reads re-check the shutdown flag. Bounds how long
/// `Drop` can take, not request latency.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// The TCP listener: one accept thread, one handler thread per
/// connection, all funneling into the wrapped [`Client`].
///
/// Dropping the front stops accepting, nudges every handler (via the
/// shutdown flag, observed within the 100 ms poll interval), and joins all
/// threads — in-flight requests still get their reply line first.
pub struct TcpFront {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
}

impl TcpFront {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the bind fails.
    pub fn bind(client: Client, addr: &str) -> io::Result<TcpFront> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            thread::Builder::new()
                .name("gsm-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &client, &shutdown))
                .expect("spawn accept thread")
        };
        Ok(TcpFront {
            addr,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for TcpFront {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // The accept loop blocks in accept(); poke it with a throwaway
        // connection so it observes the flag immediately.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, client: &Client, shutdown: &Arc<AtomicBool>) {
    let handlers: Mutex<Vec<thread::JoinHandle<()>>> = Mutex::new(Vec::new());
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let client = client.clone();
        let shutdown = Arc::clone(shutdown);
        let handle = thread::Builder::new()
            .name("gsm-serve-conn".to_string())
            .spawn(move || handle_connection(stream, &client, &shutdown))
            .expect("spawn connection handler");
        handlers.lock().expect("handler list lock").push(handle);
    }
    for handle in handlers.into_inner().expect("handler list lock") {
        let _ = handle.join();
    }
}

/// Per-connection loop: split the byte stream into lines by hand (a
/// `BufReader::read_line` can drop partially read bytes when a read
/// timeout fires mid-line; manual framing keeps them).
fn handle_connection(mut stream: TcpStream, client: &Client, shutdown: &Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                pending.extend_from_slice(&chunk[..n]);
                while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                    let raw: Vec<u8> = pending.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&raw[..pos]);
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    if line == "quit" || line == "exit" {
                        return;
                    }
                    let response = if line == "epoch" {
                        format!("epoch {}", client.epoch())
                    } else {
                        match parse_request(line) {
                            Ok((request, timeout, trace)) => {
                                let ctx = trace.unwrap_or_else(TraceCtx::fresh);
                                let deadline = timeout.unwrap_or(client.default_deadline());
                                let reply = client.call_traced(request, deadline, ctx);
                                format!("{} trace={}", format_reply(&reply), ctx.hex())
                            }
                            Err(msg) => format!("err {msg}"),
                        }
                    };
                    if writeln!(stream, "{response}").is_err() {
                        return;
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

/// Parses one request line into a [`Request`] plus optional deadline and
/// optional caller-supplied trace id.
#[allow(clippy::type_complexity)]
fn parse_request(line: &str) -> Result<(Request, Option<Duration>, Option<TraceCtx>), String> {
    let mut tokens: Vec<&str> = line.split_whitespace().collect();
    let trace = match tokens.last().and_then(|t| t.strip_prefix("trace=")) {
        Some(hex) => {
            tokens.pop();
            Some(TraceCtx::parse_hex(hex).ok_or("trace id must be nonzero hex".to_string())?)
        }
        None => None,
    };
    let mut parts = tokens.into_iter();
    let verb = parts.next().ok_or("empty request")?;
    let query: usize = parts
        .next()
        .ok_or("missing query index")?
        .parse()
        .map_err(|_| "query index must be an integer".to_string())?;
    let param: f64 = parts
        .next()
        .ok_or("missing parameter")?
        .parse()
        .map_err(|_| "parameter must be a number".to_string())?;
    let timeout = match parts.next() {
        None => None,
        Some(ms) => Some(Duration::from_millis(
            ms.parse()
                .map_err(|_| "timeout must be milliseconds".to_string())?,
        )),
    };
    if parts.next().is_some() {
        return Err("trailing tokens".to_string());
    }
    let typed = match verb {
        "quantile" => QueryRequest::Quantile { phi: param },
        "hh" => QueryRequest::HeavyHitters { support: param },
        "hhh" => QueryRequest::Hhh { support: param },
        "squant" => QueryRequest::SlidingQuantile { phi: param },
        "shh" => QueryRequest::SlidingFrequency { support: param },
        other => return Err(format!("unknown verb '{other}'")),
    };
    Ok((Request::from_typed(query, typed), timeout, trace))
}

/// Renders a [`Reply`] as one protocol line.
fn format_reply(reply: &Reply) -> String {
    match reply {
        Reply::Answer { epoch, answer } => match answer {
            QueryAnswer::Quantile(v) => format!("answer {epoch} quantile {v}"),
            QueryAnswer::HeavyHitters(hits) => {
                let mut out = format!("answer {epoch} hh {}", hits.len());
                for (value, count) in hits {
                    out.push_str(&format!(" {value}:{count}"));
                }
                out
            }
            QueryAnswer::Hhh(entries) => {
                let mut out = format!("answer {epoch} hhh {}", entries.len());
                for e in entries {
                    out.push_str(&format!(" {}:{}:{}", e.level, e.prefix, e.discounted_count));
                }
                out
            }
        },
        Reply::Overloaded { queue_depth } => format!("overloaded {queue_depth}"),
        Reply::Expired => "expired".to_string(),
        Reply::NotReady => "notready".to_string(),
        Reply::BadQuery(msg) => format!("badquery {}", msg.replace('\n', " ")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{QueryServer, ServeConfig};
    use gsm_core::Engine;
    use gsm_dsms::StreamEngine;
    use std::io::{BufRead, BufReader};

    fn call(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).expect("connect");
        for line in lines {
            writeln!(stream, "{line}").expect("send");
        }
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        lines
            .iter()
            .map(|_| {
                let mut reply = String::new();
                reader.read_line(&mut reply).expect("reply");
                reply.trim().to_string()
            })
            .collect()
    }

    #[test]
    fn tcp_round_trip_speaks_the_protocol() {
        let mut eng = StreamEngine::new(Engine::Host).with_n_hint(20_000);
        let q = eng.register_quantile(0.02);
        let f = eng.register_frequency(0.001);
        let server = QueryServer::start(eng.serve(), ServeConfig::default());
        eng.push_all((0..20_000).map(|i| (i % 100) as f32));
        eng.flush();
        eng.publish_now();
        let front = TcpFront::bind(server.client(), "127.0.0.1:0").expect("bind");
        let addr = front.local_addr();

        let direct_median = match server.client().call(Request::Quantile {
            query: q.index(),
            phi: 0.5,
        }) {
            Reply::Answer {
                answer: QueryAnswer::Quantile(v),
                ..
            } => v,
            other => panic!("direct call failed: {other:?}"),
        };

        let replies = call(
            addr,
            &[
                &format!("quantile {} 0.5", q.index()),
                &format!("hh {} 0.009", f.index()),
                "epoch",
                "quantile nope 0.5",
                "bogus 0 0.5",
                &format!("quantile {} 0.5 1000 trace=deadbeef", q.index()),
            ],
        );
        assert!(
            replies[0].starts_with("answer ")
                && replies[0].contains(&format!("quantile {direct_median} trace=")),
            "served quantile must match the in-process answer: {}",
            replies[0]
        );
        let trace_token = replies[0].split_whitespace().last().unwrap();
        let hex = trace_token.strip_prefix("trace=").expect("trace echoed");
        assert!(TraceCtx::parse_hex(hex).is_some(), "generated id parses");
        assert!(
            replies[1].contains(" hh 100 "),
            "100 hot values: {}",
            replies[1]
        );
        assert!(replies[2].starts_with("epoch "), "{}", replies[2]);
        assert!(replies[3].starts_with("err "), "{}", replies[3]);
        assert!(replies[4].starts_with("err "), "{}", replies[4]);
        assert!(
            replies[5].ends_with("trace=00000000deadbeef"),
            "caller-supplied trace ids echo back verbatim: {}",
            replies[5]
        );

        // Requests for bad indices travel the full path too.
        let replies = call(addr, &["quantile 99 0.5"]);
        assert!(replies[0].starts_with("badquery "), "{}", replies[0]);
        assert!(replies[0].contains(" trace="), "{}", replies[0]);

        drop(front);
        drop(server);
    }

    #[test]
    fn front_shuts_down_cleanly_with_open_connections() {
        let mut eng = StreamEngine::new(Engine::Host);
        let _ = eng.register_quantile(0.02);
        let server = QueryServer::start(eng.serve(), ServeConfig::default());
        let front = TcpFront::bind(server.client(), "127.0.0.1:0").expect("bind");
        let addr = front.local_addr();
        // An idle connection that never sends anything.
        let _idle = TcpStream::connect(addr).expect("connect");
        drop(front); // must join, not hang on the idle reader
        drop(server);
    }
}
