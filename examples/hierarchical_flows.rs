//! Hierarchical heavy hitters over network flows — the paper's §1.2
//! extension application on its §1 motivating domain.
//!
//! Synthetic 16-bit "addresses" carry structure: one hot host, one diffuse
//! /8 subnet whose individual hosts are all light, and background noise.
//! A plain heavy-hitter query finds only the host; the hierarchical query
//! also surfaces the subnet — and, thanks to discounting, does *not*
//! re-report the hot host's ancestors.
//!
//! ```text
//! cargo run --release --example hierarchical_flows
//! ```

use gsm::core::{BitPrefixHierarchy, Engine, FrequencyEstimator, HhhEstimator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let packets = 1_000_000usize;
    let eps = 0.0005;
    let support = 0.05;

    // Address layout: high byte = subnet, low byte = host.
    let hot_host = 0x1234u32; // single talkative host: ~15% of packets
    let noisy_subnet = 0x56u32; // subnet 0x56xx: ~20% spread over 256 hosts
    let mut rng = StdRng::seed_from_u64(2005);
    let trace: Vec<f32> = (0..packets)
        .map(|_| match rng.random_range(0..100) {
            0..=14 => hot_host as f32,
            15..=34 => ((noisy_subnet << 8) | rng.random_range(0..256)) as f32,
            _ => rng.random_range(0x8000..0xFFFF) as f32,
        })
        .collect();

    // Plain (flat) heavy hitters: sees the host, misses the subnet.
    let mut flat = FrequencyEstimator::builder(eps)
        .engine(Engine::GpuSim)
        .build();
    flat.push_all(trace.iter().copied());
    let flat_answer = flat.heavy_hitters(support);
    println!("flat heavy hitters at {:.0}% support:", support * 100.0);
    for &(v, c) in &flat_answer {
        println!("  address {:#06x}  count >= {c}", v as u32);
    }
    assert_eq!(flat_answer.len(), 1, "only the hot host clears 5% alone");

    // Hierarchical: /16 leaves, /8 subnets.
    let hierarchy = BitPrefixHierarchy::new(vec![8]);
    let mut hhh = HhhEstimator::new(eps, hierarchy, Engine::GpuSim);
    hhh.push_all(trace.iter().copied());
    let result = hhh.query(support);

    println!(
        "\nhierarchical heavy hitters at {:.0}% support:",
        support * 100.0
    );
    for e in &result {
        let label = if e.level == 0 {
            format!("host   {:#06x}", e.prefix as u32)
        } else {
            format!("subnet {:#04x}xx", (e.prefix as u32) >> 8)
        };
        println!(
            "  {label}  discounted >= {:>6}  (raw {:>6})",
            e.discounted_count, e.raw_count
        );
    }
    assert!(
        result
            .iter()
            .any(|e| e.level == 0 && e.prefix == hot_host as f32),
        "hot host must appear at leaf level"
    );
    assert!(
        result
            .iter()
            .any(|e| e.level == 1 && e.prefix == (noisy_subnet << 8) as f32),
        "diffuse subnet must appear at subnet level"
    );
    assert!(
        !result
            .iter()
            .any(|e| e.level == 1 && e.prefix == (hot_host & 0xFF00) as f32),
        "the hot host's own subnet must be discounted away"
    );

    println!(
        "\nsimulated time: {} ({} summary entries across levels)",
        hhh.total_time(),
        hhh.entry_count()
    );
    println!("breakdown: {}", hhh.breakdown());
}
