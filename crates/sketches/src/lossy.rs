//! Window-based Manku–Motwani lossy counting (paper §5.1).
//!
//! *"For each incoming window of size ⌈1/ε⌉, the algorithm computes a
//! histogram using at most ⌈1/ε⌉ space. After that a merge operation is
//! performed to insert or update the elements into the current ε-approximate
//! summary. … A compress operation is then performed on the summary. …
//! The resulting algorithm underestimates the frequencies of the elements in
//! the summary by at most εN. Given a support s, the ε-approximate query
//! returns all the elements in the ε-approximate summary with a frequency
//! count of (s−ε)N as the output. The algorithm does not generate any false
//! negatives and has a worst-case space requirement of O((1/ε)·log(εN))."*
//!
//! The summary is a value-sorted sequence of [`FreqEntry`] tuples. Each
//! window is a "bucket" in lossy-counting terms: an entry created while
//! processing bucket `b` gets `Δ = b − 1` (it may have been missed in the
//! previous `b−1` buckets, at most once per bucket); the compress step drops
//! entries with `count + Δ ≤ b` — the generalization of the paper's "delete
//! elements with a frequency of unity".

use crate::histogram::histogram;
use crate::summary::{FreqEntry, OpCounter};

/// Phase-split operation counters for the Figure 6 breakdown.
#[derive(Clone, Copy, Default, Debug, serde::Serialize, serde::Deserialize)]
pub struct LossyOps {
    /// Histogram construction (scanning the sorted window).
    pub histogram: OpCounter,
    /// Merging window histograms into the summary.
    pub merge: OpCounter,
    /// Compress (deletion) passes.
    pub compress: OpCounter,
}

/// Streaming ε-deficient frequency summary (window-based lossy counting).
///
/// ```
/// use gsm_sketch::LossyCounting;
///
/// let mut lc = LossyCounting::new(0.01); // windows of 100
/// for _ in 0..10 {
///     let mut window: Vec<f32> = (0..100).map(|i| (i % 4) as f32).collect();
///     window.sort_by(f32::total_cmp);
///     lc.push_sorted_window(&window);
/// }
/// assert_eq!(lc.estimate(0.0), 250); // each value is 25% of 1000 elements
/// assert_eq!(lc.heavy_hitters(0.2).len(), 4);
/// ```
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct LossyCounting {
    eps: f64,
    window: usize,
    /// Value-sorted summary tuples.
    entries: Vec<FreqEntry>,
    /// Buckets (windows) fully processed.
    bucket: u64,
    /// Stream elements processed.
    n: u64,
    ops: LossyOps,
}

impl LossyCounting {
    /// Creates an empty summary with error bound `eps`; the natural window
    /// size is `⌈1/ε⌉`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1), got {eps}");
        let window = (1.0 / eps).ceil() as usize;
        Self::with_window(eps, window)
    }

    /// Creates a summary with an explicit window (bucket) size of at least
    /// `⌈1/ε⌉` elements.
    ///
    /// Lossy counting's undercount is one per *bucket*: with buckets of `w`
    /// elements the error is `N/w ≤ εN` whenever `w ≥ 1/ε`, so larger
    /// windows only tighten the guarantee (at a larger per-window
    /// histogram). This is what lets several frequency queries with
    /// different ε share one sorted window stream (the DSMS layer).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1` and `window ≥ ⌈1/ε⌉`.
    pub fn with_window(eps: f64, window: usize) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1), got {eps}");
        assert!(
            window as f64 >= 1.0 / eps,
            "window {window} must be at least ceil(1/eps) = {}",
            (1.0 / eps).ceil()
        );
        LossyCounting {
            eps,
            window,
            entries: Vec::new(),
            bucket: 0,
            n: 0,
            ops: LossyOps::default(),
        }
    }

    /// The error bound.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The natural window size `⌈1/ε⌉`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Stream elements processed.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Summary tuples held (memory footprint).
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// The worst undercount any estimate can currently carry: one per
    /// bucket (window) processed. With `window ≥ 1/ε` this is ≤ εN — the
    /// tracked form of the paper's bound, exposed so an auditor can assert
    /// `truth − estimate ≤ undercount_bound() ≤ ⌈εN⌉` instead of trusting
    /// the formula.
    pub fn undercount_bound(&self) -> u64 {
        self.bucket
    }

    /// Phase-split operation counters.
    pub fn ops(&self) -> &LossyOps {
        &self.ops
    }

    /// Folds in one *sorted* window (at most [`Self::window`] elements; the
    /// final window may be shorter). Steps: histogram → merge → compress.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty, oversized, or (debug) unsorted.
    pub fn push_sorted_window(&mut self, sorted: &[f32]) {
        assert!(!sorted.is_empty(), "window must be non-empty");
        assert!(
            sorted.len() <= self.window,
            "window of {} exceeds ⌈1/ε⌉ = {}",
            sorted.len(),
            self.window
        );
        self.bucket += 1;
        self.n += sorted.len() as u64;

        // Step 1: histogram of the sorted window.
        let hist = histogram(sorted);
        self.ops.histogram.comparisons += sorted.len() as u64;
        self.ops.histogram.moves += hist.len() as u64;

        // Step 2: merge into the value-sorted summary (two-pointer merge —
        // this is why the paper keeps the summary sorted).
        let delta = self.bucket - 1;
        let mut merged: Vec<FreqEntry> = Vec::with_capacity(self.entries.len() + hist.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.entries.len() || j < hist.len() {
            let take = match (self.entries.get(i), hist.get(j)) {
                (Some(e), Some(&(v, _))) => {
                    self.ops.merge.comparisons += 1;
                    if e.value < v {
                        Take::Old
                    } else if e.value > v {
                        Take::New
                    } else {
                        Take::Both
                    }
                }
                (Some(_), None) => Take::Old,
                (None, Some(_)) => Take::New,
                (None, None) => unreachable!("loop condition"),
            };
            match take {
                Take::Old => {
                    merged.push(self.entries[i]);
                    i += 1;
                }
                Take::New => {
                    let (v, c) = hist[j];
                    merged.push(FreqEntry {
                        value: v,
                        count: c,
                        delta,
                    });
                    j += 1;
                }
                Take::Both => {
                    let mut e = self.entries[i];
                    e.count += hist[j].1;
                    merged.push(e);
                    i += 1;
                    j += 1;
                }
            }
            self.ops.merge.moves += 1;
        }
        self.entries = merged;

        // Step 3: compress — drop entries that can no longer reach the
        // deletion threshold `count + Δ ≤ bucket`.
        let bucket = self.bucket;
        let before = self.entries.len() as u64;
        self.entries.retain(|e| e.count + e.delta > bucket);
        self.ops.compress.comparisons += before;
        self.ops.compress.moves += before - self.entries.len() as u64;
    }

    /// Merges a summary built over a *disjoint* substream into this one
    /// (shard-parallel ingestion: each shard lossy-counts its partition and
    /// the partitions are merged at query time).
    ///
    /// Counts are additive, and so are the undercount bounds: an entry
    /// present in only one side may have occurred up to `bucket` times in
    /// the other side's stream before being compressed away, so its Δ is
    /// charged the absent side's bucket count. The merged bucket count is
    /// the sum of both sides' — estimates never overestimate and undercount
    /// by at most [`Self::undercount_bound`], which after merging k shards
    /// over N total elements with windows ≥ 1/ε is `Σᵢ⌈nᵢ/w⌉ ≤ ⌈εN⌉ + k−1`.
    ///
    /// Merge and compress work is charged to both the summary's own
    /// ledger and the caller's `ops` (so a pipeline can attribute
    /// query-time merge cost separately from ingest cost).
    ///
    /// # Panics
    ///
    /// Panics if the two summaries were built with different `eps` or
    /// window sizes.
    pub fn merge_from(&mut self, other: &Self, ops: &mut OpCounter) {
        assert!(
            self.eps == other.eps && self.window == other.window,
            "cannot merge lossy summaries with different configurations \
             (eps {} vs {}, window {} vs {})",
            self.eps,
            other.eps,
            self.window,
            other.window
        );
        let mut work = OpCounter::default();
        let (self_bucket, other_bucket) = (self.bucket, other.bucket);
        let mut merged: Vec<FreqEntry> =
            Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.entries.len() || j < other.entries.len() {
            let take = match (self.entries.get(i), other.entries.get(j)) {
                (Some(a), Some(b)) => {
                    work.comparisons += 1;
                    if a.value < b.value {
                        Take::Old
                    } else if a.value > b.value {
                        Take::New
                    } else {
                        Take::Both
                    }
                }
                (Some(_), None) => Take::Old,
                (None, Some(_)) => Take::New,
                (None, None) => unreachable!("loop condition"),
            };
            match take {
                Take::Old => {
                    // Absent from `other`: it may have been dropped there
                    // with up to `other.bucket` occurrences unaccounted.
                    let mut e = self.entries[i];
                    e.delta += other_bucket;
                    merged.push(e);
                    i += 1;
                }
                Take::New => {
                    let mut e = other.entries[j];
                    e.delta += self_bucket;
                    merged.push(e);
                    j += 1;
                }
                Take::Both => {
                    let mut e = self.entries[i];
                    e.count += other.entries[j].count;
                    e.delta += other.entries[j].delta;
                    merged.push(e);
                    i += 1;
                    j += 1;
                }
            }
            work.moves += 1;
        }
        self.entries = merged;
        self.bucket = self_bucket + other_bucket;
        self.n += other.n;
        self.ops.merge.absorb(work);
        ops.absorb(work);

        // Compress against the merged bucket count — same deletion rule as
        // the streaming path, so the Δ ≤ bucket invariant is preserved.
        let bucket = self.bucket;
        let before = self.entries.len() as u64;
        self.entries.retain(|e| e.count + e.delta > bucket);
        let compress = OpCounter {
            comparisons: before,
            moves: before - self.entries.len() as u64,
        };
        self.ops.compress.absorb(compress);
        ops.absorb(compress);
    }

    /// Iterates over the summary's `(value, count)` pairs, ascending by
    /// value (the hierarchical-heavy-hitter layer scans these as
    /// candidates).
    pub fn entries(&self) -> impl Iterator<Item = (f32, u64)> + '_ {
        self.entries.iter().map(|e| (e.value, e.count))
    }

    /// The estimated frequency of `value` (an underestimate by ≤ εN).
    pub fn estimate(&self, value: f32) -> u64 {
        match self.entries.binary_search_by(|e| e.value.total_cmp(&value)) {
            Ok(i) => self.entries[i].count,
            Err(_) => 0,
        }
    }

    /// The ε-approximate heavy-hitters query: all summary elements with
    /// `count ≥ (s − ε)·N`, ascending by value. Guaranteed to contain every
    /// element with true frequency ≥ `s·N` (no false negatives) and nothing
    /// with true frequency < `(s − ε)·N`.
    ///
    /// # Panics
    ///
    /// Panics unless `eps < s ≤ 1`.
    pub fn heavy_hitters(&self, s: f64) -> Vec<(f32, u64)> {
        assert!(
            s > self.eps && s <= 1.0,
            "support must satisfy eps < s <= 1"
        );
        let threshold = (s - self.eps) * self.n as f64;
        self.entries
            .iter()
            .filter(|e| e.count as f64 >= threshold)
            .map(|e| (e.value, e.count))
            .collect()
    }
}

enum Take {
    Old,
    New,
    Both,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactStats;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Feeds `data` through lossy counting in sorted windows.
    fn run(data: &[f32], eps: f64) -> LossyCounting {
        let mut lc = LossyCounting::new(eps);
        for chunk in data.chunks(lc.window()) {
            let mut w = chunk.to_vec();
            w.sort_by(f32::total_cmp);
            lc.push_sorted_window(&w);
        }
        lc
    }

    fn zipf_stream(n: usize, domain: u32, seed: u64) -> Vec<f32> {
        // Simple Zipf-ish skew: element k with weight 1/(k+1).
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<f64> = (0..domain).map(|k| 1.0 / (k + 1) as f64).collect();
        let total: f64 = weights.iter().sum();
        (0..n)
            .map(|_| {
                let mut u = rng.random_range(0.0..total);
                for (k, w) in weights.iter().enumerate() {
                    if u < *w {
                        return k as f32;
                    }
                    u -= w;
                }
                (domain - 1) as f32
            })
            .collect()
    }

    #[test]
    fn estimates_underestimate_by_at_most_eps_n() {
        let data = zipf_stream(50_000, 100, 1);
        let eps = 0.001;
        let lc = run(&data, eps);
        let oracle = ExactStats::new(&data);
        let bound = (eps * data.len() as f64).ceil() as u64;
        for k in 0..100u32 {
            let v = k as f32;
            let est = lc.estimate(v);
            let truth = oracle.frequency(v);
            assert!(est <= truth, "estimate {est} exceeds truth {truth} for {v}");
            assert!(
                truth - est <= bound,
                "undercount {} > {bound} for {v}",
                truth - est
            );
        }
    }

    #[test]
    fn no_false_negatives_at_support() {
        let data = zipf_stream(100_000, 1000, 2);
        let eps = 0.0005;
        let s = 0.005;
        let lc = run(&data, eps);
        let oracle = ExactStats::new(&data);
        let answer = lc.heavy_hitters(s);
        let answered: Vec<f32> = answer.iter().map(|&(v, _)| v).collect();
        for (v, _) in oracle.heavy_hitters((s * data.len() as f64).ceil() as u64) {
            assert!(answered.contains(&v), "missing true heavy hitter {v}");
        }
        // No false positives below (s − ε)N.
        let floor = ((s - eps) * data.len() as f64).floor() as u64;
        for &(v, _) in &answer {
            assert!(
                oracle.frequency(v) >= floor.saturating_sub(0),
                "false positive {v} with true frequency {}",
                oracle.frequency(v)
            );
        }
    }

    #[test]
    fn space_stays_bounded() {
        let data = zipf_stream(200_000, 5000, 3);
        let eps = 0.001;
        let lc = run(&data, eps);
        // O((1/ε) log(εN)) = 1000 × log2(200) ≈ 7600; allow slack.
        assert!(lc.entry_count() < 20_000, "entries = {}", lc.entry_count());
    }

    #[test]
    fn uniform_data_mostly_compressed_away() {
        let mut rng = StdRng::seed_from_u64(4);
        let data: Vec<f32> = (0..100_000)
            .map(|_| (rng.random_range(0..1_000_000) as f32) / 8.0)
            .collect();
        let lc = run(&data, 0.001);
        // Nearly every value is unique: the summary must stay near the
        // window size, not grow with N.
        assert!(
            lc.entry_count() < 5 * lc.window(),
            "entries = {}",
            lc.entry_count()
        );
    }

    #[test]
    fn single_window_is_exact() {
        let mut w = vec![1.0f32, 1.0, 2.0, 3.0, 3.0, 3.0];
        w.sort_by(f32::total_cmp);
        let mut lc = LossyCounting::new(0.1);
        lc.push_sorted_window(&w);
        assert_eq!(lc.estimate(3.0), 3);
        assert_eq!(lc.estimate(1.0), 2);
        assert_eq!(lc.estimate(9.0), 0);
    }

    #[test]
    fn ops_split_by_phase() {
        let data = zipf_stream(10_000, 50, 5);
        let lc = run(&data, 0.01);
        let ops = lc.ops();
        assert!(ops.histogram.total() > 0);
        assert!(ops.merge.total() > 0);
        assert!(ops.compress.total() > 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_window_rejected() {
        let mut lc = LossyCounting::new(0.5);
        lc.push_sorted_window(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn larger_shared_window_tightens_the_guarantee() {
        let data = zipf_stream(60_000, 200, 9);
        let eps = 0.002;
        let oracle = ExactStats::new(&data);
        // Window 4x the minimum: undercount bound becomes N/w = eps*N/4.
        let window = 4 * (1.0f64 / eps).ceil() as usize;
        let mut lc = LossyCounting::with_window(eps, window);
        for chunk in data.chunks(window) {
            let mut w = chunk.to_vec();
            w.sort_by(f32::total_cmp);
            lc.push_sorted_window(&w);
        }
        let tight_bound = (data.len() / window) as u64 + 1;
        for v in 0..50u32 {
            let est = lc.estimate(v as f32);
            let truth = oracle.frequency(v as f32);
            assert!(est <= truth);
            assert!(
                truth - est <= tight_bound,
                "undercount {} > {tight_bound}",
                truth - est
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least ceil")]
    fn too_small_shared_window_rejected() {
        let _ = LossyCounting::with_window(0.01, 50);
    }

    /// Splits `data` across `k` shard summaries and merges them back.
    fn run_sharded(data: &[f32], eps: f64, k: usize) -> (LossyCounting, OpCounter) {
        let mut shards: Vec<LossyCounting> = (0..k).map(|_| LossyCounting::new(eps)).collect();
        for (i, chunk) in data.chunks(data.len().div_ceil(k)).enumerate() {
            let lc = &mut shards[i];
            for w in chunk.chunks(lc.window()) {
                let mut w = w.to_vec();
                w.sort_by(f32::total_cmp);
                lc.push_sorted_window(&w);
            }
        }
        let mut merged = shards.remove(0);
        let mut ops = OpCounter::default();
        for s in &shards {
            merged.merge_from(s, &mut ops);
        }
        (merged, ops)
    }

    #[test]
    fn merged_shards_keep_the_additive_bound() {
        let data = zipf_stream(60_000, 200, 11);
        let eps = 0.002;
        for k in [2usize, 4] {
            let (merged, ops) = run_sharded(&data, eps, k);
            assert_eq!(merged.count(), data.len() as u64);
            assert!(ops.total() > 0, "merge work must be counted");
            let oracle = ExactStats::new(&data);
            // Additive bound: Σᵢ⌈nᵢ/w⌉ ≤ ⌈εN⌉ + k − 1.
            let cap = (eps * data.len() as f64).ceil() as u64 + k as u64 - 1;
            let bound = merged.undercount_bound();
            assert!(bound <= cap, "surfaced bound {bound} > {cap}");
            for v in 0..200u32 {
                let est = merged.estimate(v as f32);
                let truth = oracle.frequency(v as f32);
                assert!(est <= truth, "merged estimate overestimates {v}");
                assert!(
                    truth - est <= bound,
                    "undercount {} > surfaced bound {bound} for {v}",
                    truth - est
                );
            }
        }
    }

    #[test]
    fn merged_shards_keep_no_false_negatives() {
        // Oversized shard windows (the DSMS always over-provisions the
        // shared window) keep Σᵢ⌈nᵢ/w⌉ ≤ εN so the support guarantee
        // survives the merge.
        let data = zipf_stream(100_000, 1000, 12);
        let (eps, s, k) = (0.0005, 0.005, 4);
        let window = 4 * (1.0f64 / eps).ceil() as usize;
        let mut shards: Vec<LossyCounting> = (0..k)
            .map(|_| LossyCounting::with_window(eps, window))
            .collect();
        for (i, chunk) in data.chunks(data.len().div_ceil(k)).enumerate() {
            for w in chunk.chunks(window) {
                let mut w = w.to_vec();
                w.sort_by(f32::total_cmp);
                shards[i].push_sorted_window(&w);
            }
        }
        let mut merged = shards.remove(0);
        for sh in &shards {
            merged.merge_from(sh, &mut OpCounter::default());
        }
        assert!(merged.undercount_bound() as f64 <= eps * data.len() as f64);
        let oracle = ExactStats::new(&data);
        let answered: Vec<f32> = merged.heavy_hitters(s).iter().map(|&(v, _)| v).collect();
        for (v, _) in oracle.heavy_hitters((s * data.len() as f64).ceil() as u64) {
            assert!(answered.contains(&v), "missing true heavy hitter {v}");
        }
    }

    #[test]
    #[should_panic(expected = "different configurations")]
    fn merge_rejects_mismatched_eps() {
        let mut a = LossyCounting::new(0.01);
        let b = LossyCounting::new(0.02);
        a.merge_from(&b, &mut OpCounter::default());
    }
}
