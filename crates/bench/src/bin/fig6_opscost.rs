//! **Figure 6** — cost of the summary operations: share of time spent in
//! sort / merge / compress for the frequency estimator across ε.
//!
//! Paper: "the majority of the computational time is spent in sorting the
//! window values" (80–90 % in §5.1; 70–95 % claimed for CPU implementations
//! in §3.2 — run with `--engine cpu` for that variant, experiment E7).
//!
//! ```text
//! cargo run --release -p gsm-bench --bin fig6_opscost [-- --n 4194304 --engine gpu|cpu --csv]
//! ```

use gsm_bench::{human_n, Args, Table};
use gsm_core::{Engine, FrequencyEstimator};
use gsm_stream::UniformGen;

fn main() {
    let args = Args::parse();
    let csv = args.flag("csv");
    let n: usize = args.get_num("n", 4 << 20);
    let engine = match args.get("engine") {
        Some("cpu") => Engine::CpuSim,
        _ => Engine::GpuSim,
    };

    let eps_list: Vec<f64> = (10..=16).map(|k| (2.0f64).powi(-k)).collect();

    println!(
        "# Figure 6: summary-operation cost split, frequency estimation, {} stream, engine = {:?}\n",
        human_n(n),
        engine
    );
    let mut table = Table::new([
        "eps",
        "window",
        "sort %",
        "transfer %",
        "merge %",
        "compress %",
        "total ms",
    ]);

    for &eps in &eps_list {
        let mut est = FrequencyEstimator::builder(eps).engine(engine).build();
        est.push_all(UniformGen::unit(42).take(n));
        est.flush();
        let b = est.breakdown();
        let total = b.total();
        table.row([
            format!("2^-{}", (1.0 / eps).log2() as u32),
            est.window().to_string(),
            format!("{:.1}", 100.0 * b.sort_fraction()),
            format!("{:.1}", 100.0 * b.transfer.fraction_of(total)),
            format!("{:.1}", 100.0 * b.merge_fraction()),
            format!("{:.1}", 100.0 * b.compress_fraction()),
            format!("{:.3}", total.as_millis()),
        ]);
    }
    table.print(csv);
    println!("\n# sorting dominates at every eps, as the paper reports (80-90%).");
}
