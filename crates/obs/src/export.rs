//! Exporters: Prometheus text exposition and Chrome `trace_event` JSON.
//!
//! Both render from the shared registry under its lock and depend on
//! nothing outside `std` — the crate's zero-dependency contract. The JSON
//! writer is hand-rolled because the trace format only needs flat objects,
//! numbers, and escaped strings.

use std::fmt::Write;

use crate::metrics::Log2Histogram;
use crate::State;

/// Converts a metric name to a legal Prometheus identifier under the `gsm`
/// namespace.
fn prom_name(name: &str) -> String {
    let sanitized: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("gsm_{sanitized}")
}

/// Escapes a Prometheus label value.
fn prom_escape(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a `{key="value"}` label block (empty string when unlabeled),
/// optionally with an extra `le` pair appended.
fn prom_labels(label: &Option<(&'static str, String)>, le: Option<&str>) -> String {
    let mut pairs: Vec<String> = Vec::new();
    if let Some((k, v)) = label {
        pairs.push(format!("{k}=\"{}\"", prom_escape(v)));
    }
    if let Some(le) = le {
        pairs.push(format!("le=\"{le}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Writes one histogram in Prometheus `histogram` convention, converting
/// nanosecond buckets to seconds.
fn prom_histogram(
    out: &mut String,
    base: &str,
    label: &Option<(&'static str, String)>,
    hist: &Log2Histogram,
) {
    let mut cumulative = 0u64;
    for bucket in 0..=hist.max_bucket().unwrap_or(0) {
        cumulative += hist.buckets[bucket];
        // Bucket `i` holds durations below 2^i ns.
        let le = (1u128 << bucket) as f64 * 1e-9;
        let labels = prom_labels(label, Some(&format!("{le}")));
        let _ = writeln!(out, "{base}_bucket{labels} {cumulative}");
    }
    let labels = prom_labels(label, Some("+Inf"));
    let _ = writeln!(out, "{base}_bucket{labels} {}", hist.count);
    let plain = prom_labels(label, None);
    let _ = writeln!(out, "{base}_sum{plain} {}", hist.sum_ns as f64 * 1e-9);
    let _ = writeln!(out, "{base}_count{plain} {}", hist.count);
}

/// Renders the whole registry in the Prometheus text exposition format.
pub(crate) fn prometheus_text(state: &mut State) -> String {
    let mut out = String::new();
    let mut last_type_line = String::new();
    let mut type_line = |out: &mut String, base: &str, kind: &str| {
        let line = format!("# TYPE {base} {kind}");
        if line != last_type_line {
            let _ = writeln!(out, "{line}");
            last_type_line = line;
        }
    };

    for ((name, label), value) in &state.counters {
        let base = format!("{}_total", prom_name(name));
        type_line(&mut out, &base, "counter");
        let _ = writeln!(out, "{base}{} {value}", prom_labels(label, None));
    }
    for ((name, label), gauge) in &state.gauges {
        let base = prom_name(name);
        let labels = prom_labels(label, None);
        type_line(&mut out, &base, "gauge");
        let _ = writeln!(out, "{base}{labels} {}", gauge.current);
        let hw = format!("{base}_highwater");
        type_line(&mut out, &hw, "gauge");
        let _ = writeln!(out, "{hw}{labels} {}", gauge.highwater);
    }
    for ((name, label), hist) in &state.hists {
        let base = format!("{}_seconds", prom_name(name));
        type_line(&mut out, &base, "histogram");
        prom_histogram(&mut out, &base, label, hist);
    }
    if state.spans.dropped() > 0 {
        let base = "gsm_obs_spans_dropped_total";
        type_line(&mut out, base, "counter");
        let _ = writeln!(out, "{base} {}", state.spans.dropped());
    }
    out
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the span ring as Chrome `trace_event` JSON (complete events,
/// `"ph":"X"`, timestamps in microseconds since the recorder's epoch).
pub(crate) fn chrome_trace_json(state: &mut State) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in state.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let args = match &e.label {
            Some((k, v)) => format!(
                ",\"args\":{{\"{}\":\"{}\"}}",
                json_escape(k),
                json_escape(v)
            ),
            None => String::new(),
        };
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"gsm\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":1,\"tid\":{}{args}}}",
            json_escape(e.name),
            e.start_ns as f64 / 1e3,
            e.dur_ns as f64 / 1e3,
            e.tid
        );
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"droppedSpans\":{}}}",
        state.spans.dropped()
    );
    out
}

#[cfg(test)]
mod tests {
    use crate::Recorder;

    #[test]
    fn prometheus_counters_gauges_histograms_render() {
        let rec = Recorder::enabled();
        rec.count("windows", 7);
        rec.count_labeled("tasks", ("worker", "0"), 3);
        rec.gauge_add("depth", 2);
        rec.observe_ns("sort", 1_000);
        rec.observe_ns("sort", 3_000);
        let text = rec.prometheus_text();
        assert!(text.contains("# TYPE gsm_windows_total counter"));
        assert!(text.contains("gsm_windows_total 7"));
        assert!(text.contains("gsm_tasks_total{worker=\"0\"} 3"));
        assert!(text.contains("# TYPE gsm_depth gauge"));
        assert!(text.contains("gsm_depth 2"));
        assert!(text.contains("gsm_depth_highwater 2"));
        assert!(text.contains("# TYPE gsm_sort_seconds histogram"));
        assert!(text.contains("gsm_sort_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("gsm_sort_seconds_count 2"));
        // Cumulative buckets are monotone: the le=+Inf count equals total.
        let sum_line = text
            .lines()
            .find(|l| l.starts_with("gsm_sort_seconds_sum"))
            .expect("sum line");
        let sum: f64 = sum_line.split(' ').nth(1).unwrap().parse().unwrap();
        assert!((sum - 4e-6).abs() < 1e-12);
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let rec = Recorder::enabled();
        {
            let _a = rec.span("outer");
            let _b = rec.span_labeled("inner", ("window", "3"));
        }
        let json = rec.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"inner\""));
        assert!(json.contains("\"args\":{\"window\":\"3\"}"));
        assert!(json.contains("\"droppedSpans\":0"));
        // Balanced braces/brackets — the hand-rolled writer's smoke check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escaping_handles_hostile_strings() {
        assert_eq!(super::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(super::prom_escape("x\"y\\z\nw"), "x\\\"y\\\\z\\nw");
        assert_eq!(
            super::prom_name("pool.service-time"),
            "gsm_pool_service_time"
        );
    }
}
