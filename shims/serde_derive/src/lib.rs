//! Offline stand-in for `serde_derive`.
//!
//! Parses the derive input with the `proc_macro` API directly (no
//! syn/quote, which are unavailable offline) and emits impls of the serde
//! shim's value-tree traits. Supports exactly what the workspace derives
//! on: non-generic named-field structs and enums with unit, tuple, or
//! named-field variants, externally tagged like real serde.

#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives the serde shim's `Serialize` (value-tree rendering).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the serde shim's `Deserialize` (value-tree rebuilding).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Outer attribute: swallow the bracket group.
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Optional visibility scope: pub(crate) etc.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(tokens.next());
                let body = expect_brace_group(tokens.next());
                return Item::Struct {
                    name,
                    fields: parse_named_fields(body),
                };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(tokens.next());
                let body = expect_brace_group(tokens.next());
                return Item::Enum {
                    name,
                    variants: parse_variants(body),
                };
            }
            Some(other) => panic!("serde shim derive: unexpected token `{other}`"),
            None => panic!("serde shim derive: no struct or enum found"),
        }
    }
}

fn expect_ident(t: Option<TokenTree>) -> String {
    match t {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected identifier, got {other:?}"),
    }
}

fn expect_brace_group(t: Option<TokenTree>) -> TokenStream {
    match t {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde shim derive: only braced bodies are supported (no tuple \
             structs, no generics), got {other:?}"
        ),
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility in front of the field name.
        match tokens.peek() {
            None => return fields,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next();
                continue;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
                continue;
            }
            _ => {}
        }
        fields.push(expect_ident(tokens.next()));
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:`, got {other:?}"),
        }
        // Skip the type: a `,` only terminates the field at angle depth 0
        // (generic arguments like HashMap<u32, u64> contain commas; paren
        // and bracket nesting arrives pre-grouped).
        let mut angle_depth = 0i32;
        loop {
            match tokens.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
            }
        }
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        match tokens.peek() {
            None => return variants,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next();
                continue;
            }
            _ => {}
        }
        let name = expect_ident(tokens.next());
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == ',' {
                tokens.next();
            }
        }
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for t in body {
        any = true;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => commas += 1,
            _ => {}
        }
    }
    if any {
        commas + 1
    } else {
        0
    }
}

// ------------------------------------------------------------- generation

// `access` must evaluate to a reference to the field (`&self.f` for
// structs, the match binding itself for enum variants).
fn field_pairs(fields: &[String], access: impl Fn(&str) -> String) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), \
                 ::serde::Serialize::to_value({access})),",
                access = access(f)
            )
        })
        .collect()
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let pairs = field_pairs(fields, |f| format!("&self.{f}"));
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Obj(::std::vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from({vn:?})),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Obj(::std::vec![(\
                             ::std::string::String::from({vn:?}), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Obj(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Value::Arr(::std::vec![{items}]))]),",
                                binds = binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let pairs = field_pairs(fields, |f| f.to_string());
                            format!(
                                "{name}::{vn} {{ {binds} }} => \
                                 ::serde::Value::Obj(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Value::Obj(::std::vec![{pairs}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let header = |name: &str, body: &str| {
        format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) \
                 -> ::core::result::Result<Self, ::serde::Error> {{\n\
                     {body}\n\
                 }}\n\
             }}"
        )
    };
    let struct_body = |path: &str, fields: &[String], src: &str| {
        let inits: String = fields
            .iter()
            .map(|f| {
                format!(
                    "{f}: ::serde::Deserialize::from_value(\
                     ::serde::obj_get({src}, {f:?})?)?,"
                )
            })
            .collect();
        format!("::core::result::Result::Ok({path} {{ {inits} }})")
    };
    match item {
        Item::Struct { name, fields } => header(name, &struct_body(name, fields, "__v")),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "{vn:?} => ::core::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => ::core::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: String = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?,")
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => match __inner {{\n\
                                     ::serde::Value::Arr(__items) if __items.len() == {n} => \
                                     ::core::result::Result::Ok({name}::{vn}({items})),\n\
                                     _ => ::core::result::Result::Err(::serde::Error::msg(\
                                     \"expected array for tuple variant\")),\n\
                                 }},"
                            ))
                        }
                        VariantKind::Struct(fields) => Some(format!(
                            "{vn:?} => {},",
                            struct_body(&format!("{name}::{vn}"), fields, "__inner")
                        )),
                    }
                })
                .collect();
            let body = format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::core::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"unknown variant `{{__other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Obj(__fields) if __fields.len() == 1 => {{\n\
                         let (__tag, __inner) = &__fields[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\n\
                             __other => ::core::result::Result::Err(::serde::Error::msg(\
                             ::std::format!(\"unknown variant `{{__other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::core::result::Result::Err(::serde::Error::msg(\
                     \"expected externally tagged enum\")),\n\
                 }}"
            );
            header(name, &body)
        }
    }
}
