//! The checkpoint store: atomic snapshot files alongside the WAL.
//!
//! Each checkpoint is the engine's JSON envelope written to
//! `ckpt-<wal_seq>.json`, where `wal_seq` is the last WAL record the
//! snapshot covers. Writes go through a temp file, `fsync`, and an atomic
//! rename so a crash mid-save can never leave a half-written checkpoint
//! with a valid name. Loads are newest-first; recovery walks down the list
//! until one parses, so a checkpoint torn by some other path degrades to
//! the previous one instead of failing recovery outright.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// A directory of atomic checkpoint snapshots, keyed by WAL horizon.
pub struct CheckpointStore {
    dir: PathBuf,
}

/// Checkpoints kept after a save; older ones are pruned.
const KEEP: usize = 2;

fn ckpt_name(wal_seq: u64) -> String {
    format!("ckpt-{wal_seq:010}.json")
}

fn parse_ckpt_name(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

impl CheckpointStore {
    /// Opens (creating if needed) a store rooted at `dir`. Shares a
    /// directory with the WAL without conflict — files are distinguished
    /// by prefix.
    ///
    /// # Errors
    ///
    /// Returns the error from creating the directory.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
        })
    }

    /// Atomically writes a checkpoint covering WAL records up to
    /// `wal_seq`, then prunes all but the two newest snapshots (the
    /// previous one is the fallback if a crash corrupts the write).
    ///
    /// # Errors
    ///
    /// Returns I/O errors from the write, fsync, or rename.
    pub fn save(&self, wal_seq: u64, json: &str) -> std::io::Result<()> {
        let tmp = self.dir.join(format!(".ckpt-{wal_seq:010}.tmp"));
        let final_path = self.dir.join(ckpt_name(wal_seq));
        {
            let mut f = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(json.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &final_path)?;
        // Best-effort directory fsync so the rename itself is durable;
        // not all platforms allow opening a directory for sync.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        let mut all = self.list()?;
        if all.len() > KEEP {
            all.truncate(all.len() - KEEP);
            for (_, path) in all {
                fs::remove_file(path)?;
            }
        }
        Ok(())
    }

    /// All checkpoint files, ascending by WAL horizon.
    fn list(&self) -> std::io::Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if let Some(seq) = parse_ckpt_name(&entry.file_name().to_string_lossy()) {
                out.push((seq, entry.path()));
            }
        }
        out.sort_by_key(|&(seq, _)| seq);
        Ok(out)
    }

    /// Every stored checkpoint as `(wal_seq, json)`, newest first.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from listing or reading the files.
    pub fn load_all_desc(&self) -> std::io::Result<Vec<(u64, String)>> {
        let mut out = Vec::new();
        for (seq, path) in self.list()?.into_iter().rev() {
            out.push((seq, fs::read_to_string(path)?));
        }
        Ok(out)
    }

    /// The newest checkpoint, if any.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from listing or reading the file.
    pub fn latest(&self) -> std::io::Result<Option<(u64, String)>> {
        Ok(self.load_all_desc()?.into_iter().next())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "gsm-store-test-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn save_load_newest_first_and_prune() {
        let dir = tmp("basic");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.latest().unwrap().is_none());
        store.save(0, "{\"a\":0}").unwrap();
        store.save(8, "{\"a\":8}").unwrap();
        store.save(16, "{\"a\":16}").unwrap();

        let all = store.load_all_desc().unwrap();
        assert_eq!(all.len(), KEEP, "older snapshots pruned");
        assert_eq!(all[0], (16, "{\"a\":16}".to_string()));
        assert_eq!(all[1], (8, "{\"a\":8}".to_string()));
        assert_eq!(store.latest().unwrap().unwrap().0, 16);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stray_tmp_file_is_ignored() {
        let dir = tmp("straytmp");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save(4, "{\"a\":4}").unwrap();
        // Simulate a crash mid-save: a temp file that never got renamed.
        fs::write(dir.join(".ckpt-0000000009.tmp"), "half-writ").unwrap();
        let all = store.load_all_desc().unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shares_directory_with_wal_segments() {
        let dir = tmp("shared");
        let store = CheckpointStore::open(&dir).unwrap();
        fs::write(dir.join("wal-0000000001.seg"), b"not a checkpoint").unwrap();
        store.save(1, "{}").unwrap();
        assert_eq!(store.load_all_desc().unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
