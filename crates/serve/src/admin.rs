//! The admin/telemetry HTTP endpoint: `/metrics`, `/healthz`, `/status`.
//!
//! A std-only HTTP/1.0 responder on its own listener (never the query
//! port — scrapes must work while the query plane is saturated, and a
//! proxy should be able to firewall the two separately). It reuses the
//! [`crate::TcpFront`] machinery: one accept thread, one short-lived
//! thread per connection, a shutdown flag polled on a read timeout, and a
//! poke connection on drop. Every response closes the connection
//! (`Connection: close`), which is all Prometheus scrapers and `curl`
//! need — no keep-alive, no chunking, no TLS.
//!
//! Routes:
//!
//! * `GET /metrics` — the live [`Recorder`] in Prometheus text format.
//! * `GET /healthz` — `ok` once the listener is up (liveness, not
//!   readiness: a server with no published snapshot is alive but answers
//!   `notready` on the query plane).
//! * `GET /status` — one JSON object of operational state: uptime,
//!   snapshot epoch, shard count, queue depth, reply accounting, shed and
//!   span-ring counters, and SLO verdicts.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use gsm_dsms::SnapshotRegistry;
use gsm_obs::{Recorder, SloSpec};

use crate::server::Client;

/// How often blocked reads re-check the shutdown flag (same posture as
/// the query front).
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// What the admin endpoint reports on. Everything is optional except the
/// recorder, so the endpoint can front an ingest-only engine (no query
/// server) or a disabled recorder (empty `/metrics`, `/status` still
/// live).
pub struct AdminSources {
    /// The recorder backing `/metrics` and the ring/shed counters.
    pub recorder: Recorder,
    /// Snapshot registry for the epoch field.
    pub registry: Option<Arc<SnapshotRegistry>>,
    /// Query-server client for queue depth and reply accounting.
    pub client: Option<Client>,
    /// Ingest shard count, echoed verbatim.
    pub shards: usize,
    /// Latency objectives evaluated (and breach-counted) on every
    /// `/status` request.
    pub slos: Vec<SloSpec>,
}

impl AdminSources {
    /// Sources exposing only a recorder.
    pub fn new(recorder: Recorder) -> AdminSources {
        AdminSources {
            recorder,
            registry: None,
            client: None,
            shards: 1,
            slos: Vec::new(),
        }
    }
}

struct Shared {
    sources: AdminSources,
    started: Instant,
}

/// The admin listener. Dropping it stops accepting and joins all handler
/// threads, exactly like [`crate::TcpFront`].
pub struct AdminServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
}

impl AdminServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the bind fails.
    pub fn bind(addr: &str, sources: AdminSources) -> io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            sources,
            started: Instant::now(),
        });
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            thread::Builder::new()
                .name("gsm-admin-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &shutdown))
                .expect("spawn admin accept thread")
        };
        Ok(AdminServer {
            addr,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, shutdown: &Arc<AtomicBool>) {
    let handlers: Mutex<Vec<thread::JoinHandle<()>>> = Mutex::new(Vec::new());
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let shutdown = Arc::clone(shutdown);
        let handle = thread::Builder::new()
            .name("gsm-admin-conn".to_string())
            .spawn(move || handle_connection(stream, &shared, &shutdown))
            .expect("spawn admin connection handler");
        handlers
            .lock()
            .expect("admin handler list lock")
            .push(handle);
    }
    for handle in handlers.into_inner().expect("admin handler list lock") {
        let _ = handle.join();
    }
}

/// Reads the request line, routes it, writes one response, closes. The
/// remaining request headers are irrelevant to every route, so they are
/// left unread — the response carries `Connection: close` and the socket
/// drop discards them.
fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>, shutdown: &Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    let line = loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                pending.extend_from_slice(&chunk[..n]);
                if let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                    break String::from_utf8_lossy(&pending[..pos]).trim().to_string();
                }
                if pending.len() > 8 * 1024 {
                    return; // a request line this long is not ours
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    };
    let (status, content_type, body) = respond(shared, &line);
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Routes one request line to `(status, content type, body)`.
fn respond(shared: &Shared, line: &str) -> (&'static str, &'static str, String) {
    let mut parts = line.split_whitespace();
    let (verb, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if verb != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is served here\n".to_string(),
        );
    }
    match path {
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            shared.sources.recorder.prometheus_text(),
        ),
        "/status" => ("200 OK", "application/json", status_json(shared)),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "routes: /metrics /healthz /status\n".to_string(),
        ),
    }
}

/// Renders `/status` as one flat-ish JSON object. Hand-rolled like the
/// obs exporters: every value is a number or a fixed-vocabulary string,
/// so no generic serializer is needed.
fn status_json(shared: &Shared) -> String {
    use std::fmt::Write as _;
    let src = &shared.sources;
    let rec = &src.recorder;
    let mut out = String::from("{\"schema\":1,\"service\":\"gsm-serve\"");
    let _ = write!(
        out,
        ",\"uptime_secs\":{:.3}",
        shared.started.elapsed().as_secs_f64()
    );
    let epoch = src.registry.as_ref().map_or(0, |r| r.epoch());
    let _ = write!(out, ",\"epoch\":{epoch},\"shards\":{}", src.shards);
    match &src.client {
        None => out.push_str(",\"serving\":false"),
        Some(client) => {
            let stats = client.stats();
            let _ = write!(
                out,
                ",\"serving\":true,\"queue_depth\":{},\"queue_highwater\":{},\
                 \"requests\":{{\"submitted\":{},\"answered\":{},\"overloaded\":{},\
                 \"expired\":{},\"not_ready\":{},\"bad_query\":{},\"lost\":{}}}",
                client.queue_depth(),
                rec.gauge("serve_queue_depth").map_or(0, |g| g.highwater),
                stats.submitted,
                stats.answered,
                stats.overloaded,
                stats.expired,
                stats.not_ready,
                stats.bad_query,
                stats.lost(),
            );
        }
    }
    let _ = write!(
        out,
        ",\"shed\":{{\"ingest_events\":{},\"ingest_elements\":{},\"serve_admission\":{}}}",
        rec.counter_total("dsms_shed_events"),
        rec.counter_total("dsms_shed_elements"),
        rec.counter("serve_overloaded"),
    );
    let _ = write!(
        out,
        ",\"spans\":{{\"ring_events\":{},\"dropped\":{}}},\
         \"flight\":{{\"ring_events\":{},\"dropped\":{}}}",
        rec.span_ring_len(),
        rec.dropped_spans(),
        rec.flight_events().len(),
        rec.dropped_flight_events(),
    );
    out.push_str(",\"slo\":[");
    for (i, outcome) in rec.check_slos(&src.slos).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"count\":{},\"observed_p50_ns\":{},\"observed_p99_ns\":{},\
             \"breached\":{}}}",
            outcome.name,
            outcome.count,
            outcome.observed_p50_ns,
            outcome.observed_p99_ns,
            outcome.breached(),
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{QueryServer, Request, ServeConfig};
    use gsm_core::Engine;
    use gsm_dsms::StreamEngine;

    /// Minimal HTTP/1.0 GET, returning (status line, body).
    pub(crate) fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect admin");
        write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("send request");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        let status = head.lines().next().unwrap_or("").to_string();
        (status, body.to_string())
    }

    #[test]
    fn routes_answer_and_unknown_paths_get_404() {
        let rec = Recorder::enabled();
        rec.count("windows", 3);
        let admin = AdminServer::bind("127.0.0.1:0", AdminSources::new(rec)).expect("bind");
        let addr = admin.local_addr();

        let (status, body) = http_get(addr, "/healthz");
        assert_eq!(status, "HTTP/1.0 200 OK");
        assert_eq!(body, "ok\n");

        let (status, body) = http_get(addr, "/metrics");
        assert_eq!(status, "HTTP/1.0 200 OK");
        assert!(body.contains("gsm_windows_total 3"));
        assert!(body.contains("gsm_obs_spans_dropped_total 0"));

        let (status, body) = http_get(addr, "/status");
        assert_eq!(status, "HTTP/1.0 200 OK");
        assert!(body.starts_with("{\"schema\":1"));
        assert!(body.contains("\"serving\":false"));

        let (status, _) = http_get(addr, "/nope");
        assert!(status.contains("404"));

        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "POST /metrics HTTP/1.0\r\n\r\n").expect("send");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        assert!(raw.starts_with("HTTP/1.0 405"));
    }

    #[test]
    fn status_reflects_the_live_server() {
        let rec = Recorder::enabled();
        let mut eng = StreamEngine::new(Engine::Host).with_n_hint(20_000);
        let q = eng.register_quantile(0.02);
        let reg = eng.serve();
        let server =
            QueryServer::with_recorder(Arc::clone(&reg), ServeConfig::default(), rec.clone());
        let admin = AdminServer::bind(
            "127.0.0.1:0",
            AdminSources {
                recorder: rec,
                registry: Some(Arc::clone(&reg)),
                client: Some(server.client()),
                shards: 1,
                slos: vec![SloSpec {
                    name: "serve_quantile",
                    metric: "serve_latency",
                    label: Some(("kind", "quantile")),
                    p50_ns: None,
                    p99_ns: u64::MAX,
                }],
            },
        )
        .expect("bind");
        let addr = admin.local_addr();

        let epoch_of = |body: &str| -> u64 {
            body.split("\"epoch\":")
                .nth(1)
                .and_then(|rest| rest.split(',').next())
                .and_then(|v| v.parse().ok())
                .expect("status carries an epoch")
        };
        let (_, before) = http_get(addr, "/status");
        assert!(before.contains("\"serving\":true"));

        eng.push_all((0..20_000).map(|i| (i % 100) as f32));
        eng.flush();
        eng.publish_now();
        let _ = server.client().call(Request::Quantile {
            query: q.index(),
            phi: 0.5,
        });

        let (_, after) = http_get(addr, "/status");
        assert!(
            epoch_of(&after) > epoch_of(&before),
            "epoch advanced across the publish: {before} -> {after}"
        );
        assert!(after.contains("\"answered\":1"));
        assert!(
            after.contains("\"queue_highwater\":1"),
            "every admission transits depth 1: {after}"
        );
        assert!(after.contains("\"name\":\"serve_quantile\""));
        assert!(after.contains("\"breached\":false"));
    }
}
