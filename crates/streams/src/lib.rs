#![warn(missing_docs)]

//! Data-stream substrate for the gsm reproduction.
//!
//! The paper evaluates on "a random database of 100 million elements with
//! 16-bit floating point precision" (§5). This crate provides everything
//! needed to regenerate such inputs and feed them through the estimators:
//!
//! * [`F16`] (re-exported from `gsm-model`) — a from-scratch software IEEE 754
//!   binary16 type, so streams can
//!   be generated, stored, and compared at the paper's precision,
//! * [`gen`] — synthetic value generators: uniform random (the paper's
//!   workload), gaussian, sorted/reverse/nearly-sorted (adversarial inputs
//!   for the sorters), and bursty timestamped arrivals (variable-width
//!   sliding windows, §5.3),
//! * [`zipf`] — a Zipf(α) generator for heavy-hitter / frequency workloads,
//! * [`window`] — fixed-size tumbling windows (the unit of work of the
//!   paper's window-based algorithms) and timestamp-based variable windows.
//!
//! All generators are deterministic given a seed, so every figure harness is
//! reproducible run-to-run.

pub mod gen;
pub mod trace;
pub mod window;
pub mod zipf;

pub use gen::{
    BatchGen, BurstyGen, GaussianGen, NearlySortedGen, ParetoGen, SortedGen, Timestamped,
    UniformGen,
};
pub use gsm_model::f16;
pub use gsm_model::F16;
pub use trace::Trace;
pub use window::{FixedWindows, VariableWindows};
pub use zipf::ZipfGen;
