//! **Serve benchmark** — concurrent query load against a live ingesting
//! engine, and the ingest-throughput price of serving.
//!
//! Two phases over the same stream on `Engine::ParallelHost`:
//!
//! * **server off** — plain sharded ingestion, the baseline wall clock;
//! * **server on** — the engine publishes snapshots as windows seal while
//!   N paced client threads hammer the `gsm-serve` frontend with the
//!   registered query kinds; ingest wall clock and client latencies are
//!   both recorded.
//!
//! Reported: both ingest rates and their regression percentage, query
//! throughput, p50/p99 client-observed latency, and the full structured
//! reply accounting. Two invariants are **asserted** on every run:
//!
//! * zero requests lost without a structured reply, and
//! * the served answer byte-identical to the direct engine query over the
//!   same sealed windows.
//!
//! The <5% ingest-regression target is asserted only under
//! `--max-regression <pct>`: on a single-core shared runner the client
//! threads and the writer compete for one CPU, so the ratio is recorded
//! (and gated warn-only in CI by `bench_diff.sh`) rather than hard-failed.
//!
//! ```text
//! cargo run --release -p gsm-bench --bin bench_serve [-- --elements 1048576
//!     --shards 2 --clients 4 --publish-every 4 --pace-us 1000
//!     --repeats 2 --out results/BENCH_serve.json]
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use gsm_bench::Args;
use gsm_core::Engine;
use gsm_dsms::{QueryAnswer, QueryId, StreamEngine};
use gsm_obs::{Log2Histogram, Recorder, SloSpec};
use gsm_serve::{Client, QueryServer, Reply, Request, ServeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Client-side reply tally plus latency samples (nanoseconds, answered
/// requests only).
#[derive(Default)]
struct ClientTally {
    latencies_ns: Vec<u64>,
    answered: u64,
    overloaded: u64,
    expired: u64,
    not_ready: u64,
}

#[derive(serde::Serialize)]
struct SloVerdict {
    slo: String,
    quantile: f64,
    observed_ns: u64,
    bound_ns: u64,
    breached: bool,
}

#[derive(serde::Serialize)]
struct QueryStats {
    submitted: u64,
    answered: u64,
    overloaded: u64,
    expired: u64,
    not_ready: u64,
    bad_query: u64,
    lost: u64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
}

#[derive(serde::Serialize)]
struct Report {
    bench: String,
    engine: String,
    elements: u64,
    shards: usize,
    clients: usize,
    workers: usize,
    publish_every: u64,
    pace_us: u64,
    repeats: usize,
    host_threads: usize,
    /// Best-of-repeats ingest throughput with no server attached.
    ingest_off_eps: f64,
    /// Best-of-repeats ingest throughput while serving N clients.
    ingest_on_eps: f64,
    /// `(off - on) / off`, in percent; negative means serving measured
    /// faster (noise).
    regression_pct: f64,
    /// Snapshot publications during the best serving run.
    epochs_published: u64,
    queries: QueryStats,
    /// Warn-only SLO verdicts over the best run's server-side latency
    /// histograms (breaches never fail the bench).
    slo: Vec<SloVerdict>,
}

/// The same skewed mix the shard harness uses: hot ids + uniform tail.
fn stream(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.random_range(0..5u32) == 0 {
                rng.random_range(0..16u32) as f32
            } else {
                rng.random_range(0..65_536u32) as f32
            }
        })
        .collect()
}

#[derive(Clone, Copy)]
struct Queries {
    quantile: QueryId,
    frequency: QueryId,
    sliding: QueryId,
}

/// Builds the three-query engine every phase uses.
fn build_engine(n: u64, shards: usize, publish_every: u64) -> (StreamEngine, Queries) {
    let mut eng = StreamEngine::new(Engine::ParallelHost)
        .with_n_hint(n)
        .with_shards(shards)
        .with_publish_every(publish_every);
    let quantile = eng.register_quantile(0.01);
    let frequency = eng.register_frequency(0.001);
    let sliding = eng.register_sliding_quantile(0.05, 1 << 14);
    (
        eng,
        Queries {
            quantile,
            frequency,
            sliding,
        },
    )
}

/// Phase A: ingest with no server attached (no registry, so the
/// publication check in push() is a single untaken branch).
fn ingest_off(data: &[f32], shards: usize, publish_every: u64, repeats: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let (mut eng, _ids) = build_engine(data.len() as u64, shards, publish_every);
        let start = Instant::now();
        for &v in data {
            eng.push(v);
        }
        eng.flush();
        best = best.min(start.elapsed().as_secs_f64());
    }
    data.len() as f64 / best
}

/// One paced client: cycles the query kinds until stopped, tallying every
/// structured reply. The pace sleep models think time and keeps the load
/// generator from starving a single-core writer.
fn client_loop(client: &Client, ids: Queries, stop: &AtomicBool, pace: Duration) -> ClientTally {
    let mut tally = ClientTally::default();
    let mut turn = 0u64;
    while !stop.load(Ordering::Acquire) {
        turn = turn.wrapping_add(1);
        let request = match turn % 3 {
            0 => Request::Quantile {
                query: ids.quantile.index(),
                phi: 0.5,
            },
            1 => Request::HeavyHitters {
                query: ids.frequency.index(),
                support: 0.01,
            },
            _ => Request::SlidingQuantile {
                query: ids.sliding.index(),
                phi: 0.9,
            },
        };
        let start = Instant::now();
        match client.call(request) {
            Reply::Answer { .. } => {
                tally.latencies_ns.push(start.elapsed().as_nanos() as u64);
                tally.answered += 1;
            }
            Reply::Overloaded { .. } => tally.overloaded += 1,
            Reply::Expired => tally.expired += 1,
            Reply::NotReady => tally.not_ready += 1,
            Reply::BadQuery(msg) => panic!("load generator sent a bad query: {msg}"),
        }
        if !pace.is_zero() {
            thread::sleep(pace);
        }
    }
    tally
}

struct ServingRun {
    ingest_eps: f64,
    epochs: u64,
    tallies: Vec<ClientTally>,
    serving_secs: f64,
    submitted: u64,
    bad_query: u64,
    /// The server-side recorder, kept so the SLO gate can read the
    /// `serve_latency{kind=...}` histograms of the winning run.
    recorder: Recorder,
}

/// Phase B: ingest while N clients hammer the frontend, then prove
/// byte-identity (served vs direct) on the final snapshot and balance the
/// reply accounting.
fn ingest_on(
    data: &[f32],
    shards: usize,
    publish_every: u64,
    clients: usize,
    workers: usize,
    pace: Duration,
) -> ServingRun {
    let (mut eng, ids) = build_engine(data.len() as u64, shards, publish_every);
    let registry = eng.serve();
    let recorder = Recorder::enabled();
    let server = QueryServer::with_recorder(
        Arc::clone(&registry),
        ServeConfig {
            workers,
            queue_capacity: 256,
            default_deadline: Duration::from_secs(5),
            ..ServeConfig::default()
        },
        recorder.clone(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let client = server.client();
            let stop = Arc::clone(&stop);
            thread::spawn(move || client_loop(&client, ids, &stop, pace))
        })
        .collect();

    let start = Instant::now();
    for &v in data {
        eng.push(v);
    }
    let ingest_secs = start.elapsed().as_secs_f64();

    stop.store(true, Ordering::Release);
    let tallies: Vec<ClientTally> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let serving_secs = start.elapsed().as_secs_f64();

    // Seal the tail, publish, and prove byte-identity on the final
    // snapshot: the served reply must equal the direct engine query over
    // the same sealed windows.
    eng.flush();
    eng.publish_now();
    let probe = server.client();
    let direct = QueryAnswer::Quantile(eng.quantile(ids.quantile, 0.5));
    match probe.call(Request::Quantile {
        query: ids.quantile.index(),
        phi: 0.5,
    }) {
        Reply::Answer { answer, epoch } => {
            assert_eq!(epoch, registry.epoch(), "probe answered the tail epoch");
            assert_eq!(
                answer, direct,
                "served answer diverged from the direct engine query"
            );
        }
        other => panic!("byte-identity probe got {other:?}"),
    }

    let stats = server.stats();
    drop(server);
    assert_eq!(
        stats.lost(),
        0,
        "requests lost without a structured reply: {stats:?}"
    );
    ServingRun {
        ingest_eps: data.len() as f64 / ingest_secs,
        epochs: registry.epoch(),
        tallies,
        serving_secs,
        submitted: stats.submitted,
        bad_query: stats.bad_query,
        recorder,
    }
}

/// Client-observed latency percentile via the same log2-bucket estimator
/// the exporter publishes (`Log2Histogram::approx_quantile`), so bench
/// numbers and scraped `_p50`/`_p99` series agree on methodology.
fn percentile_us(latencies_ns: &[u64], q: f64) -> f64 {
    let mut hist = Log2Histogram::default();
    for &ns in latencies_ns {
        hist.observe(ns);
    }
    hist.approx_quantile(q) as f64 / 1_000.0
}

fn main() {
    let args = Args::parse();
    let elements: usize = args.get_num("elements", 1 << 20);
    let shards: usize = args.get_num("shards", 2);
    let clients: usize = args.get_num("clients", 4);
    let workers: usize = args.get_num("workers", 2);
    let publish_every: u64 = args.get_num("publish-every", 4);
    let pace_us: u64 = args.get_num("pace-us", 1_000);
    let repeats: usize = args.get_num("repeats", 2);
    let max_regression: Option<f64> = args.get("max-regression").map(|s| {
        s.parse()
            .expect("--max-regression must be a percentage number")
    });
    let out = args
        .get("out")
        .unwrap_or("results/BENCH_serve.json")
        .to_string();

    let data = stream(elements, 42);
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let pace = Duration::from_micros(pace_us);

    println!(
        "# serve benchmark: {elements} elements, {shards} shard(s), {clients} client(s), \
         {workers} worker(s), publish every {publish_every} window(s), {threads} host thread(s)\n"
    );

    let off_eps = ingest_off(&data, shards, publish_every, repeats);
    println!("server off: {off_eps:>12.0} elem/s ingest");

    let mut best: Option<ServingRun> = None;
    for _ in 0..repeats.max(1) {
        let run = ingest_on(&data, shards, publish_every, clients, workers, pace);
        if best.as_ref().is_none_or(|b| run.ingest_eps > b.ingest_eps) {
            best = Some(run);
        }
    }
    let run = best.expect("at least one repeat");
    let regression_pct = (off_eps - run.ingest_eps) / off_eps * 100.0;
    println!(
        "server on:  {:>12.0} elem/s ingest ({:+.2}% vs off), {} epochs published",
        run.ingest_eps, regression_pct, run.epochs
    );

    let latencies: Vec<u64> = run
        .tallies
        .iter()
        .flat_map(|t| t.latencies_ns.iter().copied())
        .collect();
    let answered: u64 = run.tallies.iter().map(|t| t.answered).sum();
    let queries = QueryStats {
        submitted: run.submitted,
        answered,
        overloaded: run.tallies.iter().map(|t| t.overloaded).sum(),
        expired: run.tallies.iter().map(|t| t.expired).sum(),
        not_ready: run.tallies.iter().map(|t| t.not_ready).sum(),
        bad_query: run.bad_query,
        lost: 0,
        qps: answered as f64 / run.serving_secs,
        p50_us: percentile_us(&latencies, 0.50),
        p99_us: percentile_us(&latencies, 0.99),
    };
    println!(
        "queries:    {} answered ({:.0}/s), p50 {:.1}µs p99 {:.1}µs, {} shed, 0 lost",
        queries.answered, queries.qps, queries.p50_us, queries.p99_us, queries.overloaded
    );

    if let Some(limit) = max_regression {
        assert!(
            regression_pct <= limit,
            "ingest regression {regression_pct:.2}% exceeds --max-regression {limit}%"
        );
    }

    // Warn-only SLO gate over the winning run's *server-side* latency
    // histograms: breaches annotate CI logs but never fail the bench —
    // shared runners make tail latency a signal, not a contract.
    let specs = [
        SloSpec {
            name: "serve_quantile_p99",
            metric: "serve_latency",
            label: Some(("kind", "quantile")),
            p50_ns: None,
            p99_ns: 50_000_000,
        },
        SloSpec {
            name: "serve_frequency_p99",
            metric: "serve_latency",
            label: Some(("kind", "frequency")),
            p50_ns: None,
            p99_ns: 50_000_000,
        },
        SloSpec {
            name: "serve_sliding_p99",
            metric: "serve_latency",
            label: Some(("kind", "sliding_quantile")),
            p50_ns: None,
            p99_ns: 50_000_000,
        },
    ];
    let mut slo = Vec::new();
    for outcome in run.recorder.check_slos(&specs) {
        if outcome.p99_breached {
            println!(
                "::warning::SLO {} breached: p99 {:.1}ms over bound {:.1}ms",
                outcome.name,
                outcome.observed_p99_ns as f64 / 1e6,
                50_000_000f64 / 1e6
            );
        }
        slo.push(SloVerdict {
            slo: outcome.name.to_string(),
            quantile: 0.99,
            observed_ns: outcome.observed_p99_ns,
            bound_ns: 50_000_000,
            breached: outcome.p99_breached,
        });
    }

    let report = Report {
        bench: "serve".to_string(),
        engine: "ParallelHost".to_string(),
        elements: elements as u64,
        shards,
        clients,
        workers,
        publish_every,
        pace_us,
        repeats,
        host_threads: threads,
        ingest_off_eps: off_eps,
        ingest_on_eps: run.ingest_eps,
        regression_pct,
        epochs_published: run.epochs,
        queries,
        slo,
    };
    let payload = serde_json::to_string(&report).expect("report serializes");
    gsm_bench::write_result(
        &out,
        &gsm_bench::envelope_json("gsm-bench/bench_serve", &payload),
    );
    println!("\nwrote {out}");
}
