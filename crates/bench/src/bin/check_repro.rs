//! Self-checking reproduction: re-runs a scaled-down version of every
//! experiment and *asserts* the paper's qualitative claims, exiting
//! non-zero on any violation. This is the CI face of `EXPERIMENTS.md` —
//! the full harnesses print numbers for humans; this binary enforces the
//! shapes machines care about.
//!
//! ```text
//! cargo run --release -p gsm-bench --bin check_repro
//! ```

use gsm_core::{Engine, FrequencyEstimator, QuantileEstimator};
use gsm_sketch::exact::ExactStats;
use gsm_sort::{SortEngine, Sorter};
use gsm_stream::UniformGen;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Check {
    name: &'static str,
    passed: bool,
    detail: String,
}

fn main() {
    let mut checks: Vec<Check> = Vec::new();
    let mut check = |name: &'static str, passed: bool, detail: String| {
        println!(
            "[{}] {name}: {detail}",
            if passed { "PASS" } else { "FAIL" }
        );
        checks.push(Check {
            name,
            passed,
            detail,
        });
    };

    // ---- Figure 3 claims -------------------------------------------------
    let n = 1 << 20;
    let mut rng = StdRng::seed_from_u64(1);
    let data: Vec<f32> = (0..n).map(|_| rng.random_range(0.0..1.0e6)).collect();
    let pbsn = Sorter::new(SortEngine::GpuPbsn)
        .sort(&data)
        .total_time
        .as_secs();
    let bitonic = Sorter::new(SortEngine::GpuBitonic)
        .sort(&data)
        .total_time
        .as_secs();
    let intel = Sorter::new(SortEngine::CpuQuicksort)
        .sort(&data)
        .total_time
        .as_secs();
    let qsort = Sorter::new(SortEngine::CpuQsort)
        .sort(&data)
        .total_time
        .as_secs();

    check(
        "fig3: PBSN ~10x faster than prior GPU bitonic",
        bitonic / pbsn > 8.0,
        format!("ratio {:.1}", bitonic / pbsn),
    );
    check(
        "fig3: PBSN comparable to Intel quicksort at 1M",
        (0.5..2.0).contains(&(pbsn / intel)),
        format!("ratio {:.2}", pbsn / intel),
    );
    check(
        "fig3: PBSN outperforms standard qsort at 1M",
        pbsn < qsort,
        format!("{:.1} ms vs {:.1} ms", pbsn * 1e3, qsort * 1e3),
    );

    let small: Vec<f32> = data[..16 << 10].to_vec();
    let pbsn_small = Sorter::new(SortEngine::GpuPbsn)
        .sort(&small)
        .total_time
        .as_secs();
    let intel_small = Sorter::new(SortEngine::CpuQuicksort)
        .sort(&small)
        .total_time
        .as_secs();
    check(
        "fig3/§4.5: GPU ~3x slower below 16K (setup overhead)",
        (1.5..5.0).contains(&(pbsn_small / intel_small)),
        format!("ratio {:.2}", pbsn_small / intel_small),
    );

    // ---- Figure 4 claims -------------------------------------------------
    let report = Sorter::new(SortEngine::GpuPbsn).sort(&data);
    let gs = report.gpu_stats.as_ref().expect("gpu engine");
    check(
        "fig4: transfer far below sort time",
        report.transfer_time.as_secs() < 0.25 * report.gpu_time.as_secs(),
        format!(
            "transfer {:.1} ms vs compute {:.1} ms",
            report.transfer_time.as_millis(),
            report.gpu_time.as_millis()
        ),
    );
    let cycles_per_blend = report.gpu_time.as_secs() * 400e6 * 16.0 / gs.blend_ops as f64;
    check(
        "§4.5: effective 6-7 cycles per blend",
        (6.0..7.5).contains(&cycles_per_blend),
        format!("{cycles_per_blend:.2} cycles"),
    );

    // ---- Figure 5/7 claims -----------------------------------------------
    let stream: Vec<f32> = UniformGen::unit(42).take(1 << 20).collect();
    let freq_time = |eps: f64, engine: Engine| {
        let mut est = FrequencyEstimator::builder(eps).engine(engine).build();
        est.push_all(stream.iter().copied());
        est.flush();
        est.total_time().as_secs()
    };
    let fine = 1.0 / 65_536.0;
    let coarse = 1.0 / 1024.0;
    check(
        "fig5: GPU wins at large windows (2^-16)",
        freq_time(fine, Engine::GpuSim) < freq_time(fine, Engine::CpuSim),
        "GPU < CPU".into(),
    );
    check(
        "fig5: CPU wins at small windows (2^-10)",
        freq_time(coarse, Engine::GpuSim) > freq_time(coarse, Engine::CpuSim),
        "GPU > CPU".into(),
    );

    // ---- Figure 6 / §3.2 claims -------------------------------------------
    let mut est = FrequencyEstimator::builder(1.0 / 8192.0)
        .engine(Engine::GpuSim)
        .build();
    est.push_all(stream.iter().copied());
    est.flush();
    let b = est.breakdown();
    check(
        "fig6: sorting dominates (80-95%)",
        (0.75..0.99).contains(&b.sort_fraction()),
        format!("{:.1}%", 100.0 * b.sort_fraction()),
    );

    // ---- Accuracy guarantees ----------------------------------------------
    let eps = 0.005;
    let oracle = ExactStats::new(&stream);
    let mut q = QuantileEstimator::builder(eps)
        .engine(Engine::GpuSim)
        .n_hint(stream.len() as u64)
        .build();
    q.push_all(stream.iter().copied());
    let mut worst: f64 = 0.0;
    for phi in [0.05, 0.25, 0.5, 0.75, 0.95] {
        worst = worst.max(oracle.quantile_rank_error(phi, q.query(phi)));
    }
    check(
        "guarantee: quantile rank error <= eps",
        worst <= eps,
        format!("worst {worst:.6} vs eps {eps}"),
    );

    // ---- Verdict -----------------------------------------------------------
    let failures: Vec<&Check> = checks.iter().filter(|c| !c.passed).collect();
    println!(
        "\n{} checks, {} failed — reproduction {}",
        checks.len(),
        failures.len(),
        if failures.is_empty() {
            "HOLDS"
        } else {
            "BROKEN"
        }
    );
    for f in &failures {
        eprintln!("FAILED: {} ({})", f.name, f.detail);
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
