//! End-to-end exercises of the telemetry plane: the admin endpoint
//! answering with *live* engine state, trace ids surviving the full
//! TCP → queue → worker → snapshot path, and the flight recorder turning
//! panics and audit violations into postmortem artifacts.
//!
//! Everything here talks to real sockets on ephemeral ports and parses
//! the scraped payloads with the same serde shim CI tooling uses, so a
//! drift in the exposition formats fails here before any dashboard
//! notices.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use gsm::core::Engine;
use gsm::dsms::StreamEngine;
use gsm::obs::{EngineEvent, Recorder, SloSpec, TraceCtx};
use gsm::serve::{AdminServer, AdminSources, QueryServer, Reply, Request, ServeConfig, TcpFront};
use gsm::verify::{record_violations, verify_family, Family, StreamSpec, VerifyConfig};
use serde::{json, obj_get, Value};

/// Minimal HTTP/1.0 GET, returning (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect admin endpoint");
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    (
        head.lines().next().unwrap_or("").to_string(),
        body.to_string(),
    )
}

/// An ingesting engine wired for serving: two shards (so per-shard series
/// exist), a shared recorder, and a published first snapshot.
fn serving_stack(rec: &Recorder) -> (StreamEngine, usize, QueryServer) {
    let mut eng = StreamEngine::new(Engine::Host)
        .with_n_hint(20_000)
        .with_shards(2)
        .with_publish_every(4)
        .with_recorder(rec.clone());
    let q = eng.register_quantile(0.02);
    let _f = eng.register_frequency(0.005);
    let registry = eng.serve();
    for i in 0..10_000u32 {
        eng.push((i % 4096) as f32);
    }
    eng.flush();
    eng.publish_now();
    let server = QueryServer::with_recorder(registry, ServeConfig::default(), rec.clone());
    (eng, q.index(), server)
}

fn number_field(v: &Value, key: &str) -> f64 {
    match obj_get(v, key).unwrap_or_else(|_| panic!("status field `{key}` missing")) {
        Value::Num(lexeme) => lexeme.parse().expect("numeric field"),
        other => panic!("field `{key}` is not a number: {other:?}"),
    }
}

#[test]
fn admin_endpoint_reports_live_engine_state() {
    let rec = Recorder::enabled();
    let (mut eng, q, server) = serving_stack(&rec);
    let admin = AdminServer::bind(
        "127.0.0.1:0",
        AdminSources {
            recorder: rec.clone(),
            registry: Some(Arc::clone(server.registry())),
            client: Some(server.client()),
            shards: 2,
            slos: vec![SloSpec {
                name: "serve_quantile_p99",
                metric: "serve_latency",
                label: Some(("kind", "quantile")),
                p50_ns: None,
                p99_ns: 50_000_000,
            }],
        },
    )
    .expect("bind admin endpoint");
    let addr = admin.local_addr();

    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.0 200 OK");
    assert_eq!(body, "ok\n");

    // The status document is valid JSON and reflects the live registry.
    let (_, before) = http_get(addr, "/status");
    let doc = json::parse(&before).expect("/status parses as JSON");
    let epoch_before = number_field(&doc, "epoch");
    assert!(epoch_before >= 1.0, "serve() publishes an initial snapshot");
    assert_eq!(number_field(&doc, "shards"), 2.0);

    // Publishing advances the epoch the endpoint reports — live, not a
    // snapshot taken at bind time.
    for i in 0..5_000u32 {
        eng.push(i as f32);
    }
    eng.flush();
    eng.publish_now();
    // Serving a query moves the queue gauges (every admission transits
    // depth 1, so the highwater is deterministically nonzero).
    let reply = server
        .client()
        .call(Request::Quantile { query: q, phi: 0.5 });
    assert!(matches!(reply, Reply::Answer { .. }));

    let (_, after) = http_get(addr, "/status");
    let doc = json::parse(&after).expect("/status parses after publish");
    assert!(
        number_field(&doc, "epoch") > epoch_before,
        "epoch must advance across publishes: {after}"
    );
    let queue = obj_get(&doc, "queue_highwater").expect("queue_highwater present");
    assert!(matches!(queue, Value::Num(n) if n.parse::<f64>().unwrap() >= 1.0));

    // The scrape carries the sharded ingest series, the histogram summary
    // gauges, and the always-on ring-health block.
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.0 200 OK");
    assert!(metrics.contains("shard=\"1\""), "per-shard series exported");
    assert!(metrics.contains("_seconds_p99"));
    assert!(metrics.contains("gsm_obs_flight_ring_events"));
    // Every sample line is `name{labels} value` with a parseable value.
    for line in metrics
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (name, value) = line.rsplit_once(' ').expect("sample line shape");
        assert!(name.starts_with("gsm_"), "unprefixed series: {line}");
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("bad sample value: {line}"));
    }
}

#[test]
fn trace_ids_round_trip_tcp_and_link_spans_in_chrome_trace() {
    let rec = Recorder::enabled();
    let (_eng, q, server) = serving_stack(&rec);
    let front = TcpFront::bind(server.client(), "127.0.0.1:0").expect("bind front");

    let mut stream = TcpStream::connect(front.local_addr()).expect("connect front");
    writeln!(stream, "quantile {q} 0.5 trace=cafef00d").expect("send query");
    stream.flush().expect("flush");
    let mut reply = String::new();
    BufReader::new(&stream)
        .read_line(&mut reply)
        .expect("read reply");
    assert!(
        reply.contains(" trace=00000000cafef00d"),
        "reply must echo the caller's trace id: {reply}"
    );

    // The same id links the request's span chain in the trace export:
    // admit → exec → query, plus explicit flow events.
    drop(front);
    drop(server);
    let trace = rec.chrome_trace_json();
    assert!(trace.contains("\"trace\":\"00000000cafef00d\""));
    for name in ["serve_admit", "serve_exec", "serve_query"] {
        assert!(
            trace.contains(&format!("\"name\":\"{name}\"")),
            "{name} span missing"
        );
    }
    assert!(
        trace.contains("\"ph\":\"s\"") && trace.contains("\"ph\":\"f\""),
        "flow start/finish events emitted"
    );
    assert!(trace.contains("\"id\":\"00000000cafef00d\""));
}

#[test]
fn worker_panic_leaves_a_postmortem_naming_the_event() {
    let rec = Recorder::enabled();
    let mut eng = StreamEngine::new(Engine::Host)
        .with_n_hint(4_096)
        .with_recorder(rec.clone());
    let f = eng.register_frequency(0.005);
    let registry = eng.serve();
    for i in 0..4_096u32 {
        eng.push((i % 64) as f32);
    }
    eng.flush();
    eng.publish_now();

    let path = std::env::temp_dir().join(format!(
        "gsm-telemetry-panic-{}-{:x}.json",
        std::process::id(),
        TraceCtx::fresh().trace_id
    ));
    let server = QueryServer::with_recorder(
        registry,
        ServeConfig {
            postmortem_path: Some(path.clone()),
            ..ServeConfig::default()
        },
        rec.clone(),
    );
    // support = 0 panics inside the summary; the worker isolates it to a
    // BadQuery reply and dumps the flight recorder.
    let reply = server.client().call(Request::HeavyHitters {
        query: f.index(),
        support: 0.0,
    });
    assert!(matches!(reply, Reply::BadQuery(_)));
    drop(server);

    let doc = std::fs::read_to_string(&path).expect("postmortem written on panic");
    assert!(doc.starts_with("{\"schema\":1,\"created_by\":\"gsm-obs/flight-recorder\""));
    assert!(
        doc.contains("\"kind\":\"worker_panic\""),
        "triggering event present"
    );
    json::parse(&doc).expect("postmortem is valid JSON");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn verify_violation_leaves_a_postmortem_naming_the_check() {
    let cfg = VerifyConfig {
        engines: vec![Engine::Host],
        ..VerifyConfig::default()
    };
    let spec = StreamSpec {
        family: Family::ZipfSkew,
        seed: 11,
        n: 4_096,
        window: 1_024,
    };
    let mut outcome = verify_family(&spec, &cfg);
    assert!(
        outcome.passed(),
        "baseline must pass: {:?}",
        outcome.failures()
    );
    // Forge a cross-backend disagreement — the cheapest way to make the
    // gate fire without breaking a real estimator.
    outcome.cross_backend_agree = false;

    let rec = Recorder::enabled();
    assert_eq!(record_violations(&rec, &outcome), 1);
    assert!(rec
        .flight_events()
        .iter()
        .any(|e| matches!(e.event, EngineEvent::AuditViolation { .. })));

    let path = std::env::temp_dir().join(format!(
        "gsm-telemetry-verify-{}-{:x}.json",
        std::process::id(),
        TraceCtx::fresh().trace_id
    ));
    rec.dump_postmortem(&path, "forced verify violation")
        .expect("dump postmortem");
    let doc = std::fs::read_to_string(&path).expect("postmortem written");
    assert!(doc.contains("\"kind\":\"audit_violation\""));
    assert!(doc.contains("engines disagree"));
    json::parse(&doc).expect("postmortem is valid JSON");
    let _ = std::fs::remove_file(&path);
}
