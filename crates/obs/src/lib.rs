#![warn(missing_docs)]

//! # gsm-obs — zero-dependency tracing and metrics for the gsm pipeline
//!
//! The paper's whole argument is a cost breakdown — where does the time go
//! between sorting, transfer, merging, and compression? — yet the pipeline
//! only reported end-of-run aggregates. This crate is the missing
//! instrumentation layer: a [`Recorder`] handle that every pipeline layer
//! (the window pipeline, the sort worker pool, the DSMS engine) accepts and
//! threads through, with three kinds of signal:
//!
//! * **Spans** ([`Recorder::span`]) — timed phases logged to a bounded ring
//!   buffer and aggregated into per-phase latency histograms. Exportable as
//!   Chrome `trace_event` JSON (loadable in `about:tracing` / Perfetto).
//! * **Counters / gauges** ([`Recorder::count`], [`Recorder::gauge_add`]) —
//!   monotone totals and point-in-time values with high-water marks.
//! * **Histograms** ([`Recorder::observe_ns`]) — fixed log2-bucket latency
//!   distributions ([`Log2Histogram`]), allocation-free per observation.
//!
//! ## Lifecycle and cost
//!
//! A recorder is **disabled by default** ([`Recorder::disabled`], also
//! `Default`): every operation is one branch on an `Option` and returns
//! immediately — no clock reads, no locks, no allocation — so instrumented
//! code paths cost nothing measurable when observability is off, and the
//! engines' bit-identical guarantees are untouched (instrumentation never
//! changes data, only records it). [`Recorder::enabled`] turns the same
//! handle into a live collector; handles are `Clone + Send + Sync` and all
//! clones share one registry, so a single recorder can watch the ingest
//! thread, the worker pool, and the DSMS engine at once.
//!
//! ```
//! use gsm_obs::Recorder;
//!
//! let rec = Recorder::enabled();
//! {
//!     let _span = rec.span("sort_window");
//!     rec.count("windows", 1);
//! }
//! assert_eq!(rec.counter("windows"), 1);
//! assert_eq!(rec.histogram("sort_window").unwrap().count, 1);
//! let prom = rec.prometheus_text();
//! assert!(prom.contains("gsm_windows_total 1"));
//! let trace = rec.chrome_trace_json();
//! assert!(trace.contains("\"name\":\"sort_window\""));
//! ```

mod export;
mod flight;
mod metrics;
mod slo;

pub use flight::{EngineEvent, FlightEvent, FlightRing, DEFAULT_EVENT_CAPACITY};
pub use metrics::{Gauge, Log2Histogram, SpanEvent, SpanRing, TraceCtx, HIST_BUCKETS};
pub use slo::{SloOutcome, SloSpec};

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A metric's identity: name plus an optional `(key, value)` label.
type Key = (&'static str, Option<(&'static str, String)>);

/// Default span-ring capacity (events retained before eviction).
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// The shared registry behind an enabled recorder.
struct State {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, Gauge>,
    hists: BTreeMap<Key, Log2Histogram>,
    spans: SpanRing,
    events: flight::FlightRing,
}

struct Inner {
    epoch: Instant,
    state: Mutex<State>,
}

/// A cloneable, thread-safe handle to a metrics registry and span log.
///
/// Disabled by default; see the crate docs for the lifecycle. All clones of
/// an enabled recorder write to the same registry.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
    /// A label stamped onto every otherwise-unlabeled metric written (or
    /// read) through this handle; see [`Recorder::scoped`].
    scope: Option<(&'static str, String)>,
}

impl Recorder {
    /// A no-op recorder: every operation is a branch and a return.
    pub fn disabled() -> Self {
        Recorder {
            inner: None,
            scope: None,
        }
    }

    /// A live recorder with the default span-ring capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A live recorder retaining at most `ring_capacity` span events.
    pub fn with_capacity(ring_capacity: usize) -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State {
                    counters: BTreeMap::new(),
                    gauges: BTreeMap::new(),
                    hists: BTreeMap::new(),
                    spans: SpanRing::new(ring_capacity),
                    events: flight::FlightRing::new(DEFAULT_EVENT_CAPACITY),
                }),
            })),
            scope: None,
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle onto the same registry that stamps `(key, value)` onto
    /// every otherwise-unlabeled counter, gauge, histogram, and span
    /// written — or read — through it. This is how a sharded pipeline gets
    /// a per-shard dimension without threading labels through every call
    /// site: shard `i` is handed `rec.scoped("shard", &i.to_string())` and
    /// keeps emitting the same metric names.
    ///
    /// Explicitly-labeled calls (e.g. [`Recorder::count_labeled`]) keep
    /// their own label; the scope never overrides one. Aggregation across
    /// scopes stays available on the unscoped handle via
    /// [`Recorder::counter_total`].
    pub fn scoped(&self, key: &'static str, value: &str) -> Recorder {
        Recorder {
            inner: self.inner.clone(),
            scope: Some((key, value.to_string())),
        }
    }

    /// This handle's scope label, if any.
    pub fn scope(&self) -> Option<(&'static str, &str)> {
        self.scope.as_ref().map(|(k, v)| (*k, v.as_str()))
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut State) -> R) -> Option<R> {
        let inner = self.inner.as_ref()?;
        let mut state = inner.state.lock().expect("obs registry poisoned");
        Some(f(&mut state))
    }

    // ------------------------------------------------------------------
    // Counters
    // ------------------------------------------------------------------

    /// Adds `delta` to the named monotone counter (under this handle's
    /// scope label, if any).
    pub fn count(&self, name: &'static str, delta: u64) {
        if self.inner.is_none() {
            return;
        }
        self.with_state(|s| {
            *s.counters.entry((name, self.scope.clone())).or_insert(0) += delta;
        });
    }

    /// Adds `delta` to the named counter under a `(key, value)` label.
    pub fn count_labeled(&self, name: &'static str, label: (&'static str, &str), delta: u64) {
        if self.inner.is_none() {
            return;
        }
        self.with_state(|s| {
            *s.counters
                .entry((name, Some((label.0, label.1.to_string()))))
                .or_insert(0) += delta;
        });
    }

    /// The counter's value under this handle's scope (0 if never written).
    pub fn counter(&self, name: &'static str) -> u64 {
        self.with_state(|s| {
            s.counters
                .get(&(name, self.scope.clone()))
                .copied()
                .unwrap_or(0)
        })
        .unwrap_or(0)
    }

    /// A labeled counter's value (0 if never written).
    pub fn counter_labeled(&self, name: &'static str, label: (&'static str, &str)) -> u64 {
        self.with_state(|s| {
            s.counters
                .get(&(name, Some((label.0, label.1.to_string()))))
                .copied()
                .unwrap_or(0)
        })
        .unwrap_or(0)
    }

    /// The sum of the named counter across all labels.
    pub fn counter_total(&self, name: &'static str) -> u64 {
        self.with_state(|s| {
            s.counters
                .iter()
                .filter(|((n, _), _)| *n == name)
                .map(|(_, v)| *v)
                .sum()
        })
        .unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Gauges
    // ------------------------------------------------------------------

    /// Adds `delta` (possibly negative) to the named gauge (under this
    /// handle's scope label, if any), maintaining its high-water mark.
    pub fn gauge_add(&self, name: &'static str, delta: i64) {
        if self.inner.is_none() {
            return;
        }
        self.with_state(|s| {
            s.gauges
                .entry((name, self.scope.clone()))
                .or_default()
                .add(delta);
        });
    }

    /// Overwrites the named gauge's current value (under this handle's
    /// scope label, if any).
    pub fn gauge_set(&self, name: &'static str, value: i64) {
        if self.inner.is_none() {
            return;
        }
        self.with_state(|s| {
            s.gauges
                .entry((name, self.scope.clone()))
                .or_default()
                .set(value);
        });
    }

    /// The named gauge under this handle's scope (current value +
    /// high-water mark), if ever written.
    pub fn gauge(&self, name: &'static str) -> Option<Gauge> {
        self.with_state(|s| s.gauges.get(&(name, self.scope.clone())).copied())
            .flatten()
    }

    /// A labeled gauge's snapshot, if ever written.
    pub fn gauge_labeled(&self, name: &'static str, label: (&'static str, &str)) -> Option<Gauge> {
        self.with_state(|s| {
            s.gauges
                .get(&(name, Some((label.0, label.1.to_string()))))
                .copied()
        })
        .flatten()
    }

    // ------------------------------------------------------------------
    // Histograms
    // ------------------------------------------------------------------

    /// Records one latency observation (nanoseconds) into the named log2
    /// histogram (under this handle's scope label, if any).
    pub fn observe_ns(&self, name: &'static str, ns: u64) {
        if self.inner.is_none() {
            return;
        }
        self.with_state(|s| {
            s.hists
                .entry((name, self.scope.clone()))
                .or_default()
                .observe(ns);
        });
    }

    /// Records one magnitude observation into the named log2 histogram.
    ///
    /// Histograms are unit-agnostic power-of-two buckets; this is the same
    /// primitive as [`Recorder::observe_ns`] under a name that does not
    /// imply nanoseconds — use it for sizes (e.g. ingest batch lengths in
    /// elements) where the log2 shape is exactly what's wanted.
    pub fn observe(&self, name: &'static str, value: u64) {
        self.observe_ns(name, value);
    }

    /// Records a labeled latency observation.
    pub fn observe_ns_labeled(&self, name: &'static str, label: (&'static str, &str), ns: u64) {
        if self.inner.is_none() {
            return;
        }
        self.with_state(|s| {
            s.hists
                .entry((name, Some((label.0, label.1.to_string()))))
                .or_default()
                .observe(ns);
        });
    }

    /// The histogram's snapshot under this handle's scope, if ever written.
    pub fn histogram(&self, name: &'static str) -> Option<Log2Histogram> {
        self.with_state(|s| s.hists.get(&(name, self.scope.clone())).cloned())
            .flatten()
    }

    /// A labeled histogram's snapshot, if ever written.
    pub fn histogram_labeled(
        &self,
        name: &'static str,
        label: (&'static str, &str),
    ) -> Option<Log2Histogram> {
        self.with_state(|s| {
            s.hists
                .get(&(name, Some((label.0, label.1.to_string()))))
                .cloned()
        })
        .flatten()
    }

    // ------------------------------------------------------------------
    // Spans
    // ------------------------------------------------------------------

    /// Starts a timed span (labeled with this handle's scope, if any); the
    /// span records itself when dropped (or via [`Span::finish`]). On a
    /// disabled recorder this reads no clock.
    pub fn span(&self, name: &'static str) -> Span {
        if self.inner.is_none() {
            return Span::inert(TraceCtx::NONE);
        }
        self.span_inner(name, self.scope.clone(), Instant::now(), None)
    }

    /// Starts a labeled timed span.
    pub fn span_labeled(&self, name: &'static str, label: (&'static str, &str)) -> Span {
        if self.inner.is_none() {
            return Span::inert(TraceCtx::NONE);
        }
        self.span_inner(
            name,
            Some((label.0, label.1.to_string())),
            Instant::now(),
            None,
        )
    }

    /// Builds a span that began at `started` (for phases whose start
    /// predates the decision to record them, e.g. ingest measured from the
    /// first element of a window). Dropping it records the true duration.
    pub fn span_from(&self, name: &'static str, started: Instant) -> Span {
        self.span_inner(name, self.scope.clone(), started, None)
    }

    /// Starts a span attributed to a request trace: the recorded
    /// [`SpanEvent`] carries `ctx` (trace id + causing span), and
    /// [`Span::child_ctx`] names this span as the parent for the next hop.
    /// With `ctx == TraceCtx::NONE` (or a disabled recorder) this degrades
    /// to an untraced span that still propagates `ctx` unchanged.
    pub fn span_traced(&self, name: &'static str, ctx: TraceCtx) -> Span {
        if self.inner.is_none() {
            return Span::inert(ctx);
        }
        let trace = if ctx.is_none() { None } else { Some(ctx) };
        self.span_inner(name, self.scope.clone(), Instant::now(), trace)
    }

    fn span_inner(
        &self,
        name: &'static str,
        label: Option<(&'static str, String)>,
        start: Instant,
        trace: Option<TraceCtx>,
    ) -> Span {
        let Some(inner) = self.inner.as_ref() else {
            return Span::inert(trace.unwrap_or(TraceCtx::NONE));
        };
        static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
        let span_id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        Span {
            live: Some(LiveSpan {
                inner: Arc::clone(inner),
                name,
                label,
                start,
                trace,
            }),
            span_id,
            ctx: trace.unwrap_or(TraceCtx::NONE),
        }
    }

    /// All span events currently retained in the ring, oldest first.
    pub fn spans(&self) -> Vec<SpanEvent> {
        self.with_state(|s| s.spans.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Span events evicted from the ring because it was full.
    pub fn dropped_spans(&self) -> u64 {
        self.with_state(|s| s.spans.dropped()).unwrap_or(0)
    }

    /// Span events currently retained in the ring (its occupancy).
    pub fn span_ring_len(&self) -> usize {
        self.with_state(|s| s.spans.len()).unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Flight recorder
    // ------------------------------------------------------------------

    /// Logs a structured engine event into the flight-recorder ring and
    /// bumps `flight_events{kind=...}`. One branch on a disabled recorder.
    pub fn record_event(&self, event: EngineEvent) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let at_ns = saturating_ns(inner.epoch.elapsed().as_nanos());
        let kind = event.kind();
        let mut state = inner.state.lock().expect("obs registry poisoned");
        *state
            .counters
            .entry(("flight_events", Some(("kind", kind.to_string()))))
            .or_insert(0) += 1;
        state.events.push(at_ns, thread_id(), event);
    }

    /// Flight-recorder events currently retained, oldest first.
    pub fn flight_events(&self) -> Vec<FlightEvent> {
        self.with_state(|s| s.events.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Flight-recorder events evicted because the ring was full.
    pub fn dropped_flight_events(&self) -> u64 {
        self.with_state(|s| s.events.dropped()).unwrap_or(0)
    }

    /// The postmortem payload: reason, dump time, and the retained flight
    /// events as one JSON object — *unversioned*, so callers with their own
    /// envelope writer (e.g. `gsm-bench::envelope_json`) can wrap it
    /// without key collisions. [`Recorder::dump_postmortem`] adds the
    /// version header itself.
    pub fn postmortem_json(&self, reason: &str) -> String {
        use std::fmt::Write as _;
        let (events, dropped, at_ns) = match self.inner.as_ref() {
            None => (Vec::new(), 0, 0),
            Some(inner) => {
                let at_ns = saturating_ns(inner.epoch.elapsed().as_nanos());
                let state = inner.state.lock().expect("obs registry poisoned");
                (
                    state.events.iter().cloned().collect::<Vec<_>>(),
                    state.events.dropped(),
                    at_ns,
                )
            }
        };
        let mut out = format!(
            "{{\"reason\":\"{}\",\"dumped_at_ns\":{at_ns},\"dropped_events\":{dropped},\
             \"events\":[",
            export::json_escape(reason)
        );
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", e.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Writes a versioned postmortem document
    /// (`{"schema":1,"created_by":"gsm-obs/flight-recorder",...}`) to
    /// `path`, creating parent directories as needed. Failure paths call
    /// this so crashes ship their last-N-events context.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and write failures.
    pub fn dump_postmortem(&self, path: impl AsRef<Path>, reason: &str) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let payload = self.postmortem_json(reason);
        let body = payload
            .strip_prefix('{')
            .expect("postmortem payload is an object");
        let doc = format!("{{\"schema\":1,\"created_by\":\"gsm-obs/flight-recorder\",{body}\n");
        std::fs::write(path, doc)
    }

    // ------------------------------------------------------------------
    // Export
    // ------------------------------------------------------------------

    /// Renders every metric in the Prometheus text exposition format.
    ///
    /// Counters become `gsm_<name>_total`, gauges `gsm_<name>` plus
    /// `gsm_<name>_highwater`, and histograms `gsm_<name>_seconds` with
    /// cumulative log2 `le` buckets.
    pub fn prometheus_text(&self) -> String {
        self.with_state(export::prometheus_text).unwrap_or_default()
    }

    /// Renders the span ring as Chrome `trace_event` JSON: an object whose
    /// `traceEvents` array holds one complete (`"ph":"X"`) event per span,
    /// loadable in `about:tracing` or Perfetto.
    pub fn chrome_trace_json(&self) -> String {
        self.with_state(export::chrome_trace_json)
            .unwrap_or_else(|| "{\"traceEvents\":[]}".to_string())
    }
}

struct LiveSpan {
    inner: Arc<Inner>,
    name: &'static str,
    label: Option<(&'static str, String)>,
    start: Instant,
    trace: Option<TraceCtx>,
}

/// A timed-phase guard returned by [`Recorder::span`].
///
/// Records its duration into the recorder's span ring and the matching
/// per-phase latency histogram when dropped. On a disabled recorder the
/// guard is inert (but still propagates its [`TraceCtx`], so trace ids
/// survive end-to-end whether or not anything records them).
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct Span {
    live: Option<LiveSpan>,
    span_id: u64,
    ctx: TraceCtx,
}

impl Span {
    fn inert(ctx: TraceCtx) -> Span {
        Span {
            live: None,
            span_id: 0,
            ctx,
        }
    }

    /// This span's process-unique id (0 when inert).
    pub fn id(&self) -> u64 {
        self.span_id
    }

    /// The context to hand the next hop: same trace, this span as parent.
    /// An inert or untraced span passes its input context through
    /// unchanged.
    pub fn child_ctx(&self) -> TraceCtx {
        if self.span_id != 0 && !self.ctx.is_none() {
            TraceCtx {
                trace_id: self.ctx.trace_id,
                parent: self.span_id,
            }
        } else {
            self.ctx
        }
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let dur_ns = saturating_ns(live.start.elapsed().as_nanos());
        let start_ns = saturating_ns(
            live.start
                .checked_duration_since(live.inner.epoch)
                .unwrap_or_default()
                .as_nanos(),
        );
        let event = SpanEvent {
            name: live.name,
            label: live.label,
            tid: thread_id(),
            start_ns,
            dur_ns,
            span_id: self.span_id,
            trace: live.trace,
        };
        let mut state = live.inner.state.lock().expect("obs registry poisoned");
        state
            .hists
            .entry((event.name, event.label.clone()))
            .or_default()
            .observe(dur_ns);
        state.spans.push(event);
    }
}

fn saturating_ns(ns: u128) -> u64 {
    u64::try_from(ns).unwrap_or(u64::MAX)
}

/// A small, stable integer id for the calling thread (used as the Chrome
/// trace `tid`). Ids are assigned in first-use order.
pub fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        rec.count("c", 5);
        rec.gauge_add("g", 3);
        rec.observe_ns("h", 100);
        let span = rec.span("s");
        span.finish();
        assert!(!rec.is_enabled());
        assert_eq!(rec.counter("c"), 0);
        assert!(rec.gauge("g").is_none());
        assert!(rec.histogram("h").is_none());
        assert!(rec.spans().is_empty());
        assert_eq!(rec.prometheus_text(), "");
        assert_eq!(rec.chrome_trace_json(), "{\"traceEvents\":[]}");
    }

    #[test]
    fn clones_share_one_registry() {
        let rec = Recorder::enabled();
        let other = rec.clone();
        rec.count("windows", 2);
        other.count("windows", 3);
        assert_eq!(rec.counter("windows"), 5);
        assert_eq!(other.counter("windows"), 5);
    }

    #[test]
    fn labeled_counters_are_independent() {
        let rec = Recorder::enabled();
        rec.count_labeled("tasks", ("worker", "0"), 2);
        rec.count_labeled("tasks", ("worker", "1"), 3);
        rec.count("tasks", 1);
        assert_eq!(rec.counter_labeled("tasks", ("worker", "0")), 2);
        assert_eq!(rec.counter_labeled("tasks", ("worker", "1")), 3);
        assert_eq!(rec.counter("tasks"), 1);
        assert_eq!(rec.counter_total("tasks"), 6);
    }

    #[test]
    fn spans_feed_ring_and_histogram() {
        let rec = Recorder::enabled();
        for _ in 0..3 {
            let _s = rec.span_labeled("phase", ("engine", "Host"));
        }
        let events = rec.spans();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.name == "phase"));
        let hist = rec
            .histogram_labeled("phase", ("engine", "Host"))
            .expect("histogram recorded");
        assert_eq!(hist.count, 3);
        // Span starts are monotone relative to the epoch.
        assert!(events.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    fn gauge_roundtrip() {
        let rec = Recorder::enabled();
        rec.gauge_add("depth", 4);
        rec.gauge_add("depth", -3);
        let g = rec.gauge("depth").unwrap();
        assert_eq!(g.current, 1);
        assert_eq!(g.highwater, 4);
        rec.gauge_set("depth", 9);
        assert_eq!(rec.gauge("depth").unwrap().highwater, 9);
    }

    #[test]
    fn thread_ids_are_stable_and_distinct() {
        let here = thread_id();
        assert_eq!(here, thread_id());
        let there = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(here, there);
    }

    #[test]
    fn scoped_handles_stamp_and_read_their_label() {
        let rec = Recorder::enabled();
        let s0 = rec.scoped("shard", "0");
        let s1 = rec.scoped("shard", "1");
        assert_eq!(s0.scope(), Some(("shard", "0")));

        s0.count("windows", 2);
        s1.count("windows", 3);
        rec.count("windows", 1);
        // Each handle reads its own slice; the unscoped handle aggregates.
        assert_eq!(s0.counter("windows"), 2);
        assert_eq!(s1.counter("windows"), 3);
        assert_eq!(rec.counter("windows"), 1);
        assert_eq!(rec.counter_labeled("windows", ("shard", "1")), 3);
        assert_eq!(rec.counter_total("windows"), 6);

        s0.gauge_set("queue_depth", 4);
        s1.gauge_set("queue_depth", 7);
        assert_eq!(s0.gauge("queue_depth").unwrap().current, 4);
        assert_eq!(
            rec.gauge_labeled("queue_depth", ("shard", "1"))
                .unwrap()
                .current,
            7
        );
        assert!(rec.gauge("queue_depth").is_none(), "no unscoped write");

        {
            let _sp = s1.span("sort");
        }
        assert_eq!(s1.histogram("sort").unwrap().count, 1);
        assert!(rec.histogram("sort").is_none());
        let events = rec.spans();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].label, Some(("shard", "1".to_string())));

        // Explicit labels win over the scope.
        s0.count_labeled("tasks", ("worker", "9"), 1);
        assert_eq!(rec.counter_labeled("tasks", ("worker", "9")), 1);
        assert_eq!(s0.counter_labeled("tasks", ("worker", "9")), 1);

        let prom = rec.prometheus_text();
        assert!(prom.contains("gsm_windows_total{shard=\"0\"} 2"));
        assert!(prom.contains("gsm_queue_depth{shard=\"1\"} 7"));
        assert!(prom.contains("gsm_queue_depth_highwater{shard=\"1\"} 7"));
    }

    #[test]
    fn recorder_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Recorder>();
    }

    #[test]
    fn traced_spans_chain_parents_and_survive_disablement() {
        let rec = Recorder::enabled();
        let ctx = TraceCtx::fresh();
        let (root_id, child_ctx) = {
            let root = rec.span_traced("admit", ctx);
            assert!(root.id() != 0);
            (root.id(), root.child_ctx())
        };
        assert_eq!(child_ctx.trace_id, ctx.trace_id);
        assert_eq!(child_ctx.parent, root_id);
        {
            let _leaf = rec.span_traced("exec", child_ctx);
        }
        let events = rec.spans();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].trace, Some(ctx));
        assert_eq!(events[1].trace, Some(child_ctx));
        assert!(events.iter().all(|e| e.span_id != 0));
        // Untraced spans carry no trace.
        {
            let _plain = rec.span("plain");
        }
        assert_eq!(rec.spans()[2].trace, None);

        // A disabled recorder still propagates the context unchanged.
        let off = Recorder::disabled();
        let sp = off.span_traced("admit", ctx);
        assert_eq!(sp.id(), 0);
        assert_eq!(sp.child_ctx(), ctx);
        sp.finish();
        assert!(off.spans().is_empty());
    }

    #[test]
    fn flight_recorder_retains_events_and_dumps_postmortems() {
        let rec = Recorder::enabled();
        rec.record_event(EngineEvent::Seal {
            window: 1024,
            shards: 2,
        });
        rec.record_event(EngineEvent::Publish {
            epoch: 1,
            windows_sealed: 4,
        });
        rec.record_event(EngineEvent::WorkerPanic {
            worker: "gsm-serve-0".to_string(),
            message: "boom".to_string(),
        });
        let events = rec.flight_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[0].event.kind(), "seal");
        assert_eq!(rec.dropped_flight_events(), 0);
        assert_eq!(rec.counter_labeled("flight_events", ("kind", "publish")), 1);
        assert!(rec
            .prometheus_text()
            .contains("gsm_flight_events_total{kind=\"seal\"} 1"));

        let payload = rec.postmortem_json("test \"reason\"");
        assert!(payload.starts_with("{\"reason\":\"test \\\"reason\\\"\""));
        assert!(payload.contains("\"kind\":\"worker_panic\""));
        assert!(payload.contains("\"dropped_events\":0"));

        let dir = std::env::temp_dir().join(format!("gsm-obs-test-{}", std::process::id()));
        let path = dir.join("nested").join("postmortem.json");
        rec.dump_postmortem(&path, "unit test").expect("dump");
        let doc = std::fs::read_to_string(&path).expect("read back");
        assert!(doc.starts_with("{\"schema\":1,\"created_by\":\"gsm-obs/flight-recorder\""));
        assert!(doc.contains("\"reason\":\"unit test\""));
        assert!(doc.contains("\"kind\":\"seal\""));
        let _ = std::fs::remove_dir_all(&dir);

        // Disabled: one branch, nothing retained, empty dump still valid.
        let off = Recorder::disabled();
        off.record_event(EngineEvent::Publish {
            epoch: 9,
            windows_sealed: 9,
        });
        assert!(off.flight_events().is_empty());
        assert_eq!(
            off.postmortem_json("r"),
            "{\"reason\":\"r\",\"dumped_at_ns\":0,\"dropped_events\":0,\"events\":[]}"
        );
    }
}
