//! **E11 (extension)** — DSMS load shedding: how much of an overloaded
//! stream each engine can keep (paper §1's motivating scenario).
//!
//! A stream engine with three registered continuous queries (quantiles,
//! heavy hitters, hierarchical heavy hitters) is driven at increasing
//! offered rates. Below capacity nothing is shed; above it the adaptive
//! shedder converges to `keep ≈ capacity / rate`. The GPU co-processor's
//! higher sorting throughput translates directly into a higher shed-free
//! rate — the paper's "hardware-accelerated solutions that can keep up with
//! the update rate".
//!
//! ```text
//! cargo run --release -p gsm-bench --bin dsms_load [-- --n 2097152 --csv]
//! ```

use gsm_bench::{human_n, Args, Table};
use gsm_core::{BitPrefixHierarchy, Engine};
use gsm_dsms::{run_at_rate, StreamEngine};
use gsm_stream::UniformGen;

fn make_engine(engine: Engine, n: usize) -> StreamEngine {
    let mut eng = StreamEngine::new(engine).with_n_hint(n as u64);
    let _ = eng.register_quantile(0.001);
    let _ = eng.register_frequency(1.0 / 16_384.0);
    let _ = eng.register_hhh(1.0 / 16_384.0, BitPrefixHierarchy::new(vec![4, 8]));
    eng
}

fn main() {
    let args = Args::parse();
    let csv = args.flag("csv");
    let n: usize = args.get_num("n", 2 << 20);
    let data: Vec<f32> = UniformGen::new(13, 0.0, 2047.0).take(n).collect();

    println!(
        "# E11: adaptive load shedding, 3 shared continuous queries, {} stream",
        human_n(n)
    );
    println!("# (rates in M elements/second of simulated device time)\n");

    // Measure each engine's capacity.
    let mut capacities = Vec::new();
    for engine in [Engine::GpuSim, Engine::CpuSim] {
        let mut probe = make_engine(engine, n);
        probe.push_all(data.iter().copied());
        probe.flush();
        capacities.push((engine, probe.service_rate()));
    }
    let mut cap_table = Table::new(["engine", "capacity M/s"]);
    for &(engine, c) in &capacities {
        cap_table.row([engine.label().to_string(), format!("{:.2}", c / 1e6)]);
    }
    cap_table.print(csv);

    println!("\n# offered-rate sweep (x = multiple of each engine's own capacity):\n");
    let mut table = Table::new([
        "engine",
        "offered x",
        "offered M/s",
        "shed %",
        "keep (ideal)",
        "backlog s",
    ]);
    for &(engine, capacity) in &capacities {
        for mult in [0.5f64, 1.0, 2.0, 4.0, 8.0] {
            let mut eng = make_engine(engine, n);
            let report = run_at_rate(&mut eng, data.iter().copied(), capacity * mult);
            table.row([
                engine.label().to_string(),
                format!("{mult}x"),
                format!("{:.2}", report.offered_rate / 1e6),
                format!("{:.1}", 100.0 * report.shed_fraction()),
                format!("{:.2} ({:.2})", report.keep_fraction, (1.0 / mult).min(1.0)),
                format!("{:.3}", report.lag_seconds.max(0.0)),
            ]);
        }
    }
    table.print(csv);
    println!("\n# below capacity: zero shedding. Above: keep converges to capacity/rate and the");
    println!("# backlog stays bounded. The GPU's higher capacity raises the shed-free ceiling.");
}
