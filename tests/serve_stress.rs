//! Concurrency stress for the serving frontend: readers across seals,
//! queries racing checkpoint/restore, deadline expiry under saturation,
//! and shutdown under fire.
//!
//! These tests prove *structural* properties — every request gets exactly
//! one structured reply, held snapshots stay valid across publications,
//! ingestion completes while readers hammer the registry — rather than
//! timing ratios, which are unreliable on shared single-core CI runners.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use gsm::core::Engine;
use gsm::dsms::StreamEngine;
use gsm::serve::{QueryServer, Reply, Request, ServeConfig};

fn structured(reply: &Reply) -> bool {
    matches!(
        reply,
        Reply::Answer { .. }
            | Reply::Overloaded { .. }
            | Reply::Expired
            | Reply::NotReady
            | Reply::BadQuery(_)
    )
}

/// Many reader threads issue queries continuously while the writer seals
/// hundreds of windows. Every reply must be structured, epochs must
/// advance, and after a drain the reply accounting must balance exactly.
#[test]
fn readers_hammer_across_seals_without_losing_requests() {
    let mut eng = StreamEngine::new(Engine::Host).with_n_hint(200_000);
    let q = eng.register_quantile(0.02);
    let f = eng.register_frequency(0.001);
    let registry = eng.serve();
    let server = QueryServer::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: 2,
            queue_capacity: 128,
            default_deadline: Duration::from_secs(10),
            ..ServeConfig::default()
        },
    );
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..4)
        .map(|i| {
            let client = server.client();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut calls = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let reply = if i % 2 == 0 {
                        client.call(Request::Quantile { query: 0, phi: 0.5 })
                    } else {
                        client.call(Request::HeavyHitters {
                            query: 1,
                            support: 0.01,
                        })
                    };
                    assert!(structured(&reply), "unstructured reply {reply:?}");
                    calls += 1;
                }
                calls
            })
        })
        .collect();

    // ~195 seals (window 1024) with publication on every seal.
    eng.push_all((0..200_000).map(|v| (v % 100) as f32));
    let writer_epoch = registry.epoch();
    assert!(writer_epoch > 100, "epochs advanced with seals");
    stop.store(true, Ordering::Release);
    let total_calls: u64 = readers.into_iter().map(|r| r.join().expect("reader")).sum();
    assert!(total_calls > 0, "readers made progress");

    // Drain and balance the books.
    let client = server.client();
    drop(server);
    let stats = client.stats();
    assert_eq!(stats.submitted, total_calls);
    assert_eq!(stats.lost(), 0, "no silent drops under load: {stats:?}");
    let _ = (q, f);
}

/// A reader that grabs a snapshot early keeps a stable view forever:
/// later publications never mutate or invalidate it, and holding it never
/// prevents the writer from sealing (this test would deadlock otherwise).
#[test]
fn held_snapshots_stay_stable_while_sealing_continues() {
    let mut eng = StreamEngine::new(Engine::Host).with_n_hint(100_000);
    let q = eng.register_quantile(0.02);
    let registry = eng.serve();
    eng.push_all((0..4096).map(|v| (v % 50) as f32));
    let held = registry.latest().expect("published");
    let held_epoch = held.epoch();
    let held_median = held.quantile(q.index(), 0.5).expect("sealed data");

    let stop = Arc::new(AtomicBool::new(false));
    let holders: Vec<_> = (0..4)
        .map(|_| {
            let snap = Arc::clone(&held);
            let stop = Arc::clone(&stop);
            let q = q.index();
            thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    assert_eq!(
                        snap.quantile(q, 0.5).expect("held snapshot").to_bits(),
                        held_median.to_bits(),
                        "held snapshot must be immutable"
                    );
                }
            })
        })
        .collect();

    // The writer seals ~94 more windows while the old epoch is held.
    eng.push_all((0..96_000).map(|v| (v % 10) as f32));
    assert!(
        registry.epoch() > held_epoch + 50,
        "sealing continued while snapshots were held"
    );
    stop.store(true, Ordering::Release);
    for h in holders {
        h.join().expect("holder");
    }
    // The held view is still answerable and still old.
    assert_eq!(held.epoch(), held_epoch);
    assert_eq!(
        held.quantile(q.index(), 0.5).unwrap().to_bits(),
        held_median.to_bits()
    );
}

/// Queries keep flowing while the engine checkpoints and a second engine
/// restores from the serialized state; the restored engine's direct
/// answers must match the served answers from the snapshot of the same
/// data.
#[test]
fn queries_race_checkpoint_and_restore() {
    let mut eng = StreamEngine::new(Engine::Host).with_n_hint(50_000);
    let q = eng.register_quantile(0.02);
    let registry = eng.serve();
    let server = QueryServer::start(Arc::clone(&registry), ServeConfig::default());
    eng.push_all((0..50_000).map(|v| (v % 100) as f32));

    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let client = server.client();
        let stop = Arc::clone(&stop);
        let q = q.index();
        thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                let reply = client.call(Request::Quantile { query: q, phi: 0.5 });
                assert!(structured(&reply), "unstructured reply {reply:?}");
            }
        })
    };

    // Checkpoint / restore repeatedly while queries are in flight.
    let mut last_json = String::new();
    for _ in 0..5 {
        last_json = eng.checkpoint();
        let mut restored = StreamEngine::restore(Engine::Host, &last_json).expect("restore");
        assert_eq!(restored.count(), 50_000);
        let direct = restored.quantile(q, 0.5);
        let snap = registry.latest().expect("published");
        assert_eq!(
            snap.quantile(q.index(), 0.5).expect("sealed").to_bits(),
            direct.to_bits(),
            "restored engine and live snapshot agree on the same data"
        );
    }
    assert!(!last_json.is_empty());
    stop.store(true, Ordering::Release);
    reader.join().expect("reader");
    drop(server);
}

/// Under a saturated single-worker queue with zero deadlines, every
/// admitted request expires (never executes stale) and every shed request
/// is told so — the books balance to zero lost.
#[test]
fn saturated_queue_expires_deadlines_and_sheds_structurally() {
    let mut eng = StreamEngine::new(Engine::Host).with_n_hint(10_000);
    let q = eng.register_quantile(0.02);
    let registry = eng.serve();
    eng.push_all((0..10_000).map(|v| (v % 100) as f32));
    let server = QueryServer::start(
        registry,
        ServeConfig {
            workers: 1,
            queue_capacity: 2,
            default_deadline: Duration::from_secs(1),
            ..ServeConfig::default()
        },
    );
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let client = server.client();
            let q = q.index();
            thread::spawn(move || {
                let mut expired = 0u64;
                let mut overloaded = 0u64;
                for _ in 0..32 {
                    match client
                        .call_within(Request::Quantile { query: q, phi: 0.5 }, Duration::ZERO)
                    {
                        Reply::Expired => expired += 1,
                        Reply::Overloaded { .. } => overloaded += 1,
                        Reply::Answer { .. } => {
                            panic!("zero-deadline request must never execute")
                        }
                        other => panic!("unexpected reply {other:?}"),
                    }
                }
                (expired, overloaded)
            })
        })
        .collect();
    let mut expired = 0u64;
    for c in clients {
        let (e, _) = c.join().expect("client thread");
        expired += e;
    }
    assert!(expired > 0, "admitted zero-deadline requests expire");
    let stats = server.stats();
    drop(server);
    assert_eq!(stats.submitted, 128);
    assert_eq!(stats.lost(), 0, "every request got a structured reply");
    assert_eq!(stats.answered, 0);
    assert_eq!(stats.expired + stats.overloaded, 128);
}

/// Dropping the server while clients are mid-call never strands a
/// request: admitted work drains with real replies, later submissions are
/// shed, and the accounting balances.
#[test]
fn shutdown_under_fire_strands_nothing() {
    let mut eng = StreamEngine::new(Engine::Host).with_n_hint(10_000);
    let q = eng.register_quantile(0.02);
    let registry = eng.serve();
    eng.push_all((0..10_000).map(|v| (v % 100) as f32));
    let server = QueryServer::start(
        registry,
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            default_deadline: Duration::from_secs(10),
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let hammer: Vec<_> = (0..3)
        .map(|_| {
            let client = client.clone();
            let q = q.index();
            thread::spawn(move || {
                for _ in 0..200 {
                    let reply = client.call(Request::Quantile { query: q, phi: 0.5 });
                    assert!(structured(&reply), "unstructured reply {reply:?}");
                }
            })
        })
        .collect();
    // Shut down mid-hammer: Drop closes admission, drains, joins.
    thread::sleep(Duration::from_millis(5));
    drop(server);
    for h in hammer {
        h.join().expect("hammer thread");
    }
    let stats = client.stats();
    assert_eq!(
        stats.lost(),
        0,
        "no request stranded by shutdown: {stats:?}"
    );
    assert_eq!(stats.submitted, 600);
}
