//! Offline stand-in for `serde` (+ `serde_derive`).
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal serialization framework with serde's spelling: types derive
//! `serde::Serialize` / `serde::Deserialize`, and `serde_json` turns them
//! into JSON strings and back. Internally everything routes through a
//! [`Value`] tree whose numbers keep their decimal *lexemes*: a value is
//! formatted with Rust's shortest-round-trip `Display` on the way out and
//! parsed with the target type's `FromStr` on the way in, so `f32`/`f64`
//! round-trips are exact.

#![allow(clippy::all)]

use std::collections::{HashMap, VecDeque};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its decimal lexeme.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

/// Serialization / deserialization failure.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error carrying `msg`.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// The value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, failing on shape or lexeme mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up `key` in an object value (derive-macro support).
pub fn obj_get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, Error> {
    match v {
        Value::Obj(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::msg(format!("missing field `{key}`"))),
        _ => Err(Error::msg(format!("expected object with field `{key}`"))),
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(format!("{self}"))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(s) => s
                        .parse::<$t>()
                        .map_err(|e| Error::msg(format!("bad number `{s}`: {e}"))),
                    _ => Err(Error::msg(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Arr(items) if items.len() == [$($n),+].len() => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    _ => Err(Error::msg("expected fixed-size array for tuple")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A, 1 B);
    (0 A, 1 B, 2 C);
    (0 A, 1 B, 2 C, 3 D);
}

/// Map keys that JSON spells as strings (serde serializes integer-keyed
/// maps this way).
pub trait JsonKey: Sized {
    /// The object-key spelling of `self`.
    fn to_key(&self) -> String;
    /// Parses an object key back.
    fn from_key(s: &str) -> Result<Self, Error>;
}

macro_rules! impl_key {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                format!("{self}")
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse::<$t>().map_err(|e| Error::msg(format!("bad key `{s}`: {e}")))
            }
        }
    )*};
}

impl_key!(u8, u16, u32, u64, usize, i32, i64);

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

impl<K: JsonKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: JsonKey + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected object for map")),
        }
    }
}

/// JSON text encoding and decoding of [`Value`] trees (the engine behind
/// the `serde_json` shim).
pub mod json {
    use super::{Error, Value};

    /// Renders `v` as compact JSON.
    pub fn write(v: &Value, out: &mut String) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(s) => out.push_str(s),
            Value::Str(s) => write_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write(item, out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, item)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    write(item, out);
                }
                out.push('}');
            }
        }
    }

    fn write_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Parses one JSON document (rejecting trailing garbage).
    pub fn parse(input: &str) -> Result<Value, Error> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(Error::msg(format!("trailing data at byte {pos}")));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{lit}` at byte {pos}")))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'n') => expect(b, pos, "null").map(|_| Value::Null),
            Some(b't') => expect(b, pos, "true").map(|_| Value::Bool(true)),
            Some(b'f') => expect(b, pos, "false").map(|_| Value::Bool(false)),
            Some(b'"') => parse_string(b, pos).map(Value::Str),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at byte {pos}"))),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(b, pos);
                    let key = parse_string(b, pos)?;
                    skip_ws(b, pos);
                    expect(b, pos, ":")?;
                    fields.push((key, parse_value(b, pos)?));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(Error::msg(format!("bad object at byte {pos}"))),
                    }
                }
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let start = *pos;
                *pos += 1;
                while *pos < b.len()
                    && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                {
                    *pos += 1;
                }
                let lexeme = std::str::from_utf8(&b[start..*pos])
                    .map_err(|_| Error::msg("invalid utf-8 in number"))?;
                Ok(Value::Num(lexeme.to_string()))
            }
            Some(c) => Err(Error::msg(format!(
                "unexpected byte `{}` at {pos}",
                *c as char
            ))),
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
        if b.get(*pos) != Some(&b'"') {
            return Err(Error::msg(format!("expected string at byte {pos}")));
        }
        *pos += 1;
        let mut out = String::new();
        let mut chars = std::str::from_utf8(&b[*pos..])
            .map_err(|_| Error::msg("invalid utf-8 in string"))?
            .char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    *pos += i + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, h) = chars
                                .next()
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            code = code * 16
                                + h.to_digit(16).ok_or_else(|| Error::msg("bad \\u escape"))?;
                        }
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::msg("bad \\u code point"))?,
                        );
                    }
                    other => {
                        return Err(Error::msg(format!("bad escape {other:?}")));
                    }
                },
                c => out.push(c),
            }
        }
        Err(Error::msg("unterminated string"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        let mut s = String::new();
        json::write(v, &mut s);
        json::parse(&s).expect("round trip")
    }

    #[test]
    fn float_lexemes_round_trip_exactly() {
        for x in [0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 1.23456789e30, -0.0] {
            let v = x.to_value();
            let back = f32::from_value(&round_trip(&v)).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
        for x in [0.1f64, std::f64::consts::PI, 1e-300] {
            let back = f64::from_value(&round_trip(&x.to_value())).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(f32, u64)> = vec![(1.5, 2), (-3.25, 4)];
        assert_eq!(
            Vec::<(f32, u64)>::from_value(&round_trip(&v.to_value())).unwrap(),
            v
        );

        let mut m = HashMap::new();
        m.insert(7u32, 99u64);
        m.insert(123, 1);
        assert_eq!(
            HashMap::<u32, u64>::from_value(&round_trip(&m.to_value())).unwrap(),
            m
        );

        let o: Vec<Option<u32>> = vec![None, Some(3)];
        assert_eq!(
            Vec::<Option<u32>>::from_value(&round_trip(&o.to_value())).unwrap(),
            o
        );
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\u{1}".to_string();
        assert_eq!(String::from_value(&round_trip(&s.to_value())).unwrap(), s);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(json::parse("not json").is_err());
        assert!(json::parse("{\"a\":1} extra").is_err());
        assert!(json::parse("[1,]").is_err());
        assert!(json::parse("\"unterminated").is_err());
    }
}
