//! The flight recorder: a bounded ring of structured engine events, dumped
//! as a postmortem when something goes wrong.
//!
//! Metrics answer "how much, how fast"; the flight recorder answers "what
//! happened just before that". Subsystems log coarse, structured state
//! transitions — a window seal, a snapshot publication, a shed burst, a
//! worker panic, an audit violation — into a small ring
//! ([`crate::Recorder::record_event`]), and failure paths call
//! [`crate::Recorder::dump_postmortem`] to write the last-N-events context
//! as versioned JSON next to whatever artifact reported the failure.
//! Events are orders of magnitude rarer than spans, so a small ring covers
//! minutes of history at full ingest rate.

use std::fmt::Write as _;

use crate::export::json_escape;

/// Default flight-recorder ring capacity (events retained).
pub const DEFAULT_EVENT_CAPACITY: usize = 512;

/// A coarse, structured engine state transition worth replaying after a
/// failure. Variants carry the few fields an operator needs to orient —
/// not full state dumps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineEvent {
    /// The engine fixed its window size and query set (first push).
    Seal {
        /// The shared window size chosen.
        window: usize,
        /// Ingest shards the pipeline was built with.
        shards: usize,
    },
    /// A snapshot was published to the registry.
    Publish {
        /// The publication epoch assigned.
        epoch: u64,
        /// Sealed windows covered at publication time.
        windows_sealed: u64,
    },
    /// Load shedding dropped work instead of queueing it.
    Shed {
        /// Which layer shed (`"ingest"`, `"serve_admission"`, ...).
        source: &'static str,
        /// Units dropped (elements for ingest, requests for serving).
        dropped: u64,
    },
    /// A multi-shard merge widened the rank/count error bound relative to
    /// a single-shard run (the mergeability trade documented in DESIGN §10).
    MergeBoundWidened {
        /// Queries whose sketches were merged.
        queries: usize,
        /// Shards folded together.
        shards: usize,
    },
    /// A serving worker caught a panic and isolated it to one request.
    WorkerPanic {
        /// Thread name of the panicking worker.
        worker: String,
        /// The panic payload, best-effort stringified.
        message: String,
    },
    /// A verify-gate audit check failed.
    AuditViolation {
        /// Which check failed (e.g. `fig5_quantile/GpuSim`).
        check: String,
        /// Human-readable magnitude (`observed X > bound Y`).
        detail: String,
    },
    /// The engine was rebuilt from a checkpoint plus a WAL tail replay.
    Recovery {
        /// WAL sequence the restored checkpoint covered.
        checkpoint_wal_seq: u64,
        /// WAL records replayed on top of the checkpoint.
        replayed_records: u64,
        /// Stream elements those records carried.
        replayed_elements: u64,
        /// The log ended in a torn (crash-truncated) final record.
        torn_tail: bool,
        /// Detected corruption description, empty when the log was clean.
        corruption: String,
    },
}

impl EngineEvent {
    /// Stable lower-snake kind tag (used as a metric label and in the
    /// postmortem JSON).
    pub fn kind(&self) -> &'static str {
        match self {
            EngineEvent::Seal { .. } => "seal",
            EngineEvent::Publish { .. } => "publish",
            EngineEvent::Shed { .. } => "shed",
            EngineEvent::MergeBoundWidened { .. } => "merge_bound_widened",
            EngineEvent::WorkerPanic { .. } => "worker_panic",
            EngineEvent::AuditViolation { .. } => "audit_violation",
            EngineEvent::Recovery { .. } => "recovery",
        }
    }

    /// Appends this event's variant-specific JSON fields (leading comma
    /// included) to `out`.
    fn write_fields(&self, out: &mut String) {
        match self {
            EngineEvent::Seal { window, shards } => {
                let _ = write!(out, ",\"window\":{window},\"shards\":{shards}");
            }
            EngineEvent::Publish {
                epoch,
                windows_sealed,
            } => {
                let _ = write!(
                    out,
                    ",\"epoch\":{epoch},\"windows_sealed\":{windows_sealed}"
                );
            }
            EngineEvent::Shed { source, dropped } => {
                let _ = write!(
                    out,
                    ",\"source\":\"{}\",\"dropped\":{dropped}",
                    json_escape(source)
                );
            }
            EngineEvent::MergeBoundWidened { queries, shards } => {
                let _ = write!(out, ",\"queries\":{queries},\"shards\":{shards}");
            }
            EngineEvent::WorkerPanic { worker, message } => {
                let _ = write!(
                    out,
                    ",\"worker\":\"{}\",\"message\":\"{}\"",
                    json_escape(worker),
                    json_escape(message)
                );
            }
            EngineEvent::AuditViolation { check, detail } => {
                let _ = write!(
                    out,
                    ",\"check\":\"{}\",\"detail\":\"{}\"",
                    json_escape(check),
                    json_escape(detail)
                );
            }
            EngineEvent::Recovery {
                checkpoint_wal_seq,
                replayed_records,
                replayed_elements,
                torn_tail,
                corruption,
            } => {
                let _ = write!(
                    out,
                    ",\"checkpoint_wal_seq\":{checkpoint_wal_seq}\
                     ,\"replayed_records\":{replayed_records}\
                     ,\"replayed_elements\":{replayed_elements}\
                     ,\"torn_tail\":{torn_tail}\
                     ,\"corruption\":\"{}\"",
                    json_escape(corruption)
                );
            }
        }
    }
}

/// One recorded engine event with its ring position and timing.
#[derive(Clone, Debug)]
pub struct FlightEvent {
    /// Monotone sequence number across the recorder's lifetime (1-based);
    /// gaps at the front of a dump mean the ring evicted history.
    pub seq: u64,
    /// Nanoseconds since the recorder's epoch.
    pub at_ns: u64,
    /// Recording thread (same id space as span `tid`s).
    pub tid: u64,
    /// The event itself.
    pub event: EngineEvent,
}

impl FlightEvent {
    /// Renders the event as one flat JSON object.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"seq\":{},\"at_ns\":{},\"tid\":{},\"kind\":\"{}\"",
            self.seq,
            self.at_ns,
            self.tid,
            self.event.kind()
        );
        self.event.write_fields(&mut out);
        out.push('}');
        out
    }
}

/// A bounded FIFO of [`FlightEvent`]s — the span ring's sibling for rare,
/// structured events.
#[derive(Clone, Debug)]
pub struct FlightRing {
    buf: std::collections::VecDeque<FlightEvent>,
    cap: usize,
    dropped: u64,
    next_seq: u64,
}

impl FlightRing {
    /// Creates a ring holding at most `cap` events (min 1).
    pub fn new(cap: usize) -> Self {
        FlightRing {
            buf: std::collections::VecDeque::with_capacity(cap.max(1)),
            cap: cap.max(1),
            dropped: 0,
            next_seq: 1,
        }
    }

    /// Appends an event, assigning its sequence number and evicting the
    /// oldest when full.
    pub fn push(&mut self, at_ns: u64, tid: u64, event: EngineEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(FlightEvent {
            seq: self.next_seq,
            at_ns,
            tid,
            event,
        });
        self.next_seq += 1;
    }

    /// Events currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &FlightEvent> {
        self.buf.iter()
    }

    /// Events retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_assigns_monotone_seq_and_evicts() {
        let mut r = FlightRing::new(2);
        for epoch in 1..=4u64 {
            r.push(
                epoch * 10,
                1,
                EngineEvent::Publish {
                    epoch,
                    windows_sealed: epoch,
                },
            );
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 2);
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
        assert!(!r.is_empty());
    }

    #[test]
    fn events_render_flat_escaped_json() {
        let e = FlightEvent {
            seq: 7,
            at_ns: 123,
            tid: 2,
            event: EngineEvent::WorkerPanic {
                worker: "gsm-serve-0".to_string(),
                message: "support \"s\" out of range\nline2".to_string(),
            },
        };
        let json = e.to_json();
        assert!(json.starts_with("{\"seq\":7,\"at_ns\":123,\"tid\":2,\"kind\":\"worker_panic\""));
        assert!(json.contains("\\\"s\\\""));
        assert!(json.contains("\\n"));
        assert!(json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        let seal = FlightEvent {
            seq: 1,
            at_ns: 0,
            tid: 1,
            event: EngineEvent::Seal {
                window: 1024,
                shards: 2,
            },
        };
        assert_eq!(
            seal.to_json(),
            "{\"seq\":1,\"at_ns\":0,\"tid\":1,\"kind\":\"seal\",\"window\":1024,\"shards\":2}"
        );
    }

    #[test]
    fn recovery_event_renders_all_fields() {
        let e = FlightEvent {
            seq: 2,
            at_ns: 5,
            tid: 1,
            event: EngineEvent::Recovery {
                checkpoint_wal_seq: 8,
                replayed_records: 3,
                replayed_elements: 3072,
                torn_tail: true,
                corruption: "wal-0000000009.seg: CRC mismatch \"x\"".to_string(),
            },
        };
        let json = e.to_json();
        assert!(json.contains("\"kind\":\"recovery\""));
        assert!(json.contains("\"checkpoint_wal_seq\":8"));
        assert!(json.contains("\"replayed_records\":3"));
        assert!(json.contains("\"replayed_elements\":3072"));
        assert!(json.contains("\"torn_tail\":true"));
        assert!(json.contains("\\\"x\\\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
