//! Exporters: Prometheus text exposition and Chrome `trace_event` JSON.
//!
//! Both render from the shared registry under its lock and depend on
//! nothing outside `std` — the crate's zero-dependency contract. The JSON
//! writer is hand-rolled because the trace format only needs flat objects,
//! numbers, and escaped strings.

use std::fmt::Write;

use crate::metrics::Log2Histogram;
use crate::State;

/// Converts a metric name to a legal Prometheus identifier under the `gsm`
/// namespace.
fn prom_name(name: &str) -> String {
    let sanitized: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("gsm_{sanitized}")
}

/// Escapes a Prometheus label value.
fn prom_escape(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a `{key="value"}` label block (empty string when unlabeled),
/// optionally with an extra `le` pair appended.
fn prom_labels(label: &Option<(&'static str, String)>, le: Option<&str>) -> String {
    let mut pairs: Vec<String> = Vec::new();
    if let Some((k, v)) = label {
        pairs.push(format!("{k}=\"{}\"", prom_escape(v)));
    }
    if let Some(le) = le {
        pairs.push(format!("le=\"{le}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Writes one histogram in Prometheus `histogram` convention, converting
/// nanosecond buckets to seconds.
fn prom_histogram(
    out: &mut String,
    base: &str,
    label: &Option<(&'static str, String)>,
    hist: &Log2Histogram,
) {
    let mut cumulative = 0u64;
    for bucket in 0..=hist.max_bucket().unwrap_or(0) {
        cumulative += hist.buckets[bucket];
        // Bucket `i` holds durations below 2^i ns.
        let le = (1u128 << bucket) as f64 * 1e-9;
        let labels = prom_labels(label, Some(&format!("{le}")));
        let _ = writeln!(out, "{base}_bucket{labels} {cumulative}");
    }
    let labels = prom_labels(label, Some("+Inf"));
    let _ = writeln!(out, "{base}_bucket{labels} {}", hist.count);
    let plain = prom_labels(label, None);
    let _ = writeln!(out, "{base}_sum{plain} {}", hist.sum_ns as f64 * 1e-9);
    let _ = writeln!(out, "{base}_count{plain} {}", hist.count);
}

/// Renders the whole registry in the Prometheus text exposition format.
pub(crate) fn prometheus_text(state: &mut State) -> String {
    let mut out = String::new();
    let mut last_type_line = String::new();
    let mut type_line = |out: &mut String, base: &str, kind: &str| {
        let line = format!("# TYPE {base} {kind}");
        if line != last_type_line {
            let _ = writeln!(out, "{line}");
            last_type_line = line;
        }
    };

    for ((name, label), value) in &state.counters {
        let base = format!("{}_total", prom_name(name));
        type_line(&mut out, &base, "counter");
        let _ = writeln!(out, "{base}{} {value}", prom_labels(label, None));
    }
    for ((name, label), gauge) in &state.gauges {
        let base = prom_name(name);
        let labels = prom_labels(label, None);
        type_line(&mut out, &base, "gauge");
        let _ = writeln!(out, "{base}{labels} {}", gauge.current);
        let hw = format!("{base}_highwater");
        type_line(&mut out, &hw, "gauge");
        let _ = writeln!(out, "{hw}{labels} {}", gauge.highwater);
    }
    for ((name, label), hist) in &state.hists {
        let base = format!("{}_seconds", prom_name(name));
        type_line(&mut out, &base, "histogram");
        prom_histogram(&mut out, &base, label, hist);
    }
    // Summary gauges estimated from the log2 buckets (erring high — see
    // `Log2Histogram::approx_quantile`), one pass per quantile so all
    // labeled series of a metric stay grouped under one TYPE line.
    for (suffix, q) in [("p50", 0.50), ("p99", 0.99)] {
        for ((name, label), hist) in &state.hists {
            let base = format!("{}_seconds_{suffix}", prom_name(name));
            type_line(&mut out, &base, "gauge");
            let _ = writeln!(
                out,
                "{base}{} {}",
                prom_labels(label, None),
                hist.approx_quantile(q) as f64 * 1e-9
            );
        }
    }
    // The recorder's own health: ring losses and occupancy are always
    // present so scrapers can alert on history loss without a first drop.
    let lines: [(&str, &str, u64); 5] = [
        (
            "gsm_obs_spans_dropped_total",
            "counter",
            state.spans.dropped(),
        ),
        (
            "gsm_obs_span_ring_events",
            "gauge",
            state.spans.len() as u64,
        ),
        (
            "gsm_obs_flight_dropped_total",
            "counter",
            state.events.dropped(),
        ),
        (
            "gsm_obs_flight_ring_events",
            "gauge",
            state.events.len() as u64,
        ),
        (
            "gsm_obs_flight_seq",
            "gauge",
            state.events.iter().last().map_or(0, |e| e.seq),
        ),
    ];
    for (base, kind, value) in lines {
        type_line(&mut out, base, kind);
        let _ = writeln!(out, "{base} {value}");
    }
    out
}

/// Escapes a string for inclusion in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the span ring as Chrome `trace_event` JSON (complete events,
/// `"ph":"X"`, timestamps in microseconds since the recorder's epoch).
///
/// Traced spans additionally carry `trace`/`span`/`parent` args (hex) and
/// each multi-span trace is linked by a flow-event chain
/// (`"ph":"s"`/`"t"`/`"f"` sharing the trace id), so Perfetto draws one
/// request's hops across threads as connected arrows.
pub(crate) fn chrome_trace_json(state: &mut State) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    // Traced spans grouped by trace id, in ring (≈ completion) order.
    let mut traces: std::collections::BTreeMap<u64, Vec<&crate::SpanEvent>> =
        std::collections::BTreeMap::new();
    for (i, e) in state.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut args: Vec<String> = Vec::new();
        if let Some((k, v)) = &e.label {
            args.push(format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
        }
        if let Some(t) = &e.trace {
            args.push(format!("\"trace\":\"{:016x}\"", t.trace_id));
            args.push(format!("\"span\":\"{:x}\"", e.span_id));
            args.push(format!("\"parent\":\"{:x}\"", t.parent));
            traces.entry(t.trace_id).or_default().push(e);
        }
        let args = if args.is_empty() {
            String::new()
        } else {
            format!(",\"args\":{{{}}}", args.join(","))
        };
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"gsm\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":1,\"tid\":{}{args}}}",
            json_escape(e.name),
            e.start_ns as f64 / 1e3,
            e.dur_ns as f64 / 1e3,
            e.tid
        );
    }
    for (trace_id, mut spans) in traces {
        if spans.len() < 2 {
            continue; // nothing to link
        }
        spans.sort_by_key(|e| e.start_ns);
        for (i, e) in spans.iter().enumerate() {
            let (ph, bp) = if i == 0 {
                ("s", "")
            } else if i + 1 == spans.len() {
                ("f", ",\"bp\":\"e\"")
            } else {
                ("t", "")
            };
            let _ = write!(
                out,
                ",{{\"name\":\"request\",\"cat\":\"gsm.flow\",\"ph\":\"{ph}\",\
                 \"id\":\"{trace_id:016x}\",\"ts\":{:.3},\"pid\":1,\"tid\":{}{bp}}}",
                e.start_ns as f64 / 1e3,
                e.tid
            );
        }
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"droppedSpans\":{}}}",
        state.spans.dropped()
    );
    out
}

#[cfg(test)]
mod tests {
    use crate::Recorder;

    #[test]
    fn prometheus_counters_gauges_histograms_render() {
        let rec = Recorder::enabled();
        rec.count("windows", 7);
        rec.count_labeled("tasks", ("worker", "0"), 3);
        rec.gauge_add("depth", 2);
        rec.observe_ns("sort", 1_000);
        rec.observe_ns("sort", 3_000);
        let text = rec.prometheus_text();
        assert!(text.contains("# TYPE gsm_windows_total counter"));
        assert!(text.contains("gsm_windows_total 7"));
        assert!(text.contains("gsm_tasks_total{worker=\"0\"} 3"));
        assert!(text.contains("# TYPE gsm_depth gauge"));
        assert!(text.contains("gsm_depth 2"));
        assert!(text.contains("gsm_depth_highwater 2"));
        assert!(text.contains("# TYPE gsm_sort_seconds histogram"));
        assert!(text.contains("gsm_sort_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("gsm_sort_seconds_count 2"));
        // Cumulative buckets are monotone: the le=+Inf count equals total.
        let sum_line = text
            .lines()
            .find(|l| l.starts_with("gsm_sort_seconds_sum"))
            .expect("sum line");
        let sum: f64 = sum_line.split(' ').nth(1).unwrap().parse().unwrap();
        assert!((sum - 4e-6).abs() < 1e-12);
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let rec = Recorder::enabled();
        {
            let _a = rec.span("outer");
            let _b = rec.span_labeled("inner", ("window", "3"));
        }
        let json = rec.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"inner\""));
        assert!(json.contains("\"args\":{\"window\":\"3\"}"));
        assert!(json.contains("\"droppedSpans\":0"));
        // Balanced braces/brackets — the hand-rolled writer's smoke check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escaping_handles_hostile_strings() {
        assert_eq!(super::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(super::prom_escape("x\"y\\z\nw"), "x\\\"y\\\\z\\nw");
        assert_eq!(
            super::prom_name("pool.service-time"),
            "gsm_pool_service_time"
        );
    }

    #[test]
    fn prometheus_output_is_deterministic_and_escaped() {
        let build = || {
            let rec = Recorder::enabled();
            rec.count_labeled("tasks", ("worker", "b\"ad\\la\nbel"), 1);
            rec.count_labeled("tasks", ("worker", "0"), 2);
            rec.count("windows", 1);
            rec.gauge_set("depth", 3);
            rec.observe_ns("sort", 900);
            rec
        };
        let a = build().prometheus_text();
        let b = build().prometheus_text();
        assert_eq!(a, b, "same registry contents render identically");
        // BTreeMap ordering: the labeled `tasks` series sort by label value.
        let zero = a.find("worker=\"0\"").expect("label 0");
        let hostile = a.find("worker=\"b\\\"ad\\\\la\\nbel\"").expect("escaped");
        assert!(zero < hostile, "label values render in sorted order");
        // One physical line per series — escaping keeps newlines out.
        assert!(a.lines().all(|l| l.starts_with('#') || l.contains(' ')));
        // Summary gauges derived from the histogram are present.
        assert!(a.contains("# TYPE gsm_sort_seconds_p50 gauge"));
        assert!(a.contains("# TYPE gsm_sort_seconds_p99 gauge"));
    }

    #[test]
    fn counters_are_monotone_across_scrapes() {
        let rec = Recorder::enabled();
        let value = |text: &str, name: &str| -> f64 {
            text.lines()
                .find(|l| l.starts_with(name) && l.split(' ').next() == Some(name))
                .and_then(|l| l.split(' ').nth(1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(-1.0)
        };
        rec.count("windows", 2);
        let first = rec.prometheus_text();
        rec.count("windows", 3);
        {
            let _sp = rec.span("sort");
        }
        let second = rec.prometheus_text();
        assert_eq!(value(&first, "gsm_windows_total"), 2.0);
        assert_eq!(value(&second, "gsm_windows_total"), 5.0);
        assert!(
            value(&second, "gsm_windows_total") >= value(&first, "gsm_windows_total"),
            "counters never regress between scrapes"
        );
        // The recorder's own ring series exist from the first scrape on.
        for text in [&first, &second] {
            assert_eq!(value(text, "gsm_obs_spans_dropped_total"), 0.0);
            assert!(value(text, "gsm_obs_span_ring_events") >= 0.0);
            assert!(value(text, "gsm_obs_flight_ring_events") >= 0.0);
        }
        assert_eq!(value(&second, "gsm_obs_span_ring_events"), 1.0);
    }

    #[test]
    fn traced_spans_emit_linked_flow_events() {
        use crate::TraceCtx;
        let rec = Recorder::enabled();
        let ctx = TraceCtx::fresh();
        let root_id;
        {
            let root = rec.span_traced("admit", ctx);
            root_id = root.id();
            let _leaf = rec.span_traced("exec", root.child_ctx());
        }
        {
            let _other = rec.span("untraced");
        }
        let json = rec.chrome_trace_json();
        let hex = ctx.hex();
        assert!(json.contains(&format!("\"trace\":\"{hex}\"")));
        assert!(json.contains(&format!("\"parent\":\"{root_id:x}\"")));
        // One flow chain: a start and an end anchored to the trace id.
        assert!(json.contains(&format!("\"ph\":\"s\",\"id\":\"{hex}\"")));
        assert!(json.contains(&format!("\"ph\":\"f\",\"id\":\"{hex}\"")));
        assert!(json.contains("\"bp\":\"e\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
