//! Validated construction of [`StreamEngine`]s.
//!
//! The engine grew its configuration one chained `with_*` method at a
//! time, and the chain has accumulated foot-guns: `with_shards(0)` and
//! `with_publish_every(0)` panic at the call site, `with_durability`
//! forces a mid-chain `?`, and every ordering constraint ("before pushing
//! stream data") is enforced by asserts scattered across the methods.
//! [`EngineBuilder`] consolidates the chain behind one front door that
//! validates the whole configuration at [`EngineBuilder::build`] time and
//! reports problems as a typed [`BuildError`] instead of a panic. The
//! `with_*` methods remain — they are the thin wrappers the builder
//! delegates to, so no existing caller breaks.
//!
//! Field application order is canonical and independent of setter call
//! order: hints and observers first, then sharding, then serving cadence,
//! then durability last (so the base checkpoint written when a durable
//! engine seals reflects the full configuration). This removes the
//! legacy chain's silent ordering hazards — e.g. attaching durability
//! before widening the shard count.

use std::fmt;

use gsm_core::Engine;
use gsm_obs::Recorder;

use crate::durable::DurableOptions;
use crate::engine::{StreamEngine, WindowTap};

/// Why [`EngineBuilder::build`] rejected a configuration.
#[derive(Debug)]
pub enum BuildError {
    /// `shards(0)`: at least one shard pipeline is required.
    ZeroShards,
    /// `publish_every(0)`: the publication cadence is measured in sealed
    /// windows and must be at least 1.
    ZeroPublishCadence,
    /// Opening the durable directory failed — including refusing a dirty
    /// directory that already holds WAL segments (recover instead of
    /// overwriting).
    Durability(std::io::Error),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ZeroShards => write!(f, "shard count must be at least 1"),
            BuildError::ZeroPublishCadence => {
                write!(f, "publication cadence must be at least 1 window")
            }
            BuildError::Durability(e) => write!(f, "durability setup failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Durability(e) => Some(e),
            _ => None,
        }
    }
}

/// Builds a [`StreamEngine`] with build-time validation.
///
/// ```
/// use gsm_core::Engine;
/// use gsm_dsms::EngineBuilder;
///
/// let mut eng = EngineBuilder::new(Engine::Host)
///     .n_hint(10_000)
///     .shards(2)
///     .build()
///     .expect("valid configuration");
/// let q = eng.register_quantile(0.02);
/// eng.push_all((0..10_000).map(|i| (i % 100) as f32));
/// assert!((40.0..60.0).contains(&eng.quantile(q, 0.5)));
/// ```
pub struct EngineBuilder {
    engine: Engine,
    n_hint: Option<u64>,
    shards: Option<usize>,
    recorder: Option<Recorder>,
    tap: Option<WindowTap>,
    publish_every: Option<u64>,
    durability: Option<DurableOptions>,
}

impl EngineBuilder {
    /// Starts a configuration for the given sort backend.
    pub fn new(engine: Engine) -> Self {
        EngineBuilder {
            engine,
            n_hint: None,
            shards: None,
            recorder: None,
            tap: None,
            publish_every: None,
            durability: None,
        }
    }

    /// Hints the expected stream length (affects quantile level budgets).
    /// Default: 10⁸.
    pub fn n_hint(mut self, n: u64) -> Self {
        self.n_hint = Some(n);
        self
    }

    /// Partitions ingestion across `k` shard pipelines. Default: 1.
    /// Validated at [`Self::build`]: `k = 0` is [`BuildError::ZeroShards`].
    pub fn shards(mut self, k: usize) -> Self {
        self.shards = Some(k);
        self
    }

    /// Installs an observability recorder (see
    /// [`StreamEngine::with_recorder`]).
    pub fn recorder(mut self, rec: Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Installs an audit tap invoked with every sealed window (see
    /// [`StreamEngine::with_window_tap`]).
    pub fn window_tap(mut self, tap: WindowTap) -> Self {
        self.tap = Some(tap);
        self
    }

    /// Sets the snapshot publication cadence in sealed windows (default
    /// one). Validated at [`Self::build`]: `n = 0` is
    /// [`BuildError::ZeroPublishCadence`].
    pub fn publish_every(mut self, n: u64) -> Self {
        self.publish_every = Some(n);
        self
    }

    /// Attaches crash-safe durability (see
    /// [`StreamEngine::with_durability`]). I/O happens at
    /// [`Self::build`]; failures surface as [`BuildError::Durability`].
    pub fn durability(mut self, opts: DurableOptions) -> Self {
        self.durability = Some(opts);
        self
    }

    /// Validates the configuration and constructs the engine.
    ///
    /// # Errors
    ///
    /// [`BuildError::ZeroShards`], [`BuildError::ZeroPublishCadence`], or
    /// [`BuildError::Durability`] for I/O failures opening the durable
    /// directory.
    pub fn build(self) -> Result<StreamEngine, BuildError> {
        if self.shards == Some(0) {
            return Err(BuildError::ZeroShards);
        }
        if self.publish_every == Some(0) {
            return Err(BuildError::ZeroPublishCadence);
        }
        let mut eng = StreamEngine::new(self.engine);
        if let Some(n) = self.n_hint {
            eng = eng.with_n_hint(n);
        }
        if let Some(rec) = self.recorder {
            eng = eng.with_recorder(rec);
        }
        if let Some(k) = self.shards {
            eng = eng.with_shards(k);
        }
        if let Some(tap) = self.tap {
            eng = eng.with_window_tap(tap);
        }
        if let Some(n) = self.publish_every {
            eng = eng.with_publish_every(n);
        }
        if let Some(opts) = self.durability {
            eng = eng.with_durability(opts).map_err(BuildError::Durability)?;
        }
        Ok(eng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_matches_the_legacy_chain() {
        let data: Vec<f32> = (0..4096).map(|i| (i % 97) as f32).collect();
        let mut built = EngineBuilder::new(Engine::Host)
            .n_hint(4096)
            .shards(2)
            .build()
            .expect("valid configuration");
        let mut chained = StreamEngine::new(Engine::Host)
            .with_n_hint(4096)
            .with_shards(2);
        let qb = built.register_quantile(0.02);
        let qc = chained.register_quantile(0.02);
        built.push_all(data.iter().copied());
        chained.push_all(data.iter().copied());
        assert_eq!(built.checkpoint(), chained.checkpoint());
        assert_eq!(
            built.quantile(qb, 0.5).to_bits(),
            chained.quantile(qc, 0.5).to_bits()
        );
    }

    #[test]
    fn builder_rejects_zero_shards() {
        let Err(err) = EngineBuilder::new(Engine::Host).shards(0).build() else {
            panic!("zero shards must be rejected");
        };
        assert!(matches!(err, BuildError::ZeroShards), "{err}");
    }

    #[test]
    fn builder_rejects_zero_publish_cadence() {
        let Err(err) = EngineBuilder::new(Engine::Host).publish_every(0).build() else {
            panic!("zero cadence must be rejected");
        };
        assert!(matches!(err, BuildError::ZeroPublishCadence), "{err}");
    }

    #[test]
    fn builder_surfaces_durability_io_errors() {
        // A dirty durable directory is refused with AlreadyExists — the
        // builder converts that into a typed error instead of a panic.
        let dir = std::env::temp_dir().join(format!("gsm-builder-dirty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut eng = EngineBuilder::new(Engine::Host)
                .durability(DurableOptions::new(&dir))
                .build()
                .expect("fresh directory");
            eng.register_quantile(0.02);
            eng.push_all((0..2048).map(|i| i as f32));
        }
        let Err(err) = EngineBuilder::new(Engine::Host)
            .durability(DurableOptions::new(&dir))
            .build()
        else {
            panic!("dirty durable directory must be refused");
        };
        match err {
            BuildError::Durability(e) => {
                assert_eq!(e.kind(), std::io::ErrorKind::AlreadyExists)
            }
            other => panic!("expected Durability error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
