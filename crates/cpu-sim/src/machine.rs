//! The machine façade driven by instrumented algorithms.

use gsm_model::{Hertz, SimTime};

use crate::branch::BranchPredictor;
use crate::cache::{CacheConfig, CacheHierarchy};
use crate::prefetch::StreamPrefetcher;

/// Calibrated performance parameters for the simulated CPU.
#[derive(Clone, Debug)]
pub struct CpuCostModel {
    /// Core clock.
    pub clock: Hertz,
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// L2 cache geometry.
    pub l2: CacheConfig,
    /// Cycles charged on every memory access (L1 hit time).
    pub l1_latency: u64,
    /// Additional cycles on an L1 miss (L2 hit time).
    pub l2_latency: u64,
    /// Additional cycles on an L2 miss (memory access time).
    pub mem_latency: u64,
    /// Penalty per mispredicted branch.
    pub mispredict_penalty: u64,
    /// Fixed overhead per indirect call (models `qsort`'s comparator
    /// function pointer; zero for inlined template sorts).
    pub call_overhead: u64,
    /// Branch-predictor table entries.
    pub predictor_entries: usize,
    /// Hardware prefetcher stream slots (0 = disabled). When a demand L2
    /// miss lands on a line an active stream predicted, the memory latency
    /// is replaced by `prefetched_latency`.
    pub prefetch_streams: usize,
    /// Residual cycles for a prefetch-covered L2 miss.
    pub prefetched_latency: u64,
}

impl CpuCostModel {
    /// The paper's CPU: 3.4 GHz Intel Pentium IV.
    ///
    /// 16 KB 8-way L1 data cache, 1 MB 8-way L2, 64 B lines; access times of
    /// 1 / 10 / 100 cycles for L1 / L2 / memory and a 17-cycle branch
    /// mispredict penalty — all as quoted in §3.2 of the paper.
    pub fn pentium4_3400() -> Self {
        CpuCostModel {
            clock: Hertz::from_ghz(3.4),
            l1: CacheConfig {
                capacity: 16 << 10,
                line_bytes: 64,
                associativity: 8,
            },
            l2: CacheConfig {
                capacity: 1 << 20,
                line_bytes: 64,
                associativity: 8,
            },
            l1_latency: 1,
            l2_latency: 10,
            mem_latency: 100,
            mispredict_penalty: 17,
            call_overhead: 0,
            predictor_entries: 4096,
            prefetch_streams: 0,
            prefetched_latency: 15,
        }
    }

    /// The same machine with the hardware stream prefetcher enabled
    /// (8 tracked streams — Prescott-class). Streaming algorithms (merge
    /// sort, radix scatter reads) hide most of their memory latency;
    /// partition re-walks benefit less.
    pub fn pentium4_3400_prefetch() -> Self {
        CpuCostModel {
            prefetch_streams: 8,
            ..Self::pentium4_3400()
        }
    }

    /// The same machine running `stdlib.h` `qsort`: every comparison goes
    /// through a function pointer (the paper's MSVC baseline uses exactly
    /// the standard `qsort` routine).
    pub fn pentium4_3400_qsort() -> Self {
        CpuCostModel {
            call_overhead: 8,
            ..Self::pentium4_3400()
        }
    }

    /// A zero-cost model for functional tests.
    pub fn ideal() -> Self {
        CpuCostModel {
            clock: Hertz::from_ghz(1.0),
            l1: CacheConfig {
                capacity: 1 << 10,
                line_bytes: 64,
                associativity: 2,
            },
            l2: CacheConfig {
                capacity: 1 << 12,
                line_bytes: 64,
                associativity: 2,
            },
            l1_latency: 0,
            l2_latency: 0,
            mem_latency: 0,
            mispredict_penalty: 0,
            call_overhead: 0,
            predictor_entries: 16,
            prefetch_streams: 0,
            prefetched_latency: 0,
        }
    }
}

/// Event counters accumulated by a [`Machine`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CpuStats {
    /// Memory reads issued.
    pub reads: u64,
    /// Memory writes issued.
    pub writes: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Branches observed.
    pub branches: u64,
    /// Branches mispredicted.
    pub mispredicts: u64,
    /// ALU cycles charged.
    pub alu_cycles: u64,
    /// Indirect calls charged.
    pub calls: u64,
    /// L2 misses whose latency the hardware prefetcher hid.
    pub prefetch_covered: u64,
}

impl CpuStats {
    /// Branch misprediction rate in `[0, 1]`.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// The difference `self − earlier`, for scoping costs to a region.
    ///
    /// All counters are monotonically non-decreasing, so a snapshot taken
    /// before an operation can be subtracted from one taken after.
    pub fn since(&self, earlier: &CpuStats) -> CpuStats {
        CpuStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            l1_misses: self.l1_misses - earlier.l1_misses,
            l2_misses: self.l2_misses - earlier.l2_misses,
            branches: self.branches - earlier.branches,
            mispredicts: self.mispredicts - earlier.mispredicts,
            alu_cycles: self.alu_cycles - earlier.alu_cycles,
            calls: self.calls - earlier.calls,
            prefetch_covered: self.prefetch_covered - earlier.prefetch_covered,
        }
    }

    /// Publishes these counters into an observability recorder under the
    /// `cpu_*` namespace. Callers scoping a region pass a [`CpuStats::since`]
    /// delta so the recorder's totals stay monotone.
    pub fn record_into(&self, rec: &gsm_obs::Recorder) {
        if !rec.is_enabled() {
            return;
        }
        rec.count("cpu_reads", self.reads);
        rec.count("cpu_writes", self.writes);
        rec.count("cpu_l1_misses", self.l1_misses);
        rec.count("cpu_l2_misses", self.l2_misses);
        rec.count("cpu_branches", self.branches);
        rec.count("cpu_mispredicts", self.mispredicts);
        rec.count("cpu_alu_cycles", self.alu_cycles);
        rec.count("cpu_calls", self.calls);
    }
}

/// A simulated CPU: instrumented algorithms report their memory accesses,
/// branches, and ALU work; the machine prices them and accumulates cycles.
///
/// Addresses are flat virtual addresses chosen by the caller (e.g. element
/// `i` of an array based at `B` lives at `B + 4·i`). Distinct data
/// structures should use disjoint address ranges so they contend for cache
/// realistically.
pub struct Machine {
    model: CpuCostModel,
    caches: CacheHierarchy,
    predictor: BranchPredictor,
    prefetcher: Option<StreamPrefetcher>,
    cycles: u64,
    stats: CpuStats,
}

impl Machine {
    /// Builds a machine with cold caches.
    pub fn new(model: CpuCostModel) -> Self {
        let caches = CacheHierarchy::new(
            model.l1,
            model.l2,
            model.l1_latency,
            model.l2_latency,
            model.mem_latency,
        );
        let predictor = BranchPredictor::new(model.predictor_entries);
        let prefetcher =
            (model.prefetch_streams > 0).then(|| StreamPrefetcher::new(model.prefetch_streams));
        Machine {
            model,
            caches,
            predictor,
            prefetcher,
            cycles: 0,
            stats: CpuStats::default(),
        }
    }

    /// The cost model in use.
    pub fn model(&self) -> &CpuCostModel {
        &self.model
    }

    /// Issues a memory read at `addr`.
    #[inline]
    pub fn read(&mut self, addr: u64) {
        self.stats.reads += 1;
        self.mem_access(addr);
    }

    /// Issues a memory write at `addr` (write-allocate: costs like a read).
    #[inline]
    pub fn write(&mut self, addr: u64) {
        self.stats.writes += 1;
        self.mem_access(addr);
    }

    #[inline]
    fn mem_access(&mut self, addr: u64) {
        let before_l1 = self.caches.l1().misses();
        let before_l2 = self.caches.l2().misses();
        let mut cycles = self.caches.access(addr);
        let l2_missed = self.caches.l2().misses() > before_l2;
        if let Some(pf) = &mut self.prefetcher {
            let covered = pf.observe(addr / 64);
            if l2_missed && covered {
                // The stream prefetcher already pulled the line toward L2:
                // pay the residual instead of the full memory latency.
                cycles = cycles - self.model.mem_latency + self.model.prefetched_latency;
                self.stats.prefetch_covered += 1;
            }
        }
        self.cycles += cycles;
        self.stats.l1_misses += self.caches.l1().misses() - before_l1;
        self.stats.l2_misses += self.caches.l2().misses() - before_l2;
    }

    /// Records a conditional branch at site `pc` with the given outcome,
    /// charging the mispredict penalty when the predictor is wrong.
    #[inline]
    pub fn branch(&mut self, pc: u64, taken: bool) {
        self.stats.branches += 1;
        if !self.predictor.observe(pc, taken) {
            self.stats.mispredicts += 1;
            self.cycles += self.model.mispredict_penalty;
        }
    }

    /// Charges `n` cycles of straight-line ALU/addressing work.
    #[inline]
    pub fn alu(&mut self, n: u64) {
        self.stats.alu_cycles += n;
        self.cycles += n;
    }

    /// Charges one indirect call (comparator function pointer).
    #[inline]
    pub fn call(&mut self) {
        self.stats.calls += 1;
        self.cycles += self.model.call_overhead;
    }

    /// Total cycles accumulated.
    #[inline]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Simulated elapsed time (`cycles / clock`).
    #[inline]
    pub fn time(&self) -> SimTime {
        self.model.clock.time_for_f64(self.cycles as f64)
    }

    /// Event counters.
    pub fn stats(&self) -> &CpuStats {
        &self.stats
    }

    /// Clears cycles, counters, caches, and predictor state.
    pub fn reset(&mut self) {
        self.caches.reset();
        self.predictor.reset();
        if self.model.prefetch_streams > 0 {
            self.prefetcher = Some(StreamPrefetcher::new(self.model.prefetch_streams));
        }
        self.cycles = 0;
        self.stats = CpuStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_matches_paper_quotes() {
        let m = CpuCostModel::pentium4_3400();
        assert!((m.clock.as_ghz() - 3.4).abs() < 1e-9);
        assert_eq!(m.l1.capacity, 16 << 10);
        assert_eq!(m.l2.capacity, 1 << 20);
        assert_eq!(m.mispredict_penalty, 17);
        assert_eq!(m.mem_latency, 100);
    }

    #[test]
    fn qsort_preset_adds_call_overhead() {
        assert!(CpuCostModel::pentium4_3400_qsort().call_overhead > 0);
        assert_eq!(CpuCostModel::pentium4_3400().call_overhead, 0);
    }

    #[test]
    fn read_costs_follow_cache_state() {
        let mut m = Machine::new(CpuCostModel::pentium4_3400());
        m.read(0);
        let cold = m.cycles();
        assert_eq!(cold, 111); // 1 + 10 + 100
        m.read(4); // same line
        assert_eq!(m.cycles() - cold, 1);
        assert_eq!(m.stats().reads, 2);
        assert_eq!(m.stats().l1_misses, 1);
        assert_eq!(m.stats().l2_misses, 1);
    }

    #[test]
    fn branch_penalty_only_on_mispredict() {
        let mut m = Machine::new(CpuCostModel::pentium4_3400());
        m.branch(0, true); // counter at weakly-not-taken: mispredict
        assert_eq!(m.cycles(), 17);
        m.branch(0, true); // now predicted taken
        assert_eq!(m.cycles(), 17);
        assert_eq!(m.stats().mispredict_rate(), 0.5);
    }

    #[test]
    fn alu_and_call_charges() {
        let mut m = Machine::new(CpuCostModel::pentium4_3400_qsort());
        m.alu(5);
        m.call();
        assert_eq!(m.cycles(), 5 + 8);
        assert_eq!(m.stats().calls, 1);
    }

    #[test]
    fn time_converts_at_clock() {
        let mut m = Machine::new(CpuCostModel::pentium4_3400());
        m.alu(3_400_000_000);
        assert!((m.time().as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn streaming_a_large_array_is_memory_bound() {
        // Stream 8 MiB (beyond L2): miss rate must be ~1 per 16 f32s and the
        // average cost per access must be dominated by memory latency.
        let mut m = Machine::new(CpuCostModel::pentium4_3400());
        let n = 2 << 20;
        for i in 0..n {
            m.read(i * 4);
        }
        let per_access = m.cycles() as f64 / n as f64;
        // 1 + (110)/16 ≈ 7.9
        assert!(
            (7.0..9.0).contains(&per_access),
            "per_access = {per_access}"
        );
        assert_eq!(m.stats().l2_misses, n / 16);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut m = Machine::new(CpuCostModel::pentium4_3400());
        m.read(0);
        m.reset();
        assert_eq!(m.cycles(), 0);
        m.read(0);
        assert_eq!(m.stats().l1_misses, 1, "cache must be cold again");
    }
}
