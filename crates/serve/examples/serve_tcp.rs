//! A runnable serving demo: ingest a synthetic stream while exposing the
//! query frontend over TCP and the telemetry plane over HTTP.
//!
//! ```text
//! cargo run --release -p gsm-serve --example serve_tcp -- \
//!     [addr] [elements] [admin_addr] [linger_secs]
//! ```
//!
//! Defaults to `127.0.0.1:7878`, 1,048,576 elements, and an admin
//! endpoint on `127.0.0.1:7879`. With no `linger_secs` the demo waits for
//! Enter after ingestion; with it (e.g. in CI) it sleeps that long and
//! exits on its own. While it runs, talk to the query plane with `nc`:
//!
//! ```text
//! $ nc 127.0.0.1 7878
//! quantile 0 0.5
//! answer 17 quantile 32741 trace=5851f42d4c957f2d
//! epoch
//! epoch 17
//! ```
//!
//! and to the telemetry plane with `curl`:
//!
//! ```text
//! $ curl -s localhost:7879/healthz
//! $ curl -s localhost:7879/metrics | head
//! $ curl -s localhost:7879/status
//! ```
//!
//! Query indices: 0 = quantile (ε=0.01), 1 = frequency (ε=0.001),
//! 2 = sliding quantile (ε=0.05, width 65536). At exit the flight
//! recorder is dumped to `results/SERVE_postmortem.json` so the run's
//! last engine events (seals, publishes, any panics) are inspectable.

use gsm_core::Engine;
use gsm_dsms::StreamEngine;
use gsm_obs::{Recorder, SloSpec};
use gsm_serve::{AdminServer, AdminSources, QueryServer, ServeConfig, TcpFront};

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let elements: u64 = args
        .next()
        .map(|s| s.parse().expect("elements must be an integer"))
        .unwrap_or(1 << 20);
    let admin_addr = args.next().unwrap_or_else(|| "127.0.0.1:7879".to_string());
    let linger_secs: Option<u64> = args.next().map(|s| s.parse().expect("linger seconds"));

    let shards = 2;
    let rec = Recorder::enabled();
    let mut eng = StreamEngine::new(Engine::ParallelHost)
        .with_n_hint(elements)
        .with_shards(shards)
        .with_publish_every(4)
        .with_recorder(rec.clone());
    let q = eng.register_quantile(0.01);
    let f = eng.register_frequency(0.001);
    let sq = eng.register_sliding_quantile(0.05, 1 << 16);

    let server = QueryServer::with_recorder(
        eng.serve(),
        ServeConfig {
            postmortem_path: Some("results/SERVE_postmortem.json".into()),
            ..ServeConfig::default()
        },
        rec.clone(),
    );
    let front = TcpFront::bind(server.client(), &addr).expect("bind TCP front");
    let admin = AdminServer::bind(
        &admin_addr,
        AdminSources {
            recorder: rec.clone(),
            registry: Some(std::sync::Arc::clone(server.registry())),
            client: Some(server.client()),
            shards,
            slos: vec![
                SloSpec {
                    name: "serve_quantile",
                    metric: "serve_latency",
                    label: Some(("kind", "quantile")),
                    p50_ns: Some(5_000_000),
                    p99_ns: 50_000_000,
                },
                SloSpec {
                    name: "serve_frequency",
                    metric: "serve_latency",
                    label: Some(("kind", "frequency")),
                    p50_ns: None,
                    p99_ns: 50_000_000,
                },
            ],
        },
    )
    .expect("bind admin endpoint");
    println!(
        "serving on {} (queries: {}=quantile {}=frequency {}=sliding-quantile), \
         admin on http://{}",
        front.local_addr(),
        q.index(),
        f.index(),
        sq.index(),
        admin.local_addr()
    );

    // Ingest on this thread while the server answers concurrently; a
    // value mix of 20% hot keys over a wide uniform range gives both
    // query families something to find.
    println!("ingesting {elements} elements ...");
    let mut state = 0x9e3779b97f4a7c15u64;
    for _ in 0..elements {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let v = if state % 5 == 0 {
            (state >> 32) % 16
        } else {
            (state >> 32) % 65_536
        };
        eng.push(v as f32);
    }
    eng.flush();
    eng.publish_now();
    match linger_secs {
        Some(secs) => {
            println!(
                "ingestion done: {} elements, epoch {} — serving for {secs}s",
                eng.count(),
                server.registry().epoch()
            );
            std::thread::sleep(std::time::Duration::from_secs(secs));
        }
        None => {
            println!(
                "ingestion done: {} elements, epoch {} — press Enter to stop",
                eng.count(),
                server.registry().epoch()
            );
            let mut line = String::new();
            let _ = std::io::stdin().read_line(&mut line);
        }
    }
    drop(admin);
    drop(front);
    let stats = server.stats();
    drop(server);
    if let Err(e) = rec.dump_postmortem("results/SERVE_postmortem.json", "serve_tcp shutdown") {
        eprintln!("postmortem dump failed: {e}");
    } else {
        println!("flight recorder dumped to results/SERVE_postmortem.json");
    }
    println!(
        "served {} requests ({} answered, {} shed, {} expired, {} lost)",
        stats.submitted,
        stats.answered,
        stats.overloaded,
        stats.expired,
        stats.lost()
    );
}
