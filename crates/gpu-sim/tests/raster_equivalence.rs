//! Property tests for the rasterizer: the device's optimized separable
//! fast path must agree texel-for-texel with a direct per-fragment
//! evaluation of the quad's sampling rule, for arbitrary rectangles and
//! corner texture-coordinate assignments.

use gsm_gpu::{BlendOp, Device, Quad, Rect, Surface};
use proptest::prelude::*;

/// Builds a surface with a position-dependent pattern so mismatches are
/// loud.
fn patterned(w: u32, h: u32) -> Surface {
    let mut s = Surface::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let base = (y * w + x) as f32;
            s.set(x, y, [base, base + 0.25, -base, base * 2.0]);
        }
    }
    s
}

/// Reference: evaluate the quad fragment-by-fragment with clamped
/// nearest-neighbour sampling and the blend equation.
fn reference_draw(tex: &Surface, fb: &mut Surface, quad: &Quad, blend: BlendOp) {
    for frag in quad.fragments() {
        let (tx, ty) = frag.texel_xy();
        let src = tex.get_clamped(tx, ty);
        let dst = fb.get(frag.x, frag.y);
        fb.set(frag.x, frag.y, blend.apply(src, dst));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn device_matches_reference_on_separable_quads(
        x0 in 0u32..12,
        y0 in 0u32..12,
        wdt in 1u32..12,
        hgt in 1u32..12,
        // Corner texcoords, possibly reversed and out of range (clamping).
        u0 in -8.0f32..24.0,
        u1 in -8.0f32..24.0,
        v0 in -8.0f32..24.0,
        v1 in -8.0f32..24.0,
        blend_sel in 0u8..4,
    ) {
        let (tw, th) = (16u32, 16u32);
        let tex_data = patterned(tw, th);
        let blend = [BlendOp::Replace, BlendOp::Min, BlendOp::Max, BlendOp::Add][blend_sel as usize];
        // Clamp to the framebuffer: quads may not exceed the render target.
        let rect = Rect::new(x0, y0, (x0 + wdt).min(16), (y0 + hgt).min(16));
        let quad = Quad::mapped(rect, u0, u1, v0, v1);

        // Device execution.
        let mut dev = Device::ideal();
        let tex = dev.upload_texture(tex_data.clone());
        dev.resize_framebuffer(16, 16);
        // Seed the framebuffer with a pattern so Min/Max/Add are non-trivial.
        let seed = patterned(16, 16);
        let seed_tex = dev.upload_texture(seed.clone());
        dev.draw_quads(seed_tex, &[Quad::copy(Rect::new(0, 0, 16, 16))], BlendOp::Replace);
        dev.draw_quads(tex, &[quad], blend);

        // Reference execution.
        let mut fb = seed;
        reference_draw(&tex_data, &mut fb, &quad, blend);

        prop_assert_eq!(dev.framebuffer().texels(), fb.texels());
    }

    #[test]
    fn copy_quads_are_identity_everywhere(
        x0 in 0u32..10,
        y0 in 0u32..10,
        wdt in 1u32..6,
        hgt in 1u32..6,
    ) {
        let tex_data = patterned(16, 16);
        let mut dev = Device::ideal();
        let tex = dev.upload_texture(tex_data.clone());
        dev.resize_framebuffer(16, 16);
        let rect = Rect::new(x0, y0, x0 + wdt, y0 + hgt);
        dev.draw_quads(tex, &[Quad::copy(rect)], BlendOp::Replace);
        for y in y0..y0 + hgt {
            for x in x0..x0 + wdt {
                prop_assert_eq!(dev.framebuffer().get(x, y), tex_data.get(x, y));
            }
        }
    }

    #[test]
    fn blend_time_accounting_is_monotone_in_area(
        w1 in 1u32..8,
        w2 in 9u32..16,
    ) {
        // More fragments must never cost less simulated time.
        let tex_data = patterned(16, 16);
        let time_for = |w: u32| {
            let mut dev = Device::new(gsm_gpu::GpuCostModel::geforce_6800_ultra());
            let tex = dev.upload_texture(tex_data.clone());
            dev.resize_framebuffer(16, 16);
            dev.draw_quads(tex, &[Quad::copy(Rect::new(0, 0, w, 16))], BlendOp::Min);
            dev.stats().render_time
        };
        prop_assert!(time_for(w1) <= time_for(w2));
    }
}
