//! ε-approximate quantile estimation over the entire stream history
//! (paper §5.2).
//!
//! Windows of `⌈1/ε⌉` elements are sorted on the engine, sampled into GK04
//! summaries at ε/2, and folded into an exponential histogram of summaries.
//! Any φ-quantile query is answered within `ε·N` ranks.

use gsm_gpu::TextureFormat;
use gsm_model::SimTime;
use gsm_sketch::ExpHistogram;

use crate::engine::Engine;
use crate::pipeline::WindowedPipeline;
use crate::report::TimeBreakdown;

/// Builder for [`QuantileEstimator`].
#[derive(Clone, Debug)]
pub struct QuantileEstimatorBuilder {
    eps: f64,
    engine: Engine,
    n_hint: u64,
    window: Option<usize>,
    format: TextureFormat,
}

impl QuantileEstimatorBuilder {
    /// Selects the sorting engine (default: [`Engine::GpuSim`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Hints the expected stream length (default: 100 M, the paper's
    /// workload). Governs the exponential histogram's level budgeting.
    pub fn n_hint(mut self, n: u64) -> Self {
        self.n_hint = n;
        self
    }

    /// GPU texture storage format (default 32-bit). `Rgba16F` halves bus
    /// traffic and is lossless for f16-grid streams like the paper's.
    pub fn texture_format(mut self, format: TextureFormat) -> Self {
        self.format = format;
        self
    }

    /// Overrides the window size (default: `max(⌈1/ε⌉, 1024)`).
    ///
    /// Larger windows amortize summary maintenance: a window's summary is
    /// only ~2/ε entries, so with windows well above that size the sort
    /// phase dominates (the 85–90 % the paper reports in §5.2), and the
    /// GPU batch has enough work to amortize its per-pass overheads.
    pub fn window(mut self, window: usize) -> Self {
        self.window = Some(window);
        self
    }

    /// Builds the estimator.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1` and the window/hint are consistent.
    pub fn build(self) -> QuantileEstimator {
        assert!(self.eps > 0.0 && self.eps < 1.0, "eps must be in (0, 1)");
        let window = self
            .window
            .unwrap_or_else(|| ((1.0 / self.eps).ceil() as usize).max(1024));
        assert!(window >= 2, "window must hold at least two elements");
        let sketch = ExpHistogram::new(self.eps, window, self.n_hint.max(window as u64));
        QuantileEstimator {
            eps: self.eps,
            pipeline: WindowedPipeline::new(self.engine, window, sketch)
                .with_texture_format(self.format),
        }
    }
}

/// Streaming ε-approximate quantile estimator with engine-offloaded window
/// sorting.
pub struct QuantileEstimator {
    eps: f64,
    pipeline: WindowedPipeline<ExpHistogram>,
}

impl QuantileEstimator {
    /// Starts building an estimator with error bound `eps`.
    ///
    /// ```
    /// use gsm_core::{Engine, QuantileEstimator};
    ///
    /// let mut est = QuantileEstimator::builder(0.01).engine(Engine::Host).build();
    /// est.push_all((0..10_000).map(|i| i as f32));
    /// let median = est.query(0.5);
    /// assert!((4800.0..5200.0).contains(&median));
    /// ```
    pub fn builder(eps: f64) -> QuantileEstimatorBuilder {
        QuantileEstimatorBuilder {
            eps,
            engine: Engine::GpuSim,
            n_hint: 100_000_000,
            window: None,
            format: TextureFormat::Rgba32F,
        }
    }

    /// The error bound.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The window size in elements.
    pub fn window(&self) -> usize {
        self.pipeline.window()
    }

    /// The engine sorting the windows.
    pub fn engine(&self) -> Engine {
        self.pipeline.engine()
    }

    /// Elements pushed so far (including any still buffered).
    pub fn count(&self) -> u64 {
        self.pipeline.sink().count() + self.pipeline.unabsorbed()
    }

    /// Summary entries currently held (memory footprint).
    pub fn entry_count(&self) -> usize {
        self.pipeline.sink().entry_count()
    }

    /// Pushes one stream element.
    pub fn push(&mut self, value: f32) {
        self.pipeline.push(value);
    }

    /// Pushes every element of an iterator.
    pub fn push_all<I: IntoIterator<Item = f32>>(&mut self, values: I) {
        for v in values {
            self.push(v);
        }
    }

    /// Forces all buffered data (partial window + pending GPU batch)
    /// through the pipeline and into the sketch.
    pub fn flush(&mut self) {
        self.pipeline.flush();
    }

    /// Answers a φ-quantile query over everything pushed so far: a value
    /// whose rank is within `ε·N` of `⌈φ·N⌉`. Flushes first.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been pushed.
    pub fn query(&mut self, phi: f64) -> f32 {
        self.flush();
        self.pipeline.sink().query(phi)
    }

    /// The k-th largest element (within `ε·N` ranks) — the selection query
    /// the paper's predecessor system ran on GPUs (\[20\], "kth largest
    /// numbers"). `k = 1` is the maximum. Flushes first.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been pushed or `k` is 0 or exceeds the count.
    pub fn kth_largest(&mut self, k: u64) -> f32 {
        self.flush();
        let n = self.count();
        assert!(k >= 1 && k <= n, "k must be in 1..={n}");
        self.query((n - k + 1) as f64 / n as f64)
    }

    /// An equi-depth histogram with `buckets` buckets: boundary values at
    /// ranks `i·N/buckets`, each within `ε·N` ranks — the paper's §3.2
    /// histogram-maintenance application. Returns `buckets + 1` boundaries
    /// (min … max). Flushes first.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been pushed or `buckets == 0`.
    pub fn equi_depth_histogram(&mut self, buckets: usize) -> Vec<f32> {
        assert!(buckets > 0, "need at least one bucket");
        self.flush();
        (0..=buckets)
            .map(|i| self.query(i as f64 / buckets as f64))
            .collect()
    }

    /// Where the simulated time went (Figure 7's timings; the quantile
    /// analogue of Figure 6's split).
    pub fn breakdown(&self) -> TimeBreakdown {
        self.pipeline.breakdown()
    }

    /// Total simulated time.
    pub fn total_time(&self) -> SimTime {
        self.breakdown().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_sketch::exact::ExactStats;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(0.0..1.0)).collect()
    }

    fn check_engine(engine: Engine, n: usize, eps: f64) {
        let data = uniform(n, 42);
        let mut est = QuantileEstimator::builder(eps)
            .engine(engine)
            .n_hint(n as u64)
            .build();
        est.push_all(data.iter().copied());
        let oracle = ExactStats::new(&data);
        for phi in [0.05, 0.25, 0.5, 0.75, 0.95] {
            let err = oracle.quantile_rank_error(phi, est.query(phi));
            assert!(
                err <= eps + 2.0 / n as f64,
                "{engine:?} phi={phi} err={err}"
            );
        }
    }

    #[test]
    fn host_engine_within_eps() {
        check_engine(Engine::Host, 50_000, 0.01);
    }

    #[test]
    fn gpu_engine_within_eps() {
        check_engine(Engine::GpuSim, 20_000, 0.02);
    }

    #[test]
    fn cpu_engine_within_eps() {
        check_engine(Engine::CpuSim, 20_000, 0.02);
    }

    #[test]
    fn engines_agree_exactly() {
        let data = uniform(10_000, 7);
        let answers: Vec<f32> = [Engine::GpuSim, Engine::CpuSim, Engine::Host]
            .into_iter()
            .map(|e| {
                let mut est = QuantileEstimator::builder(0.02)
                    .engine(e)
                    .n_hint(10_000)
                    .build();
                est.push_all(data.iter().copied());
                est.query(0.5)
            })
            .collect();
        assert_eq!(answers[0], answers[1]);
        assert_eq!(answers[1], answers[2]);
    }

    #[test]
    fn breakdown_is_sort_dominated() {
        let data = uniform(40_000, 9);
        let mut est = QuantileEstimator::builder(0.005)
            .engine(Engine::CpuSim)
            .n_hint(40_000)
            .build();
        est.push_all(data.iter().copied());
        est.flush();
        let b = est.breakdown();
        assert!(b.sort_fraction() > 0.7, "sorting should dominate: {b}");
    }

    #[test]
    fn partial_window_is_not_lost() {
        let mut est = QuantileEstimator::builder(0.1)
            .engine(Engine::Host)
            .window(100)
            .n_hint(1000)
            .build();
        est.push_all((0..150).map(|i| i as f32));
        assert_eq!(est.count(), 150);
        let _ = est.query(1.0);
        assert_eq!(est.count(), 150);
    }

    #[test]
    fn gpu_memory_footprint_far_below_stream() {
        let data = uniform(100_000, 3);
        let mut est = QuantileEstimator::builder(0.01)
            .engine(Engine::Host)
            .n_hint(100_000)
            .build();
        est.push_all(data.iter().copied());
        est.flush();
        assert!(
            est.entry_count() < 20_000,
            "entries = {}",
            est.entry_count()
        );
    }

    #[test]
    #[should_panic(expected = "eps must be in")]
    fn bad_eps_rejected() {
        let _ = QuantileEstimator::builder(1.5).build();
    }

    #[test]
    fn kth_largest_selection() {
        let n = 10_000usize;
        let mut est = QuantileEstimator::builder(0.01)
            .engine(Engine::Host)
            .n_hint(n as u64)
            .build();
        // A permuted ramp: the k-th largest of 0..n is n-k.
        est.push_all((0..n).map(|i| ((i * 7919) % n) as f32));
        let bound = (0.01 * n as f64).ceil() as i64 + 1;
        for k in [1u64, 10, 100, 5000] {
            let got = est.kth_largest(k) as i64;
            let want = n as i64 - k as i64;
            assert!(
                (got - want).abs() <= bound,
                "k={k}: got {got}, want {want}±{bound}"
            );
        }
    }

    #[test]
    fn equi_depth_histogram_boundaries() {
        let n = 20_000usize;
        let mut est = QuantileEstimator::builder(0.005)
            .engine(Engine::Host)
            .n_hint(n as u64)
            .build();
        est.push_all(uniform(n, 77));
        let bounds = est.equi_depth_histogram(10);
        assert_eq!(bounds.len(), 11);
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "boundaries must ascend"
        );
        // Uniform data: boundary i sits near i/10.
        for (i, b) in bounds.iter().enumerate() {
            assert!((b - i as f32 / 10.0).abs() < 0.03, "boundary {i} = {b}");
        }
    }
}
