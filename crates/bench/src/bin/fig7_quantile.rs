//! **Figure 7** — quantile estimation throughput, GPU vs CPU, across ε.
//!
//! Paper: "the GPU performance is comparable to a high-end Pentium IV CPU
//! … For low window sizes, the performance of the CPU-based algorithm is
//! better. This is mainly due to the fact that the elements in the window
//! fit within the L2 cache on the CPU." Windows here are `⌈1/ε⌉` elements
//! (at least 1 K), so the ε sweep is also a window-size sweep.
//!
//! Also verifies each configuration's answers against the exact oracle —
//! reported as the worst observed rank error over a φ-grid, which must stay
//! below ε.
//!
//! ```text
//! cargo run --release -p gsm-bench --bin fig7_quantile [-- --n 4194304 --full --csv]
//! ```

use gsm_bench::{human_n, Args, Table};
use gsm_core::{Engine, QuantileEstimator};
use gsm_sketch::exact::ExactStats;
use gsm_stream::UniformGen;

fn main() {
    let args = Args::parse();
    let csv = args.flag("csv");
    let n: usize = if args.flag("full") {
        100 << 20
    } else {
        args.get_num("n", 4 << 20)
    };
    let check = !args.flag("no-check");

    let eps_list: Vec<f64> = (10..=16).map(|k| (2.0f64).powi(-k)).collect();

    println!(
        "# Figure 7: quantile estimation on a {} uniform random stream\n",
        human_n(n)
    );
    let mut table = Table::new([
        "eps",
        "window",
        "GPU total ms",
        "CPU total ms",
        "GPU/CPU",
        "worst rank err",
    ]);

    let data: Vec<f32> = UniformGen::unit(42).take(n).collect();
    let oracle = check.then(|| ExactStats::new(&data));

    for &eps in &eps_list {
        let mut times = Vec::new();
        let mut window = 0usize;
        let mut worst_err = 0.0f64;
        for engine in [Engine::GpuSim, Engine::CpuSim] {
            let mut est = QuantileEstimator::builder(eps)
                .engine(engine)
                .n_hint(n as u64)
                .build();
            est.push_all(data.iter().copied());
            est.flush();
            window = est.window();
            if let (Some(oracle), Engine::GpuSim) = (&oracle, engine) {
                for phi in [0.05, 0.25, 0.5, 0.75, 0.95] {
                    let err = oracle.quantile_rank_error(phi, est.query(phi));
                    worst_err = worst_err.max(err);
                }
            }
            times.push(est.total_time());
        }
        table.row([
            format!("2^-{}", (1.0 / eps).log2() as u32),
            window.to_string(),
            format!("{:.3}", times[0].as_millis()),
            format!("{:.3}", times[1].as_millis()),
            format!("{:.2}", times[0].as_secs() / times[1].as_secs()),
            if check {
                format!("{worst_err:.6}")
            } else {
                "-".into()
            },
        ]);
    }
    table.print(csv);
    println!("\n# every worst rank err is below its eps; GPU ~ CPU overall, CPU ahead at small windows (L2-resident).");
}
