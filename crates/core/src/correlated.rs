//! Correlated sum aggregates with engine-offloaded key sorting
//! (paper §1.2's second extension application).
//!
//! # Co-processor split
//!
//! The GPU sorts the window's `x` keys (the expensive part); the CPU then
//! *gathers* each key's `y` payload by binary-searching the original pairs
//! against the sorted key run. Since any intra-group order of equal keys is
//! a valid tie-break for a prefix-sum summary, the gather may associate
//! duplicate keys' payloads in any order. The gather is `O(W log W)`
//! comparisons but branch-friendly and sequential — far cheaper than the
//! sort it replaces — and is priced into the merge phase.

use gsm_model::SimTime;
use gsm_sketch::{CorrelatedSum, OpCounter, SinkOps, SummarySink};

use crate::engine::Engine;
use crate::pipeline::WindowedPipeline;
use crate::report::TimeBreakdown;

/// The correlated-sum summary behind the [`SummarySink`] seam: receives
/// each window's *sorted keys*, gathers the matching payloads from the raw
/// window (queued in submission order, which the pipeline preserves), and
/// folds the re-paired window into the sketch. Gather work is reported in
/// its own [`SinkOps`] lane so the ledger prices it into the merge phase.
struct CorrelatedSink {
    sketch: CorrelatedSum,
    /// Raw windows awaiting their sorted keys (parallel to the pipeline's
    /// internal queue, drained in the same order).
    raw_queue: std::collections::VecDeque<Vec<(f32, f32)>>,
    gather_ops: OpCounter,
}

impl SummarySink for CorrelatedSink {
    fn push_sorted_window(&mut self, sorted: &[f32]) {
        let raw = self
            .raw_queue
            .pop_front()
            .expect("raw window per sorted run");
        let pairs = gather_pairs(sorted, &raw, &mut self.gather_ops);
        self.sketch.push_sorted_window(&pairs);
    }

    fn ops(&self) -> SinkOps {
        SinkOps {
            merge: self.sketch.ops(),
            gather: self.gather_ops,
            ..SinkOps::default()
        }
    }
}

/// Streaming ε-approximate correlated-sum estimator:
/// `SUM{ y : x ≤ Q_φ(x) }` with per-window key sorting on the engine.
pub struct CorrelatedSumEstimator {
    buffer: Vec<(f32, f32)>,
    window: usize,
    pipeline: WindowedPipeline<CorrelatedSink>,
}

impl CorrelatedSumEstimator {
    /// Creates an estimator with error bound `eps` (rank error of the
    /// cut-point; the mass bounds follow, see [`gsm_sketch::correlated`]).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1`.
    pub fn new(eps: f64, engine: Engine, n_hint: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
        let window = ((1.0 / eps).ceil() as usize).max(1024);
        let sketch = CorrelatedSum::new(eps, window, n_hint.max(window as u64));
        let sink = CorrelatedSink {
            sketch,
            raw_queue: std::collections::VecDeque::new(),
            gather_ops: OpCounter::default(),
        };
        CorrelatedSumEstimator {
            buffer: Vec::with_capacity(window),
            window,
            pipeline: WindowedPipeline::new(engine, window, sink),
        }
    }

    /// The window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The engine sorting the keys.
    pub fn engine(&self) -> Engine {
        self.pipeline.engine()
    }

    /// Pairs pushed so far.
    pub fn count(&self) -> u64 {
        self.pipeline.sink().sketch.count() + self.buffer.len() as u64 + self.pipeline.unabsorbed()
    }

    /// Pushes one `(x, y)` pair (`y ≥ 0`).
    pub fn push(&mut self, x: f32, y: f32) {
        debug_assert!(x.is_finite() && y >= 0.0, "x finite, y non-negative");
        self.buffer.push((x, y));
        if self.buffer.len() == self.window {
            let w = core::mem::replace(&mut self.buffer, Vec::with_capacity(self.window));
            self.submit(w);
        }
    }

    /// Pushes every pair of an iterator.
    pub fn push_all<I: IntoIterator<Item = (f32, f32)>>(&mut self, pairs: I) {
        for (x, y) in pairs {
            self.push(x, y);
        }
    }

    fn submit(&mut self, raw: Vec<(f32, f32)>) {
        let keys: Vec<f32> = raw.iter().map(|&(x, _)| x).collect();
        self.pipeline.sink_mut().raw_queue.push_back(raw);
        self.pipeline.submit_window(keys);
    }

    /// Forces buffered data into the sketch.
    pub fn flush(&mut self) {
        if !self.buffer.is_empty() {
            let w = core::mem::take(&mut self.buffer);
            self.submit(w);
        }
        self.pipeline.flush();
    }

    /// Bounds on `SUM{ y : x ≤ Q_φ(x) }` over everything pushed. Flushes
    /// first.
    pub fn query_sum(&mut self, phi: f64) -> (f64, f64) {
        self.flush();
        self.pipeline.sink().sketch.query_sum(phi)
    }

    /// The midpoint estimate of [`Self::query_sum`].
    pub fn estimate_sum(&mut self, phi: f64) -> f64 {
        let (lo, hi) = self.query_sum(phi);
        (lo + hi) / 2.0
    }

    /// Exact total Σy (tracked exactly). Flushes first.
    pub fn total_sum(&mut self) -> f64 {
        self.flush();
        self.pipeline.sink().sketch.total_sum()
    }

    /// Where the simulated time went. The gather work lands in the merge
    /// phase alongside the sketch's own maintenance.
    pub fn breakdown(&self) -> TimeBreakdown {
        self.pipeline.breakdown()
    }

    /// Total simulated time.
    pub fn total_time(&self) -> SimTime {
        self.breakdown().total()
    }
}

/// Re-associates payloads with a sorted key run.
///
/// Groups the raw pairs' payloads by key, then walks the sorted run
/// emitting one payload per key occurrence. Intra-group payload order is
/// arbitrary (a valid tie-break). Charges one binary search per pair.
fn gather_pairs(sorted_keys: &[f32], raw: &[(f32, f32)], ops: &mut OpCounter) -> Vec<(f32, f32)> {
    debug_assert_eq!(sorted_keys.len(), raw.len());
    // Distinct keys of the sorted run, with their start offsets.
    let mut out: Vec<(f32, f32)> = sorted_keys.iter().map(|&x| (x, 0.0)).collect();
    let mut cursor: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    let log = (sorted_keys.len().max(2)).ilog2() as u64;
    for &(x, y) in raw {
        ops.comparisons += log;
        ops.moves += 1;
        let slot = cursor
            .entry(x.to_bits())
            .or_insert_with(|| sorted_keys.partition_point(|&k| k < x));
        debug_assert_eq!(sorted_keys[*slot], x, "payload key must exist in the run");
        out[*slot].1 = y;
        *slot += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn exact_correlated_sum(pairs: &[(f32, f32)], phi: f64) -> f64 {
        let mut sorted = pairs.to_vec();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let r = ((phi * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[..r].iter().map(|&(_, y)| y as f64).sum()
    }

    fn random_pairs(n: usize, seed: u64) -> Vec<(f32, f32)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                (
                    (rng.random_range(0..4000) as f32) / 4.0, // duplicated key grid
                    rng.random_range(0.0..5.0),
                )
            })
            .collect()
    }

    #[test]
    fn gather_reassociates_payloads() {
        let raw = vec![(3.0f32, 30.0f32), (1.0, 10.0), (2.0, 20.0), (1.0, 11.0)];
        let sorted_keys = vec![1.0f32, 1.0, 2.0, 3.0];
        let mut ops = OpCounter::default();
        let pairs = gather_pairs(&sorted_keys, &raw, &mut ops);
        assert_eq!(pairs.iter().map(|p| p.0).collect::<Vec<_>>(), sorted_keys);
        // The two 1.0-payloads land on the two 1.0 slots in some order.
        let ys: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        assert!(ys[..2] == [10.0, 11.0] || ys[..2] == [11.0, 10.0]);
        assert_eq!(ys[2], 20.0);
        assert_eq!(ys[3], 30.0);
        assert!(ops.total() > 0);
    }

    #[test]
    fn bounds_contain_exact_on_every_engine() {
        let pairs = random_pairs(30_000, 1);
        let eps = 0.01;
        for engine in [Engine::GpuSim, Engine::CpuSim, Engine::Host] {
            let mut est = CorrelatedSumEstimator::new(eps, engine, pairs.len() as u64);
            est.push_all(pairs.iter().copied());
            for phi in [0.25, 0.5, 0.75] {
                let exact = exact_correlated_sum(&pairs, phi);
                let (lo, hi) = est.query_sum(phi);
                let slack = eps * pairs.len() as f64 * 5.0; // eps·N positions × y_max
                assert!(
                    lo - slack <= exact && exact <= hi + slack,
                    "{engine:?} phi={phi}: [{lo:.0},{hi:.0}] vs {exact:.0}"
                );
            }
            let total: f64 = pairs.iter().map(|&(_, y)| y as f64).sum();
            assert!((est.total_sum() - total).abs() < 1e-6 * total, "{engine:?}");
        }
    }

    #[test]
    fn engines_agree() {
        let pairs = random_pairs(10_000, 2);
        let answers: Vec<(f64, f64)> = [Engine::GpuSim, Engine::CpuSim, Engine::Host]
            .into_iter()
            .map(|e| {
                let mut est = CorrelatedSumEstimator::new(0.02, e, 10_000);
                est.push_all(pairs.iter().copied());
                est.query_sum(0.5)
            })
            .collect();
        // Tie-break order inside duplicate-key groups is arbitrary but the
        // prefix-sum *bounds* at sampled ranks are order-independent.
        assert_eq!(answers[0], answers[1]);
        assert_eq!(answers[1], answers[2]);
    }

    #[test]
    fn breakdown_is_sort_dominated() {
        let pairs = random_pairs(50_000, 3);
        let mut est = CorrelatedSumEstimator::new(0.001, Engine::CpuSim, 50_000);
        est.push_all(pairs.iter().copied());
        est.flush();
        let b = est.breakdown();
        assert!(b.sort_fraction() > 0.5, "{b}");
    }
}
