//! **Figure 4** — GPU sort time breakdown: computation vs data transfer,
//! plus the paper's two analytical checks:
//!
//! 1. the `O(n log² n)` scaling fit anchored at the largest size ("we used
//!    an input size of 8M as the base reference for n and estimated the
//!    time taken to sort the remaining data sizes … within a few
//!    milliseconds of accuracy"), and
//! 2. the effective cycles per blending operation ("we observed that the
//!    GPU requires 6–7 clock cycles to perform one blending operation",
//!    E6 in DESIGN.md).
//!
//! ```text
//! cargo run --release -p gsm-bench --bin fig4_breakdown [-- --max 8388608 --csv]
//! ```

use gsm_bench::{human_n, ms, Args, Table};
use gsm_sort::{SortEngine, Sorter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args = Args::parse();
    let csv = args.flag("csv");
    let max: usize = args.get_num("max", 8 << 20);

    let mut sizes = Vec::new();
    let mut n = 64 << 10;
    while n <= max {
        sizes.push(n);
        n *= 2;
    }

    struct Point {
        n: usize,
        gpu_ms: f64,
        transfer_ms: f64,
        merge_ms: f64,
        blend_ops: u64,
    }

    let mut points = Vec::new();
    for &n in &sizes {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let data: Vec<f32> = (0..n).map(|_| rng.random_range(0.0..1.0e6)).collect();
        let r = Sorter::new(SortEngine::GpuPbsn).sort(&data);
        let gs = r.gpu_stats.as_ref().expect("gpu engine");
        points.push(Point {
            n,
            gpu_ms: r.gpu_time.as_millis(),
            transfer_ms: r.transfer_time.as_millis(),
            merge_ms: r.cpu_time.as_millis(),
            blend_ops: gs.blend_ops,
        });
    }

    // n log² n model anchored at the largest measured size (per channel:
    // m = n/4 values → time ∝ m · log²m).
    let anchor = points.last().expect("at least one size");
    let model = |n: usize| {
        let m = (n / 4) as f64;
        let lg = m.log2();
        let m_a = (anchor.n / 4) as f64;
        let lg_a = m_a.log2();
        anchor.gpu_ms * (m * lg * lg) / (m_a * lg_a * lg_a)
    };

    println!(
        "# Figure 4: GPU PBSN time split + O(n log^2 n) fit (anchor = {})\n",
        human_n(anchor.n)
    );
    let mut table = Table::new([
        "n",
        "GPU compute ms",
        "transfer ms",
        "CPU merge ms",
        "total ms",
        "n log^2 n model ms",
        "model err ms",
    ]);
    for p in &points {
        let total = p.gpu_ms + p.transfer_ms + p.merge_ms;
        let est = model(p.n);
        table.row([
            human_n(p.n),
            format!("{:.3}", p.gpu_ms),
            format!("{:.3}", p.transfer_ms),
            format!("{:.3}", p.merge_ms),
            format!("{:.3}", total),
            format!("{:.3}", est),
            format!("{:+.3}", est - p.gpu_ms),
        ]);
    }
    table.print(csv);

    // E6: effective cycles per blend, computed the paper's way — total GPU
    // sort cycles (400 MHz core clock) times the pipe count, divided by the
    // number of blending operations.
    println!("\n# E6: effective cycles per blending operation (paper: 6-7)");
    let mut e6 = Table::new(["n", "blend ops", "cycles/blend"]);
    for p in &points {
        let cycles = p.gpu_ms / 1e3 * 400e6 * 16.0;
        e6.row([
            human_n(p.n),
            p.blend_ops.to_string(),
            format!("{:.2}", cycles / p.blend_ops as f64),
        ]);
    }
    e6.print(csv);

    println!("\n# transfer stays flat and far below compute: the CPU-GPU bus is not the bottleneck (paper Fig. 4)");
    let _ = ms; // (ms helper used by sibling harnesses)
}
