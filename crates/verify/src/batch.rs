//! The scalar-vs-batch ingest identity verifier.
//!
//! The batched ingest plane (`StreamEngine::push_batch`) promises byte
//! identity with the scalar `push` loop: same window seals, same
//! checkpoints, same answers, no matter how the caller slices the stream
//! into batches. This module certifies that promise the same way the
//! other drivers certify theirs — differentially. One adversarial stream
//! is ingested twice per cell, once element-at-a-time and once in
//! fixed-size batches, across engines × shard counts × adversarial batch
//! lengths, and both the answer fingerprints (all five query kinds) and
//! the full checkpoint envelopes must match byte for byte.
//!
//! The audited batch lengths are the boundary-adversarial set: `1` (the
//! degenerate batch), `7` (never aligns with a window), `window` (always
//! aligns), `window + 1` (drifts one element per batch), and `3·window`
//! (spans several seals per call).

use gsm_core::Engine;
use gsm_dsms::{QueryId, StreamEngine};

use crate::diff::{EngineRun, Fnv, VerifyConfig};
use crate::gen::StreamSpec;

/// The boundary-adversarial batch lengths audited for a given window.
pub fn canonical_batch_sizes(window: usize) -> [usize; 5] {
    [1, 7, window, window + 1, 3 * window]
}

/// The verdict for one engine × shard count × batch length cell.
#[derive(Clone, Debug, serde::Serialize)]
pub struct BatchRun {
    /// Shard count both engines fanned across.
    pub shards: usize,
    /// Batch length the batched engine ingested with.
    pub batch: usize,
    /// Engine label and the batched run's answer fingerprint.
    pub run: EngineRun,
    /// Whether the batched answers matched the scalar reference byte for
    /// byte.
    pub answers_match: bool,
    /// Whether the batched checkpoint envelope matched the scalar
    /// reference byte for byte.
    pub checkpoint_matches: bool,
}

impl BatchRun {
    /// Whether this cell held the identity contract.
    pub fn passed(&self) -> bool {
        self.answers_match && self.checkpoint_matches
    }
}

/// The batched-ingest verdict for one adversarial stream.
#[derive(Clone, Debug, serde::Serialize)]
pub struct BatchedFamilyOutcome {
    /// Generator family name.
    pub family: String,
    /// Generator seed.
    pub seed: u64,
    /// Stream length.
    pub n: u64,
    /// The engines' shared sealed window.
    pub window: u64,
    /// One verdict per engine × shard count × batch length.
    pub runs: Vec<BatchRun>,
}

impl BatchedFamilyOutcome {
    /// Whether every cell held the identity contract.
    pub fn passed(&self) -> bool {
        self.runs.iter().all(BatchRun::passed)
    }

    /// Human-readable description of every failure in this outcome.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for r in &self.runs {
            if !r.answers_match {
                out.push(format!(
                    "{} {} k={} batch={}: batched answers diverged from scalar ({:#x})",
                    self.family, r.run.engine, r.shards, r.batch, r.run.fingerprint
                ));
            }
            if !r.checkpoint_matches {
                out.push(format!(
                    "{} {} k={} batch={}: batched checkpoint diverged from scalar",
                    self.family, r.run.engine, r.shards, r.batch
                ));
            }
        }
        out
    }
}

/// One fully-answered engine: the checkpoint envelope plus a fingerprint
/// over every query kind's answers.
struct RunResult {
    checkpoint: String,
    fingerprint: u64,
}

/// Builds an engine with all five query kinds registered — the same
/// configuration for the scalar and the batched side of every cell.
fn build_engine(
    engine: Engine,
    cfg: &VerifyConfig,
    n: usize,
    shards: usize,
) -> (StreamEngine, [QueryId; 5]) {
    let mut eng = StreamEngine::new(engine)
        .with_n_hint(n as u64)
        .with_shards(shards);
    let sq_width = (n / 4).max((2.0 / cfg.sliding_eps).ceil() as usize);
    let sf_width = (n / 4).max((4.0 / cfg.sliding_eps).ceil() as usize);
    let ids = [
        eng.register_quantile(cfg.quantile_eps),
        eng.register_frequency(cfg.frequency_eps),
        eng.register_hhh(
            cfg.frequency_eps,
            gsm_core::BitPrefixHierarchy::new(vec![4, 8]),
        ),
        eng.register_sliding_quantile(cfg.sliding_eps, sq_width),
        eng.register_sliding_frequency(cfg.sliding_eps, sf_width),
    ];
    (eng, ids)
}

/// Checkpoints, then answers every registered query and fingerprints the
/// lot. `checkpoint` flushes and the answer path flushes too — both sides
/// of a cell execute the identical sequence, so the comparison is exact.
fn drain(mut eng: StreamEngine, ids: [QueryId; 5], cfg: &VerifyConfig) -> RunResult {
    let checkpoint = eng.checkpoint();
    let mut h = Fnv::new();
    for &phi in &cfg.phis {
        h.u64(phi.to_bits());
        h.f32(eng.quantile(ids[0], phi));
    }
    for (v, c) in eng.heavy_hitters(ids[1], cfg.support) {
        h.f32(v);
        h.u64(c);
    }
    for e in eng.hhh(ids[2], cfg.support) {
        h.u64(e.level as u64);
        h.f32(e.prefix);
        h.u64(e.discounted_count);
        h.u64(e.raw_count);
    }
    for &phi in &cfg.phis {
        h.u64(phi.to_bits());
        h.f32(eng.sliding_quantile(ids[3], phi));
    }
    for (v, c) in eng.sliding_heavy_hitters(ids[4], cfg.support + cfg.sliding_eps) {
        h.f32(v);
        h.u64(c);
    }
    RunResult {
        checkpoint,
        fingerprint: h.0,
    }
}

/// Certifies scalar-vs-batch ingest identity for one adversarial stream:
/// every configured engine × every shard count in `shard_counts` × the
/// [`canonical_batch_sizes`] of the sealed window. The scalar reference
/// is ingested through the public `push` loop; each batched run slices
/// the identical stream into fixed-length [`StreamEngine::push_batch`]
/// calls. Answers (all five query kinds) and checkpoint envelopes must
/// match byte for byte.
pub fn verify_family_batched(
    spec: &StreamSpec,
    cfg: &VerifyConfig,
    shard_counts: &[usize],
) -> BatchedFamilyOutcome {
    assert!(!cfg.engines.is_empty(), "need at least one engine");
    assert!(!shard_counts.is_empty(), "need at least one shard count");
    let ids = spec.integer_ids();
    let mut runs = Vec::new();
    let mut window = 0usize;
    for &engine in &cfg.engines {
        for &k in shard_counts {
            let (mut scalar, qids) = build_engine(engine, cfg, ids.len(), k);
            for &v in &ids {
                scalar.push(v);
            }
            window = scalar.window();
            let reference = drain(scalar, qids, cfg);
            for batch in canonical_batch_sizes(window) {
                let (mut batched, qids) = build_engine(engine, cfg, ids.len(), k);
                for chunk in ids.chunks(batch) {
                    batched.push_batch(chunk);
                }
                let result = drain(batched, qids, cfg);
                runs.push(BatchRun {
                    shards: k,
                    batch,
                    run: EngineRun {
                        engine: engine.label().to_string(),
                        fingerprint: result.fingerprint,
                    },
                    answers_match: result.fingerprint == reference.fingerprint,
                    checkpoint_matches: result.checkpoint == reference.checkpoint,
                });
            }
        }
    }
    BatchedFamilyOutcome {
        family: spec.family.name().to_string(),
        seed: spec.seed,
        n: ids.len() as u64,
        window: window as u64,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Family;

    #[test]
    fn batched_ingest_is_byte_identical_on_host() {
        let spec = StreamSpec {
            family: Family::WindowPlusOne,
            seed: 9,
            n: 4096,
            window: 1024,
        };
        let cfg = VerifyConfig {
            engines: vec![Engine::Host],
            ..VerifyConfig::default()
        };
        let outcome = verify_family_batched(&spec, &cfg, &[1, 2]);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures());
        // 1 engine × 2 shard counts × 5 batch lengths.
        assert_eq!(outcome.runs.len(), 10);
    }

    #[test]
    fn divergence_is_described() {
        let spec = StreamSpec {
            family: Family::Uniform,
            seed: 3,
            n: 2048,
            window: 512,
        };
        let cfg = VerifyConfig {
            engines: vec![Engine::Host],
            ..VerifyConfig::default()
        };
        let mut outcome = verify_family_batched(&spec, &cfg, &[1]);
        assert!(outcome.failures().is_empty(), "{:?}", outcome.failures());
        outcome.runs[0].answers_match = false;
        outcome.runs[1].checkpoint_matches = false;
        assert!(!outcome.passed());
        assert_eq!(outcome.failures().len(), 2);
    }
}
