//! The unified window→sort→summary pipeline.
//!
//! Every estimator in this crate — and the DSMS engine above it — does the
//! same thing: buffer stream values into fixed-size windows, sort each
//! window on the configured [`Engine`], and fold the sorted runs into one
//! or more summaries. This module owns that whole path once:
//!
//! * [`SortBackend`] (in [`backend`](self)) — a pluggable sorting device
//!   with its own simulated-time ledger; one implementation per engine.
//! * [`BatchPipeline`] — the batching coordinator that buffers complete
//!   windows and launches sorts per the backend's policy (four windows per
//!   GPU texture, immediate on CPU engines, value-target batches under the
//!   segmented policy).
//! * [`WindowedPipeline`] — the full path: the window buffer, the batch
//!   pipeline, and a [`SummarySink`] consuming every sorted run. Estimators
//!   are thin wrappers around this type plus their query methods.
//! * [`OpLedger`] — the single place where simulated sort/transfer time and
//!   the sink's operation counters combine into a [`TimeBreakdown`]
//!   matching the paper's Figure 6 phase split.

mod backend;
mod batch;
mod parallel;
mod sharded;

pub use backend::{
    backend_for, CpuSimBackend, GpuSimBackend, HostBackend, SortBackend, Submission, GPU_BATCH,
};
pub use batch::BatchPipeline;
pub use parallel::ParallelHostBackend;
pub use sharded::{HashRouter, RangeRouter, RoundRobinRouter, ShardRouter, ShardedPipeline};

use std::time::Instant;

use gsm_cpu::CpuStats;
use gsm_gpu::{GpuStats, TextureFormat};
use gsm_model::SimTime;
use gsm_obs::Recorder;
use gsm_sketch::{SinkOps, SummarySink};

use crate::engine::Engine;
use crate::report::{price_ops, TimeBreakdown, WallClock};

/// The pipeline's combined time-and-operations ledger.
///
/// Collected by [`WindowedPipeline::ledger`]; [`OpLedger::breakdown`] is
/// the one place operation counters are priced into phases: the sink's
/// histogram scan joins the sort phase (the paper's three-way split),
/// gather work joins the merge phase, and the rest map directly.
#[derive(Clone, Copy, Default, Debug)]
pub struct OpLedger {
    /// Simulated device time spent sorting.
    pub sort: SimTime,
    /// Simulated CPU↔device transfer time.
    pub transfer: SimTime,
    /// The sink's cumulative maintenance counters.
    pub ops: SinkOps,
    /// Wall-clock overlap ledger — real background sorting vs. time the
    /// ingest thread spent blocked. All zero on synchronous backends; the
    /// simulated breakdown ([`OpLedger::breakdown`]) never includes it.
    pub wall: WallClock,
}

impl OpLedger {
    /// Prices the ledger into the paper's phase split.
    pub fn breakdown(&self) -> TimeBreakdown {
        TimeBreakdown {
            sort: self.sort + price_ops(self.ops.histogram),
            transfer: self.transfer,
            merge: price_ops(self.ops.merge) + price_ops(self.ops.gather),
            compress: price_ops(self.ops.compress),
        }
    }
}

/// The window→sort→summary path, generic over the summary consuming the
/// sorted runs.
///
/// ```
/// use gsm_core::{Engine, WindowedPipeline};
/// use gsm_sketch::LossyCounting;
///
/// let sketch = LossyCounting::with_window(0.01, 100);
/// let mut p = WindowedPipeline::new(Engine::Host, 100, sketch);
/// for i in 0..1000 {
///     p.push((i % 4) as f32);
/// }
/// p.flush();
/// assert_eq!(p.sink().estimate(0.0), 250);
/// ```
pub struct WindowedPipeline<S> {
    window: usize,
    buffer: Vec<f32>,
    batch: BatchPipeline,
    sink: S,
    obs: Recorder,
    /// Wall-clock start of the window currently filling (first push).
    ingest_started: Option<Instant>,
    /// Simulated-phase totals already published to `obs` as counters, so
    /// each absorption records only the delta since the last one.
    obs_seen: TimeBreakdown,
}

impl<S: SummarySink> WindowedPipeline<S> {
    /// Creates a pipeline cutting the stream into `window`-element windows
    /// sorted on `engine`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(engine: Engine, window: usize, sink: S) -> Self {
        Self::over(BatchPipeline::new(engine), window, sink)
    }

    /// Creates a pipeline over the segmented batching policy (see
    /// [`BatchPipeline::segmented`]).
    pub fn segmented(engine: Engine, window: usize, min_batch_values: usize, sink: S) -> Self {
        Self::over(
            BatchPipeline::segmented(engine, min_batch_values),
            window,
            sink,
        )
    }

    /// Creates a pipeline over an explicit batch pipeline.
    pub fn over(batch: BatchPipeline, window: usize, sink: S) -> Self {
        assert!(window >= 1, "window must hold at least one element");
        WindowedPipeline {
            window,
            buffer: Vec::with_capacity(window),
            batch,
            sink,
            obs: Recorder::disabled(),
            ingest_started: None,
            obs_seen: TimeBreakdown::default(),
        }
    }

    /// Selects the GPU texture storage format (no-op on CPU engines).
    pub fn with_texture_format(mut self, format: TextureFormat) -> Self {
        self.batch.set_texture_format(format);
        self
    }

    /// Installs an observability recorder on the pipeline and its backend.
    ///
    /// The pipeline then emits per-window wall-clock spans
    /// (`window_ingest` / `window_sort` / `window_absorb`), simulated-phase
    /// counters (`sim_sort_ns` / `sim_transfer_ns` / `sim_merge_ns` /
    /// `sim_compress_ns` — deltas of [`OpLedger::breakdown`], so their
    /// totals reconcile with the ledger), a `windows_absorbed` counter, and
    /// whatever device counters the backend publishes. Call at build time,
    /// before the first push.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.batch.set_recorder(rec.clone());
        self.obs = rec;
        self
    }

    /// The pipeline's recorder (disabled unless installed via
    /// [`WindowedPipeline::with_recorder`]).
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// The engine sorting the windows.
    pub fn engine(&self) -> Engine {
        self.batch.engine()
    }

    /// The window size in elements.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The summary consuming the sorted runs.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the summary (for queries that count operations).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consumes the pipeline, returning the summary.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Windows fully sorted so far.
    pub fn windows_sorted(&self) -> u64 {
        self.batch.windows_sorted()
    }

    /// Elements buffered toward the current (incomplete) window.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Elements pushed but not yet folded into the sink: the partial
    /// window plus anything submitted but still awaiting its batch sort.
    pub fn unabsorbed(&self) -> u64 {
        self.buffer.len() as u64 + self.batch.pending_elements()
    }

    /// Pushes one stream element, cutting a window when the buffer fills.
    pub fn push(&mut self, value: f32) {
        debug_assert!(value.is_finite(), "stream values must be finite");
        if self.buffer.is_empty() && self.obs.is_enabled() {
            self.ingest_started = Some(Instant::now());
        }
        self.buffer.push(value);
        if self.buffer.len() == self.window {
            self.finish_ingest_span();
            let w = core::mem::replace(&mut self.buffer, Vec::with_capacity(self.window));
            self.submit_window(w);
        }
    }

    /// Fills the window buffer from a slice, cutting a window each time the
    /// buffer fills.
    ///
    /// This is the columnar counterpart of [`WindowedPipeline::push`]: the
    /// slice is copied into the window buffer in window-sized chunks
    /// (`extend_from_slice`, i.e. one memcpy per chunk) instead of one
    /// element at a time. Window boundaries, seal order, and the
    /// `window_ingest` span are byte-identical to pushing the same values
    /// individually.
    pub fn push_slice(&mut self, values: &[f32]) {
        debug_assert!(
            values.iter().all(|v| v.is_finite()),
            "stream values must be finite"
        );
        let mut rest = values;
        while !rest.is_empty() {
            if self.buffer.is_empty() && self.obs.is_enabled() {
                self.ingest_started = Some(Instant::now());
            }
            let room = self.window - self.buffer.len();
            let take = room.min(rest.len());
            let (chunk, tail) = rest.split_at(take);
            self.buffer.extend_from_slice(chunk);
            rest = tail;
            if self.buffer.len() == self.window {
                self.finish_ingest_span();
                let w = core::mem::replace(&mut self.buffer, Vec::with_capacity(self.window));
                self.submit_window(w);
            }
        }
    }

    /// Closes the ingest span covering the window that just filled.
    fn finish_ingest_span(&mut self) {
        if let Some(started) = self.ingest_started.take() {
            self.obs.span_from("window_ingest", started).finish();
        }
    }

    /// Submits one pre-cut window directly, bypassing the element buffer
    /// (for callers that window the stream themselves, e.g. the
    /// correlated-sum estimator, which extracts keys from pairs).
    pub fn submit_window(&mut self, window: Vec<f32>) {
        let sorted = {
            let _span = self.obs.span("window_sort");
            self.batch.push_window(window)
        };
        self.absorb(sorted);
    }

    /// Forces all buffered data (partial window + pending batch) through
    /// the pipeline and into the sink.
    pub fn flush(&mut self) {
        if !self.buffer.is_empty() {
            self.finish_ingest_span();
            let w = core::mem::take(&mut self.buffer);
            self.submit_window(w);
        }
        let sorted = {
            let _span = self.obs.span("window_sort");
            self.batch.flush()
        };
        self.absorb(sorted);
    }

    /// Folds sorted windows into the sink and publishes the simulated-phase
    /// deltas this absorption added to the ledger.
    fn absorb(&mut self, sorted: Vec<Vec<f32>>) {
        if sorted.is_empty() {
            return;
        }
        let windows = sorted.len() as u64;
        for w in &sorted {
            let _span = self.obs.span("window_absorb");
            self.sink.push_sorted_window(w);
        }
        if self.obs.is_enabled() {
            let now = self.ledger().breakdown();
            self.obs.count("windows_absorbed", windows);
            self.obs
                .count("sim_sort_ns", delta_ns(now.sort, self.obs_seen.sort));
            self.obs.count(
                "sim_transfer_ns",
                delta_ns(now.transfer, self.obs_seen.transfer),
            );
            self.obs
                .count("sim_merge_ns", delta_ns(now.merge, self.obs_seen.merge));
            self.obs.count(
                "sim_compress_ns",
                delta_ns(now.compress, self.obs_seen.compress),
            );
            self.obs_seen = now;
        }
    }

    /// The combined time-and-operations ledger.
    pub fn ledger(&self) -> OpLedger {
        OpLedger {
            sort: self.batch.sort_time(),
            transfer: self.batch.transfer_time(),
            ops: self.sink.ops(),
            wall: self.batch.wall_clock(),
        }
    }

    /// Wall-clock overlap ledger (all zero on synchronous engines).
    pub fn wall_clock(&self) -> WallClock {
        self.batch.wall_clock()
    }

    /// Windows currently sorting in the background. Always zero on
    /// synchronous engines; under [`Engine::ParallelHost`] this is the
    /// overlapped batch that [`WindowedPipeline::flush`] drains.
    pub fn in_flight_windows(&self) -> u64 {
        self.batch.inflight_windows()
    }

    /// Where the simulated time went (the paper's Figure 6 phase split).
    pub fn breakdown(&self) -> TimeBreakdown {
        self.ledger().breakdown()
    }

    /// GPU execution counters, if the GPU engine is active.
    pub fn gpu_stats(&self) -> Option<&GpuStats> {
        self.batch.gpu_stats()
    }

    /// CPU machine counters, if the CPU engine is active.
    pub fn cpu_stats(&self) -> Option<&CpuStats> {
        self.batch.cpu_stats()
    }
}

/// Deterministic replay entry point: runs `data` through a fresh
/// window→sort→summary pipeline on `engine` and returns the finished sink.
///
/// This is the one-call form the verification harness uses to re-drive a
/// recorded stream through the exact production path — same windowing, same
/// batching policy, same backend — so a fuzz failure reproduces from its
/// seed alone.
///
/// ```
/// use gsm_core::{replay, Engine};
/// use gsm_sketch::LossyCounting;
///
/// let data: Vec<f32> = (0..1000).map(|i| (i % 4) as f32).collect();
/// let sketch = replay(Engine::Host, 100, &data, LossyCounting::with_window(0.01, 100));
/// assert_eq!(sketch.estimate(0.0), 250);
/// ```
pub fn replay<S: SummarySink>(engine: Engine, window: usize, data: &[f32], sink: S) -> S {
    let mut p = WindowedPipeline::new(engine, window, sink);
    for &v in data {
        p.push(v);
    }
    p.flush();
    p.into_sink()
}

/// The growth of a simulated phase between two ledger snapshots, in whole
/// nanoseconds. Each recording rounds independently (≤0.5 ns drift per
/// window), so counter totals reconcile with the ledger to within one
/// nanosecond per absorption.
fn delta_ns(now: SimTime, seen: SimTime) -> u64 {
    let ns = (now.as_secs() - seen.as_secs()) * 1e9;
    if ns <= 0.0 {
        0
    } else {
        ns.round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_sketch::{LossyCounting, OpCounter};

    #[test]
    fn windows_cut_and_fan_to_sink() {
        let mut p = WindowedPipeline::new(Engine::Host, 100, LossyCounting::with_window(0.01, 100));
        for i in 0..1050 {
            p.push((i % 4) as f32);
        }
        assert_eq!(p.unabsorbed(), 50, "partial window still buffered");
        assert_eq!(p.buffered(), 50);
        p.flush();
        assert_eq!(p.unabsorbed(), 0);
        assert_eq!(p.sink().count(), 1050);
        assert_eq!(p.windows_sorted(), 11);
    }

    #[test]
    fn gpu_batch_defers_absorption() {
        let mut p = WindowedPipeline::new(Engine::GpuSim, 64, LossyCounting::with_window(0.02, 64));
        for i in 0..(3 * 64) {
            p.push((i % 8) as f32);
        }
        // Three full windows submitted, but the GPU batch holds four.
        assert_eq!(p.unabsorbed(), 3 * 64);
        assert_eq!(p.sink().count(), 0);
        for i in 0..64 {
            p.push((i % 8) as f32);
        }
        assert_eq!(p.unabsorbed(), 0, "fourth window launches the batch");
        assert_eq!(p.sink().count(), 4 * 64);
    }

    #[test]
    fn recorder_observes_pipeline_without_changing_results() {
        let run = |rec: Option<Recorder>| {
            let mut p =
                WindowedPipeline::new(Engine::Host, 64, LossyCounting::with_window(0.02, 64));
            if let Some(r) = rec {
                p = p.with_recorder(r);
            }
            for i in 0..500 {
                p.push((i % 9) as f32);
            }
            p.flush();
            p.sink().estimate(4.0)
        };
        let rec = Recorder::enabled();
        let observed = run(Some(rec.clone()));
        assert_eq!(observed, run(None), "instrumentation never changes data");
        // 7 full windows + 1 partial at flush.
        assert_eq!(rec.counter("windows_absorbed"), 8);
        assert!(rec.counter("host_comparator_calls") > 0);
        assert_eq!(rec.histogram("window_sort").unwrap().count, 9); // 8 + flush
        assert_eq!(rec.histogram("window_ingest").unwrap().count, 8);
        assert_eq!(rec.histogram("window_absorb").unwrap().count, 8);
        // The Host engine charges no simulated sort time, but the sink's
        // priced maintenance ops do flow into the phase counters.
        assert!(rec.counter("sim_merge_ns") > 0);
    }

    #[test]
    fn ledger_prices_histogram_into_sort_phase() {
        let ledger = OpLedger {
            sort: SimTime::from_secs(1.0),
            transfer: SimTime::from_secs(0.25),
            ops: SinkOps {
                histogram: OpCounter {
                    comparisons: 1_000_000,
                    moves: 0,
                },
                merge: OpCounter {
                    comparisons: 0,
                    moves: 2_000_000,
                },
                gather: OpCounter {
                    comparisons: 500_000,
                    moves: 500_000,
                },
                compress: OpCounter {
                    comparisons: 3_000_000,
                    moves: 0,
                },
            },
            wall: WallClock::default(),
        };
        let b = ledger.breakdown();
        assert!(
            b.sort > SimTime::from_secs(1.0),
            "histogram ops join the sort phase"
        );
        assert_eq!(b.transfer, SimTime::from_secs(0.25));
        let merge_only = price_ops(ledger.ops.merge) + price_ops(ledger.ops.gather);
        assert_eq!(b.merge, merge_only);
        assert_eq!(b.compress, price_ops(ledger.ops.compress));
        assert_eq!(
            OpLedger::default().breakdown().total(),
            TimeBreakdown::default().total(),
            "empty ledger prices to zero"
        );
    }

    #[test]
    fn overlapped_engine_keeps_one_batch_in_flight() {
        let mut p = WindowedPipeline::new(
            Engine::ParallelHost,
            64,
            LossyCounting::with_window(0.02, 64),
        );
        for i in 0..(2 * 64) {
            p.push((i % 8) as f32);
        }
        // Window 1 was collected when window 2 launched; window 2 overlaps.
        assert_eq!(p.in_flight_windows(), 1);
        assert_eq!(p.unabsorbed(), 64, "in-flight window counts as unabsorbed");
        assert_eq!(p.sink().count(), 64);
        p.flush();
        assert_eq!(p.in_flight_windows(), 0);
        assert_eq!(p.unabsorbed(), 0);
        assert_eq!(p.sink().count(), 2 * 64);
        assert_eq!(p.windows_sorted(), 2);
    }

    #[test]
    fn engines_agree_through_the_full_path() {
        let answers: Vec<u64> = [
            Engine::GpuSim,
            Engine::CpuSim,
            Engine::Host,
            Engine::ParallelHost,
        ]
        .into_iter()
        .map(|engine| {
            let mut p = WindowedPipeline::new(engine, 200, LossyCounting::with_window(0.005, 200));
            for i in 0..5000u64 {
                p.push(((i * 2654435761) % 97) as f32);
            }
            p.flush();
            p.sink().estimate(13.0)
        })
        .collect();
        assert_eq!(answers[0], answers[1]);
        assert_eq!(answers[1], answers[2]);
        assert_eq!(answers[2], answers[3]);
    }
}
