#![warn(missing_docs)]

//! Shared performance-model primitives for the `gsm` workspace.
//!
//! Every component of the reproduction — the simulated GPU rasterization
//! pipeline, the CPU cache/branch timing model, and the CPU↔GPU bus — reports
//! costs in *simulated time*, not host wall-clock time. This crate defines the
//! common vocabulary those models share:
//!
//! * [`SimTime`] — a simulated duration with exact-ish arithmetic and
//!   human-readable formatting,
//! * [`Hertz`] — clock frequencies (core clocks, memory clocks),
//! * [`Bytes`] — data volumes moved over memory interfaces and buses,
//! * [`Cycles`] — raw cycle counts convertible to time at a given clock.
//!
//! Keeping these in one tiny crate lets `gsm-gpu` and `gsm-cpu` stay
//! independent of each other while the `gsm-core` co-processor pipeline can
//! add their contributions into a single ledger.

mod bytes;
mod cycles;
pub mod f16;
mod hertz;
mod time;

pub use bytes::Bytes;
pub use cycles::Cycles;
pub use f16::F16;
pub use hertz::Hertz;
pub use time::SimTime;
