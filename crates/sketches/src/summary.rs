//! Tuple types shared by the summaries (paper §3.2: "The summary data
//! structure is usually maintained as a sorted sequence of tuples … The
//! tuple may also consist of additional fields such as the frequency of the
//! element or the minimum and the maximum rank of the element.")

/// A quantile-summary tuple: a value with bounds on its rank in the
/// summarized multiset (1-based, inclusive).
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct QuantileEntry {
    /// The sample value.
    pub value: f32,
    /// Smallest possible rank of this value.
    pub rmin: u64,
    /// Largest possible rank of this value.
    pub rmax: u64,
}

impl QuantileEntry {
    /// An entry with an exactly known rank.
    pub fn exact(value: f32, rank: u64) -> Self {
        QuantileEntry {
            value,
            rmin: rank,
            rmax: rank,
        }
    }

    /// The rank uncertainty `rmax − rmin`.
    pub fn spread(&self) -> u64 {
        self.rmax - self.rmin
    }
}

/// A frequency-summary tuple: a value, its counted occurrences, and the
/// maximum possible undercount Δ (lossy counting's per-entry error bound).
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct FreqEntry {
    /// The element value.
    pub value: f32,
    /// Occurrences counted since the entry was (re-)created.
    pub count: u64,
    /// Maximum occurrences that may have been missed before creation.
    pub delta: u64,
}

impl FreqEntry {
    /// Upper bound on the element's true frequency.
    pub fn max_count(&self) -> u64 {
        self.count + self.delta
    }
}

/// Cheap operation counters for pricing summary maintenance.
///
/// The paper's Figure 6 splits estimator time into sort / merge / compress.
/// Sorting is priced by the device simulators; the merge and compress
/// phases are straight-line CPU scans, priced as `comparisons + moves`
/// events by the core crate's cost model.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct OpCounter {
    /// Value comparisons performed.
    pub comparisons: u64,
    /// Tuples created, moved, or updated.
    pub moves: u64,
}

impl OpCounter {
    /// Adds another counter's totals into this one.
    pub fn absorb(&mut self, other: OpCounter) {
        self.comparisons += other.comparisons;
        self.moves += other.moves;
    }

    /// Total countable events.
    pub fn total(&self) -> u64 {
        self.comparisons + self.moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_entry_has_zero_spread() {
        let e = QuantileEntry::exact(4.0, 17);
        assert_eq!(e.spread(), 0);
        assert_eq!(e.rmin, 17);
        assert_eq!(e.rmax, 17);
    }

    #[test]
    fn freq_entry_bounds() {
        let f = FreqEntry {
            value: 1.0,
            count: 10,
            delta: 3,
        };
        assert_eq!(f.max_count(), 13);
    }

    #[test]
    fn op_counter_accumulates() {
        let mut a = OpCounter {
            comparisons: 5,
            moves: 2,
        };
        a.absorb(OpCounter {
            comparisons: 1,
            moves: 4,
        });
        assert_eq!(
            a,
            OpCounter {
                comparisons: 6,
                moves: 6
            }
        );
        assert_eq!(a.total(), 12);
    }
}
